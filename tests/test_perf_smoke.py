"""Perf-smoke gate: mini-sweep parallel/serial/cache equivalence.

Marked ``perfsmoke`` and deselected from the default tier-1 run (see
``addopts`` in pyproject.toml); CI runs it explicitly with
``pytest -m perfsmoke``.  ``scripts/bench_check.py`` is the same gate as
a standalone script.
"""

from __future__ import annotations

import pytest

from repro.experiments.parallel import (
    execute_runs,
    sweep_specs,
    verify_parallel_consistency,
)
from repro.experiments.results import aggregate_runs
from repro.experiments.runner import run_protocol
from repro.experiments.scenarios import (
    SimulationScenarioConfig,
    macro_flood_config,
)


@pytest.mark.perfsmoke
def test_mini_sweep_parallel_matches_serial(tmp_path):
    divergences = verify_parallel_consistency(jobs=2, cache_dir=str(tmp_path))
    assert divergences == [], "\n".join(divergences)


@pytest.mark.perfsmoke
def test_macro_flood_2000_nodes_completes():
    """Bounded city-scale smoke: a 2,000-node JOIN QUERY flood at the
    paper's node density must run to completion on the auto-resolved
    (vectorized) backend -- the workload the spatial grid index and the
    batched reception path exist for.  Kept short (a couple of ODMRP
    refresh rounds) so the perfsmoke tier stays minutes, not hours.
    """
    config = macro_flood_config(
        num_nodes=2000, duration_s=4.0, warmup_s=0.5,
        members_per_group=10, rate_pps=2.0,
    )
    result = run_protocol("odmrp", config)
    assert result.error is None, result.error
    queries = result.counters.get("channel.tx.join_query", 0.0)
    assert queries >= 2000, (
        f"flood did not propagate mesh-wide: {queries} JOIN QUERY tx"
    )
    assert result.offered_packets > 0


@pytest.mark.perfsmoke
def test_mobile_flood_500_nodes_completes():
    """500 nodes under random-waypoint motion: the mobility tick's
    incremental pipeline (grid re-bucket -> audibility re-derivation ->
    vectorized state migration) at a scale where a naive full rebuild
    per tick would dominate the run.  Must complete and must actually
    have moved the mesh.
    """
    import dataclasses

    from repro.mobility.config import MobilitySpec

    config = dataclasses.replace(
        macro_flood_config(
            num_nodes=500, duration_s=6.0, warmup_s=0.5,
            members_per_group=10, rate_pps=2.0,
        ),
        mobility=MobilitySpec(
            model="random-waypoint",
            update_interval_s=1.0,
            speed_min_mps=1.0,
            speed_max_mps=20.0,
        ),
    )
    result = run_protocol("odmrp", config)
    assert result.error is None, result.error
    assert result.counters.get("mobility.moves", 0) >= 500
    assert result.counters.get("channel.tx.join_query", 0.0) >= 500


@pytest.mark.perfsmoke
def test_seed_determinism_matrix(tmp_path):
    """jobs x cache x backend matrix: every cell aggregates identically.

    The serial, no-cache sweep is the oracle; pools of 2 and 4 workers,
    cold/warm cache replays (themselves at different job counts), and a
    two-worker ``dir://`` distributed drain must reproduce its
    aggregates exactly -- not approximately.
    """
    config = SimulationScenarioConfig(
        num_nodes=10,
        area_width_m=500.0,
        area_height_m=500.0,
        num_groups=1,
        members_per_group=3,
        duration_s=15.0,
        warmup_s=5.0,
    )
    specs = sweep_specs(config, ("odmrp", "spp"), (1, 2))
    baseline = aggregate_runs(execute_runs(specs, jobs=1, use_cache=False))

    for jobs in (2, 4):
        pooled = aggregate_runs(
            execute_runs(specs, jobs=jobs, use_cache=False)
        )
        assert pooled == baseline, f"jobs={jobs} diverged from serial"

    cache_dir = str(tmp_path / "matrix-cache")
    cold = aggregate_runs(
        execute_runs(specs, jobs=1, use_cache=True, cache_dir=cache_dir)
    )
    assert cold == baseline, "cold cache pass diverged"
    for jobs in (1, 4):
        warm = aggregate_runs(
            execute_runs(specs, jobs=jobs, use_cache=True,
                         cache_dir=cache_dir)
        )
        assert warm == baseline, f"warm cache (jobs={jobs}) diverged"

    # Backend axis: the same sweep drained by two dir:// workers over a
    # shared directory must aggregate identically to the serial oracle.
    from repro.experiments.distributed import DirExecutor, LeaseConfig

    outcomes = DirExecutor(
        str(tmp_path / "matrix-shared"), workers=2,
        lease=LeaseConfig(lease_timeout_s=60.0,
                          heartbeat_interval_s=1.0,
                          poll_interval_s=0.1),
        use_cache=False,
    ).execute(specs)
    distributed = aggregate_runs([o.result for o in outcomes])
    assert distributed == baseline, "dir:// backend diverged from serial"


@pytest.mark.perfsmoke
def test_adaptive_determinism_matrix(tmp_path):
    """The adaptive planner's determinism contract across the same
    matrix: jobs 1/2/4, cold/warm cache, the ``dir://`` backend, and a
    mid-sweep ``--resume`` must all reproduce the serial oracle's
    batch-by-batch plan *and* run list bit for bit -- the stopping rule
    is a pure function of seed-deterministic cell results, so nothing
    about how cells execute may change which cells get planned.
    """
    import dataclasses

    from repro.experiments.adaptive import (
        AdaptiveConfig,
        run_adaptive_experiment,
    )
    from repro.experiments.spec import ExperimentSpec

    spec = ExperimentSpec(
        name="adaptive-matrix",
        protocols=("odmrp", "spp"),
        seeds=(1, 2),
        adaptive=AdaptiveConfig(
            target_half_width=0.2, batch_size=2, min_seeds=2, max_seeds=6,
        ),
        config=SimulationScenarioConfig(
            num_nodes=10,
            area_width_m=500.0,
            area_height_m=500.0,
            num_groups=1,
            members_per_group=3,
            duration_s=15.0,
            warmup_s=5.0,
        ),
    )
    oracle = run_adaptive_experiment(spec)
    oracle_plan = oracle.plan_dict()
    oracle_aggregates = aggregate_runs(oracle.runs)

    def check(label, plan):
        assert plan.plan_dict() == oracle_plan, f"{label}: plan diverged"
        assert plan.runs == oracle.runs, f"{label}: runs diverged"
        assert aggregate_runs(plan.runs) == oracle_aggregates, (
            f"{label}: aggregates diverged"
        )

    for jobs in (2, 4):
        check(
            f"jobs={jobs}",
            run_adaptive_experiment(dataclasses.replace(spec, jobs=jobs)),
        )

    cache_dir = str(tmp_path / "adaptive-cache")
    cached = dataclasses.replace(spec, use_cache=True)
    check("cold cache", run_adaptive_experiment(cached, cache_dir=cache_dir))
    check(
        "warm cache jobs=4",
        run_adaptive_experiment(
            dataclasses.replace(cached, jobs=4), cache_dir=cache_dir
        ),
    )

    shared = dataclasses.replace(
        spec, backend=f"dir://{tmp_path / 'adaptive-shared'}"
    )
    check("dir:// backend", run_adaptive_experiment(shared, workers=2))

    # Mid-sweep resume: journal only the first batch (batch_size * both
    # protocols = the first 4 cells), then resume -- the replayed prefix
    # plus live remainder must reproduce the oracle exactly.
    journal = str(tmp_path / "adaptive-resume.jsonl")
    partial = dataclasses.replace(
        spec,
        adaptive=dataclasses.replace(
            spec.adaptive, max_seeds=spec.adaptive.batch_size
        ),
    )
    run_adaptive_experiment(partial, journal_path=journal)
    check(
        "mid-sweep resume",
        run_adaptive_experiment(spec, journal_path=journal, resume=True),
    )
