"""The Section 5 testbed experiment, assembled over the empirical channel.

Two multicast groups, exactly as the paper ran them: node 2 sources to
receivers {3, 5}, node 4 sources to receivers {1, 7}; CBR 512 B @ 20
packets/s for 400 s, repeated five times (different loss-walk seeds) per
protocol variant.

The paper's testbed labels (1..10) are preserved at the API surface;
internally nodes are indexed 0..7.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.metrics import RouteMetric
from repro.net.network import Network, NetworkConfig
from repro.odmrp.config import OdmrpConfig
from repro.odmrp.protocol import OdmrpRouter
from repro.probing.manager import ProbingConfig, ProbingManager
from repro.sim.rng import RngRegistry
from repro.testbed.floormap import (
    TESTBED_NODE_IDS,
    testbed_links,
    testbed_positions,
)
from repro.testbed.linkmodel import (
    STRONG_POWER_MW,
    WEAK_POWER_MW,
    EmpiricalChannel,
    LinkProfile,
    TimeVaryingLoss,
    testbed_radio_params,
)
from repro.traffic.cbr import CbrSource
from repro.traffic.groups import GroupScenario, GroupSpec
from repro.traffic.sink import MulticastSink

#: The paper's group setup: (source label, receiver labels).
DEFAULT_GROUPS: Tuple[Tuple[int, Tuple[int, ...]], ...] = (
    (2, (3, 5)),
    (4, (1, 7)),
)


@dataclass
class TestbedScenarioConfig:
    """Knobs of the testbed emulation (Section 5 defaults)."""

    duration_s: float = 400.0
    warmup_s: float = 30.0
    rate_pps: float = 20.0
    packet_size_bytes: int = 512
    #: Loss band of dashed (lossy) links.  Section 5.3 reports "loss
    #: rates in the range of 40% to 60%" from small-ping exchanges; data
    #: frames are several times longer than pings, so their loss sits at
    #: the top of (and slightly above) that band.
    lossy_band: Tuple[float, float] = (0.45, 0.65)
    #: Loss band of solid links ("low or almost no loss").
    low_loss_band: Tuple[float, float] = (0.0, 0.04)
    loss_update_interval_s: float = 5.0
    run_seed: int = 1
    groups: Tuple[Tuple[int, Tuple[int, ...]], ...] = DEFAULT_GROUPS
    probing: ProbingConfig = field(default_factory=ProbingConfig)
    #: The paper's testbed odmrpd is a custom implementation with
    #: unspecified timers.  A forwarding-group lifetime of 1.5 refresh
    #: rounds reproduces the measured gains; at the GloMoSim-style 3
    #: rounds the baseline's stale-path redundancy masks most of the
    #: route-choice differences on this small floor (see
    #: benchmarks/bench_ablation_fg_timeout.py).
    odmrp: OdmrpConfig = field(
        default_factory=lambda: OdmrpConfig(fg_timeout_s=4.5)
    )

    def with_run_seed(self, seed: int) -> "TestbedScenarioConfig":
        return replace(self, run_seed=seed)


@dataclass
class TestbedScenario:
    """A wired testbed run; duck-type compatible with SimulationScenario
    for :func:`repro.experiments.runner.collect_result`."""

    config: TestbedScenarioConfig
    protocol_name: str
    network: Network
    metric: Optional[RouteMetric]
    probing: Optional[ProbingManager]
    routers: Dict[int, OdmrpRouter]
    sink: MulticastSink
    sources: List[CbrSource]
    groups: GroupScenario
    label_to_index: Dict[int, int]
    index_to_label: Dict[int, int]

    def run(self) -> None:
        self.network.run(self.config.duration_s)

    def offered_packets(self) -> int:
        return sum(source.packets_sent for source in self.sources)

    def expected_deliveries(self) -> int:
        total = 0
        for source in self.sources:
            members = self.groups.expected_deliveries_per_packet(
                source.group_id
            )
            total += source.packets_sent * members
        return total

    def heavily_used_links(
        self, min_share: float = 0.10
    ) -> List[Tuple[int, int, float]]:
        """Directed links carrying a meaningful share of accepted data.

        Returns (from_label, to_label, share) sorted by share, where the
        share is relative to the busiest link -- the Figure 5 "solid
        arrows denote the heavily used links" extraction.
        """
        counts: Dict[Tuple[int, int], float] = {}
        for node in self.network.nodes:
            for name, value in node.counters.as_dict().items():
                if not name.startswith("odmrp.data_rx_from."):
                    continue
                sender_index = int(name.rsplit(".", 1)[1])
                key = (
                    self.index_to_label[sender_index],
                    self.index_to_label[node.node_id],
                )
                counts[key] = counts.get(key, 0.0) + value
        if not counts:
            return []
        busiest = max(counts.values())
        links = [
            (src, dst, count / busiest)
            for (src, dst), count in counts.items()
            if count / busiest >= min_share
        ]
        return sorted(links, key=lambda item: -item[2])


def build_testbed_scenario(
    protocol_name: str,
    config: Optional[TestbedScenarioConfig] = None,
) -> TestbedScenario:
    """Wire up one protocol variant over the Figure 4 testbed."""
    if config is None:
        config = TestbedScenarioConfig()

    labels = list(TESTBED_NODE_IDS)
    label_to_index = {label: index for index, label in enumerate(labels)}
    index_to_label = {index: label for label, index in label_to_index.items()}
    position_by_label = testbed_positions()
    positions = [position_by_label[label] for label in labels]

    # Loss processes are seeded from the run seed only, so every protocol
    # variant experiences the same loss environment in a given run.
    # Lossy links are weak (near the decode threshold) and low-loss links
    # strong, per the paper's "obstacles" explanation -- this is what
    # gives the emulated MAC a realistic capture behaviour.
    loss_rng_registry = RngRegistry(config.run_seed)
    profiles: Dict[FrozenSet[int], LinkProfile] = {}
    for link in testbed_links():
        band = config.lossy_band if link.lossy else config.low_loss_band
        key = frozenset(
            (label_to_index[link.node_a], label_to_index[link.node_b])
        )
        stream_name = f"loss.{min(link.node_a, link.node_b)}-{max(link.node_a, link.node_b)}"
        profiles[key] = LinkProfile(
            loss=TimeVaryingLoss(
                band[0],
                band[1],
                loss_rng_registry.stream(stream_name),
                update_interval_s=config.loss_update_interval_s,
            ),
            power_mw=WEAK_POWER_MW if link.lossy else STRONG_POWER_MW,
        )

    network = Network(
        positions,
        seed=config.run_seed,
        config=NetworkConfig(),
        channel_factory=lambda sim: EmpiricalChannel(sim, profiles),
        radio_params=testbed_radio_params(),
    )

    # The protocol registry supplies metric, router class, and any
    # per-protocol config overrides -- the same resolution the
    # simulation scenario builder uses, so MAODV/WCETT entries run over
    # the emulated testbed too.
    from repro.protocols import protocol_by_name

    spec = protocol_by_name(protocol_name)
    metric = spec.build_metric(packet_size_bytes=config.packet_size_bytes)
    probing: Optional[ProbingManager] = None
    if metric is not None:
        probing = ProbingManager(network, metric, config.probing)
        probing.start()

    protocol_config = spec.protocol_config(config.odmrp)
    sink = MulticastSink(network.sim)
    routers: Dict[int, OdmrpRouter] = {}
    for node in network.nodes:
        table = probing.table(node.node_id) if probing is not None else None
        routers[node.node_id] = spec.router(
            network.sim,
            node,
            config=protocol_config,
            metric=metric,
            neighbor_table=table,
            on_deliver=sink.on_deliver,
        )

    specs = []
    for group_number, (source_label, member_labels) in enumerate(
        config.groups, start=1
    ):
        specs.append(
            GroupSpec(
                group_id=group_number,
                source_ids=(label_to_index[source_label],),
                member_ids=tuple(
                    label_to_index[label] for label in member_labels
                ),
            )
        )
    groups = GroupScenario(groups=tuple(specs))

    for group_id, member_index in groups.all_members():
        routers[member_index].join_group(group_id)

    sources: List[CbrSource] = []
    for group_id, source_index in groups.all_sources():
        source = CbrSource(
            network.sim,
            routers[source_index],
            group_id,
            rate_pps=config.rate_pps,
            packet_size_bytes=config.packet_size_bytes,
        )
        source.start(at=config.warmup_s, stop_at=config.duration_s)
        sources.append(source)

    return TestbedScenario(
        config=config,
        protocol_name=spec.name,
        network=network,
        metric=metric,
        probing=probing,
        routers=routers,
        sink=sink,
        sources=sources,
        groups=groups,
        label_to_index=label_to_index,
        index_to_label=index_to_label,
    )
