"""Receiver-side delivery statistics.

One :class:`MulticastSink` serves a whole simulation run: every member
router's ``on_deliver`` callback points at :meth:`MulticastSink.on_deliver`.
It aggregates, per (receiver, group, source): delivered packet and byte
counts, and a streaming mean/min/max of end-to-end delay -- the raw
material for the Throughput and Delay columns of Figure 2.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, Tuple

from repro.net.packet import Packet
from repro.odmrp.messages import DataPayload
from repro.sim.engine import Simulator
from repro.sim.trace import WelfordAccumulator


class DeliveryRecord:
    """Stats for one (receiver, group, source) flow."""

    __slots__ = ("packets", "bytes", "delay")

    def __init__(self) -> None:
        self.packets = 0
        self.bytes = 0
        self.delay = WelfordAccumulator()


FlowKey = Tuple[int, int, int]  # (receiver, group, source)


class MulticastSink:
    """Aggregates member deliveries across the network."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.flows: Dict[FlowKey, DeliveryRecord] = defaultdict(DeliveryRecord)
        self.total_packets = 0
        self.total_bytes = 0
        self.delay = WelfordAccumulator()

    def on_deliver(
        self, packet: Packet, payload: DataPayload, receiver_id: int
    ) -> None:
        """Router delivery callback (bind this when building routers)."""
        record = self.flows[(receiver_id, payload.group_id, payload.source_id)]
        record.packets += 1
        record.bytes += packet.size_bytes
        delay = self.sim.now - packet.created_at
        record.delay.add(delay)
        self.total_packets += 1
        self.total_bytes += packet.size_bytes
        self.delay.add(delay)

    # ------------------------------------------------------------------
    # Aggregation

    def packets_for_receiver(self, receiver_id: int) -> int:
        return sum(
            record.packets
            for (receiver, _g, _s), record in self.flows.items()
            if receiver == receiver_id
        )

    def packets_for_group(self, group_id: int) -> int:
        return sum(
            record.packets
            for (_r, group, _s), record in self.flows.items()
            if group == group_id
        )

    def mean_delay_s(self) -> Optional[float]:
        """Mean end-to-end delay over all deliveries, None if none."""
        if self.delay.count == 0:
            return None
        return self.delay.mean

    def throughput_bps(self, duration_s: float) -> float:
        """Aggregate delivered goodput over ``duration_s``."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        return self.total_bytes * 8.0 / duration_s

    def delivery_ratio(self, packets_offered: int) -> float:
        """Delivered / (offered x member deliveries expected).

        ``packets_offered`` must already account for the number of
        receivers (i.e. sum over flows of source packets each member
        should have seen); the experiment runner computes that.
        """
        if packets_offered <= 0:
            return 0.0
        return self.total_packets / packets_offered
