"""Streaming observability for simulation runs.

The telemetry subsystem watches a run *evolve* -- link quality,
forwarding-group size, queue depths, per-layer packet flow over virtual
time -- where :class:`~repro.sim.trace.CounterSet` only reports end-of-run
totals.  It is strictly opt-in: with ``TelemetryConfig.enabled=False``
(the default) no hub exists, no sampling happens, and every hot path
executes the exact seed instruction stream.

Layers:

* :mod:`repro.telemetry.instruments` -- Counter / Gauge / TimeSeries /
  Histogram value holders.
* :mod:`repro.telemetry.hub` -- the per-run registry, probe sampler, and
  structured event log.
* :mod:`repro.telemetry.probes` -- the standard probe set wiring a
  simulation scenario (engine, MAC, channel, probing, ODMRP/MAODV).
* :mod:`repro.telemetry.manifest` -- run provenance (config hash, seed,
  package version, host, wall time).
* :mod:`repro.telemetry.export` -- the versioned JSONL artifact format
  and its lossless round-trip reader.
* :mod:`repro.telemetry.summary` -- ``repro telemetry summarize`` /
  ``diff`` rendering.
"""

from repro.telemetry.export import (
    TRACE_FORMAT_VERSION,
    TelemetryTrace,
    TraceFormatError,
    read_trace,
    trace_filename,
    write_trace,
)
from repro.telemetry.hub import TelemetryConfig, TelemetryHub
from repro.telemetry.instruments import (
    Counter,
    Gauge,
    Histogram,
    Instrument,
    TimeSeries,
)
from repro.telemetry.manifest import (
    RunManifest,
    build_manifest,
    canonicalize,
    config_digest,
    package_version,
)
from repro.telemetry.probes import finalize_scenario, install_scenario_probes
from repro.telemetry.summary import diff_traces, summarize_trace

__all__ = [
    "TRACE_FORMAT_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "Instrument",
    "RunManifest",
    "TelemetryConfig",
    "TelemetryHub",
    "TelemetryTrace",
    "TimeSeries",
    "TraceFormatError",
    "build_manifest",
    "canonicalize",
    "config_digest",
    "diff_traces",
    "finalize_scenario",
    "install_scenario_probes",
    "package_version",
    "read_trace",
    "summarize_trace",
    "trace_filename",
    "write_trace",
]
