"""Tests for statistics helpers and table rendering."""

from __future__ import annotations

import statistics

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    confidence_interval_95,
    mean,
    relative_gain_pct,
    stddev,
)
from repro.analysis.tables import render_comparison, render_table

values_strategy = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=2,
    max_size=50,
)


class TestStats:
    @given(values_strategy)
    def test_mean_and_stddev_match_statistics(self, values):
        assert mean(values) == pytest.approx(
            statistics.fmean(values), rel=1e-9, abs=1e-9
        )
        assert stddev(values) == pytest.approx(
            statistics.stdev(values), rel=1e-6, abs=1e-6
        )

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stddev_single_sample_is_zero(self):
        assert stddev([5.0]) == 0.0

    def test_confidence_interval_contains_mean(self):
        low, high = confidence_interval_95([1.0, 2.0, 3.0, 4.0])
        assert low < 2.5 < high

    def test_confidence_interval_single_sample(self):
        assert confidence_interval_95([3.0]) == (3.0, 3.0)

    def test_relative_gain(self):
        assert relative_gain_pct(1.18, 1.0) == pytest.approx(18.0)
        with pytest.raises(ValueError):
            relative_gain_pct(1.0, 0.0)


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            ("name", "value"),
            [("spp", 1.18), ("odmrp", 1.0)],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "spp" in lines[3]
        # All rows align to the same width.
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(("a", "b"), [("only-one",)])

    def test_empty_rows_ok(self):
        text = render_table(("a", "b"), [])
        assert "a" in text


class TestRenderComparison:
    def test_both_series_shown(self):
        text = render_comparison(
            {"spp": 1.21, "odmrp": 1.0},
            {"spp": 1.18, "odmrp": 1.0},
            title="throughput",
        )
        assert "1.180" in text
        assert "1.210" in text

    def test_missing_entries_dashed(self):
        text = render_comparison({"spp": 1.2}, {"pp": 1.18, "spp": 1.14})
        row = [line for line in text.splitlines() if line.startswith("pp")][0]
        assert "-" in row

    def test_precision(self):
        text = render_comparison({"x": 1.23456}, {"x": 1.0}, precision=1)
        assert "1.2" in text and "1.23" not in text
