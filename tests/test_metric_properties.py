"""Property tests for the metric algebras (Section 2).

Each metric declares how it composes along a path
(:attr:`RouteMetric.composition`); these tests pin the algebraic laws
that declaration promises -- against randomly drawn link qualities, not
hand-picked examples.  The metric-accumulation invariant monitor trusts
exactly these laws when it recomputes JOIN QUERY costs, so this file is
what makes that trust earned.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.accumulation import (
    additive,
    compose,
    metx_closed_form,
    multiplicative,
    path_cost,
    recursive_metx,
)
from repro.core.metrics import (
    EtxMetric,
    EttMetric,
    HopCountMetric,
    LinkQuality,
    MetxMetric,
    PpMetric,
    SppMetric,
)
from repro.probing.packet_pair import PacketPairEstimator

# Delivery ratios bounded away from zero so additive costs stay finite
# and log-space comparisons are numerically meaningful.
dfs = st.lists(
    st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=8,
)


def quality(df: float) -> LinkQuality:
    return LinkQuality(forward_delivery_ratio=df)


class TestCompositionDeclarations:
    def test_declared_algebras(self):
        assert HopCountMetric.composition == "additive"
        assert EtxMetric.composition == "additive"
        assert EttMetric.composition == "additive"
        assert PpMetric.composition == "additive"
        assert MetxMetric.composition == "recursive"
        assert SppMetric.composition == "multiplicative"

    @given(ratios=dfs)
    def test_compose_matches_combine_chain_for_every_metric(self, ratios):
        """The declared algebra reproduces the combine() fold."""
        for metric in (
            HopCountMetric(), EtxMetric(), EttMetric(), MetxMetric(),
            SppMetric(),
        ):
            links = [metric.link_cost(quality(df)) for df in ratios]
            folded = path_cost(metric, links)
            recomputed = compose(metric, links)
            assert math.isclose(folded, recomputed, rel_tol=1e-9), metric


class TestSppProperties:
    @given(ratios=dfs)
    def test_multiplicativity(self, ratios):
        """SPP of a path is the product of its per-link ratios."""
        metric = SppMetric()
        links = [metric.link_cost(quality(df)) for df in ratios]
        assert path_cost(metric, links) == pytest.approx(
            multiplicative(ratios), rel=1e-12
        )

    @given(prefix=dfs, suffix=dfs)
    def test_concatenation_is_multiplication(self, prefix, suffix):
        metric = SppMetric()
        whole = path_cost(metric, prefix + suffix)
        split = path_cost(metric, prefix) * path_cost(metric, suffix)
        assert whole == pytest.approx(split, rel=1e-12)

    @given(a=dfs, b=dfs)
    def test_order_isomorphic_to_negative_log_sum(self, a, b):
        """Maximizing SPP == minimizing the additive metric -log(df).

        This is the paper's observation that SPP, despite composing
        multiplicatively, still admits shortest-path machinery in log
        space -- the orders are identical.
        """
        metric = SppMetric()
        log_a = math.fsum(-math.log(df) for df in a)
        log_b = math.fsum(-math.log(df) for df in b)
        # Near-ties can legitimately round either way across the two
        # representations; only decided comparisons must agree.
        assume(abs(log_a - log_b) > 1e-9)
        spp_a = path_cost(metric, a)
        spp_b = path_cost(metric, b)
        assert metric.is_better(spp_a, spp_b) == (log_a < log_b)

    @given(ratios=dfs)
    def test_one_dead_link_kills_the_path(self, ratios):
        metric = SppMetric()
        cost = path_cost(metric, ratios + [0.0])
        assert cost == 0.0
        assert not metric.is_usable(cost)


class TestMetxProperties:
    @given(ratios=dfs)
    def test_recursion_matches_closed_form(self, ratios):
        """``C' = (C+1)/df`` computes Equation (2) literally."""
        assert recursive_metx(ratios) == pytest.approx(
            metx_closed_form(ratios), rel=1e-9
        )

    @given(ratios=dfs)
    def test_combine_chain_is_the_recursion(self, ratios):
        metric = MetxMetric()
        links = [metric.link_cost(quality(df)) for df in ratios]
        assert path_cost(metric, links) == recursive_metx(ratios)

    @given(ratios=dfs)
    def test_at_least_one_transmission_per_hop(self, ratios):
        """METX >= ETX >= hop count: losses only ever add transmissions."""
        etx = math.fsum(1.0 / df for df in ratios)
        metx = recursive_metx(ratios)
        assert metx >= etx - 1e-9
        assert metx >= len(ratios)

    @given(ratios=dfs)
    def test_perfect_links_reduce_to_hop_count(self, ratios):
        assert recursive_metx([1.0] * len(ratios)) == len(ratios)


class TestAdditiveProperties:
    @given(ratios=dfs)
    def test_etx_is_summed_inverse_delivery(self, ratios):
        metric = EtxMetric()
        links = [metric.link_cost(quality(df)) for df in ratios]
        assert path_cost(metric, links) == pytest.approx(
            math.fsum(1.0 / df for df in ratios), rel=1e-9
        )

    @given(ratios=dfs, permutation_seed=st.integers(0, 2**32 - 1))
    def test_additive_cost_is_order_independent(self, ratios, permutation_seed):
        """Summation commutes: link order cannot change an additive cost."""
        import random

        metric = EtxMetric()
        links = [metric.link_cost(quality(df)) for df in ratios]
        shuffled = list(links)
        random.Random(permutation_seed).shuffle(shuffled)
        assert additive(shuffled) == pytest.approx(
            additive(links), rel=1e-9
        )
        assert path_cost(metric, shuffled) == pytest.approx(
            path_cost(metric, links), rel=1e-9
        )

    @given(ratios=dfs)
    def test_ett_is_etx_scaled_by_airtime(self, ratios):
        """With no bandwidth estimates, ETT = ETX * (S*8 / B_default)."""
        ett = EttMetric(packet_size_bytes=512,
                        default_bandwidth_bps=2_000_000.0)
        etx = EtxMetric()
        airtime = 512 * 8.0 / 2_000_000.0
        ett_cost = path_cost(
            ett, [ett.link_cost(quality(df)) for df in ratios]
        )
        etx_cost = path_cost(
            etx, [etx.link_cost(quality(df)) for df in ratios]
        )
        assert ett_cost == pytest.approx(etx_cost * airtime, rel=1e-9)


# Pair-delay samples: positive, well under the 10 s probing interval.
delays = st.lists(
    st.floats(min_value=1e-4, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=20,
)


def feed_pairs(estimator: PacketPairEstimator, samples, interval_s=10.0):
    """Deliver one completed (small, large) pair per sample delay."""
    for index, delay in enumerate(samples):
        at = index * interval_s
        estimator.note_small(index + 1, at, interval_s)
        estimator.note_large(index + 1, at + delay, interval_s, 200)


class TestPacketPairProperties:
    @given(samples=delays)
    def test_ewma_stays_within_sample_envelope(self, samples):
        """A loss-free EWMA is a convex combination of its samples."""
        estimator = PacketPairEstimator()
        feed_pairs(estimator, samples)
        assert estimator.penalties_applied == 0
        assert estimator.ewma_delay_s is not None
        assert min(samples) - 1e-12 <= estimator.ewma_delay_s
        assert estimator.ewma_delay_s <= max(samples) + 1e-12

    @given(samples=delays, missed=st.integers(min_value=1, max_value=6))
    @settings(max_examples=50)
    def test_each_lost_pair_costs_exactly_twenty_percent(
        self, samples, missed
    ):
        """``missed`` wholly lost pairs multiply the EWMA by 1.2^missed."""
        estimator = PacketPairEstimator()
        feed_pairs(estimator, samples)
        before = estimator.ewma_delay_s
        # A sequence jump of `missed` pairs: penalized on the next probe.
        next_seq = len(samples) + missed + 1
        estimator.note_small(next_seq, next_seq * 10.0, 10.0)
        expected = before
        for _ in range(missed):
            expected *= estimator.penalty_factor
        assert estimator.ewma_delay_s == expected
        assert estimator.penalties_applied == missed

    @given(samples=delays, silent=st.integers(min_value=0, max_value=8))
    @settings(max_examples=50)
    def test_silence_compounds_at_read_time(self, samples, silent):
        """A quiet neighbor's cost grows 1.2x per missed interval."""
        interval = 10.0
        estimator = PacketPairEstimator()
        feed_pairs(estimator, samples, interval_s=interval)
        last_heard = (len(samples) - 1) * interval + samples[-1]
        now = last_heard + 0.5 * interval + silent * interval + 0.1
        observed = estimator.effective_delay_s(now)
        assert observed == estimator.ewma_delay_s * (
            estimator.penalty_factor ** silent
        )
        # Reading must not mutate the stored EWMA.
        assert estimator.effective_delay_s(now) == observed
