"""The dynamic-networks subsystem: mobility, obstacles, energy.

Covers the model registry and its determinism contract, the
position-update/invalidation pipeline through the channel, obstacle
shadowing geometry, battery accounting through the fault path, the
spec-level mobility axis, and scalar<->vectorized parity on a moving
mesh.
"""

from __future__ import annotations

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import run_experiment, run_protocol
from repro.experiments.scenarios import (
    SimulationScenarioConfig,
    build_simulation_scenario,
)
from repro.experiments.spec import ExperimentSpec, SpecError
from repro.mobility.config import EnergySpec, MobilitySpec
from repro.mobility.energy import EnergyModel
from repro.mobility.models import (
    build_mobility_model,
    mobility_model_by_name,
    mobility_model_names,
)
from repro.net.network import Network, NetworkConfig
from repro.net.topology import Position, random_topology
from repro.phy.obstacles import (
    Obstacle,
    ObstacleShadowingPropagation,
    ObstacleSpec,
)
from repro.phy.propagation import TwoRayGroundPropagation

MOVING_MODELS = ("random-waypoint", "gauss-markov", "waypoint-swarm")


def tiny_config(**overrides) -> SimulationScenarioConfig:
    defaults = dict(
        num_nodes=10,
        area_width_m=500.0,
        area_height_m=500.0,
        num_groups=1,
        members_per_group=3,
        rate_pps=10.0,
        duration_s=8.0,
        warmup_s=2.0,
    )
    defaults.update(overrides)
    return SimulationScenarioConfig(**defaults)


# ----------------------------------------------------------------------
# Registry and spec validation


class TestRegistry:
    def test_all_models_registered(self):
        assert set(mobility_model_names()) >= {
            "static", "random-waypoint", "gauss-markov", "waypoint-swarm",
        }

    def test_unknown_model_suggests_closest(self):
        with pytest.raises(ValueError, match="did you mean 'random-waypoint'"):
            mobility_model_by_name("random-waypont")

    def test_mobility_spec_rejects_typo_at_construction(self):
        with pytest.raises(ValueError, match="unknown mobility model"):
            MobilitySpec(model="guass-markov")

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(update_interval_s=0.0),
            dict(speed_min_mps=-1.0),
            dict(speed_min_mps=20.0, speed_max_mps=10.0),
            dict(pause_s=-0.5),
            dict(alpha=1.0),
            dict(swarm_size=0),
            dict(swarm_radius_m=-1.0),
            dict(update_interval_s=float("nan")),
        ],
    )
    def test_mobility_spec_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            MobilitySpec(model="random-waypoint", **kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(enabled=True, initial_j=0.0),
            dict(tx_j_per_byte=-1e-6),
            dict(accounting_interval_s=0.0),
            dict(idle_w=float("inf")),
        ],
    )
    def test_energy_spec_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            EnergySpec(**kwargs)

    def test_network_config_rejects_typo_backend_with_suggestion(self):
        with pytest.raises(ValueError, match="did you mean 'vectorized'"):
            NetworkConfig(phy_backend="vectorised")

    def test_scenario_config_validates_mobility_eagerly(self):
        with pytest.raises(ValueError, match="unknown mobility model"):
            SimulationScenarioConfig(mobility=MobilitySpec(model="rwp"))

    def test_spec_file_with_bad_model_fails_at_load(self):
        spec = ExperimentSpec(name="x", protocols=("odmrp",))
        data = spec.to_dict()
        data["config"]["mobility"] = {"model": "warp-drive"}
        with pytest.raises(SpecError, match="unknown mobility model"):
            ExperimentSpec.from_dict(data)

    def test_spec_mobility_axis_validates_names(self):
        spec = ExperimentSpec(
            name="x", protocols=("odmrp",), mobility_models=("static", "rwp")
        )
        with pytest.raises(SpecError, match="unknown mobility model"):
            spec.validate()


# ----------------------------------------------------------------------
# Model trajectories: in-bounds and seed-deterministic (property-based)


def _trajectory(model_name, seed, width, height, num_nodes, ticks, dt):
    rng = random.Random(seed)
    placement = [
        Position(rng.uniform(0, width), rng.uniform(0, height))
        for _ in range(num_nodes)
    ]
    spec = MobilitySpec(
        model=model_name,
        speed_min_mps=1.0,
        speed_max_mps=25.0,
        pause_s=0.5,
        swarm_size=3,
        swarm_radius_m=40.0,
    )
    model = build_mobility_model(
        spec, width, height, placement, random.Random(seed + 1)
    )
    history = []
    for tick in range(1, ticks + 1):
        model.advance(tick * dt)
        history.append(list(model.positions))
    return history


class TestModelProperties:
    @settings(max_examples=30)
    @given(
        model_name=st.sampled_from(MOVING_MODELS),
        seed=st.integers(min_value=0, max_value=2**31),
        width=st.floats(min_value=50.0, max_value=1500.0),
        height=st.floats(min_value=50.0, max_value=1500.0),
        num_nodes=st.integers(min_value=1, max_value=12),
        dt=st.floats(min_value=0.1, max_value=5.0),
    )
    def test_positions_stay_in_arena(
        self, model_name, seed, width, height, num_nodes, dt
    ):
        history = _trajectory(
            model_name, seed, width, height, num_nodes, ticks=10, dt=dt
        )
        for snapshot in history:
            for position in snapshot:
                assert 0.0 <= position.x <= width
                assert 0.0 <= position.y <= height

    @settings(max_examples=15)
    @given(
        model_name=st.sampled_from(MOVING_MODELS),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_trajectories_are_seed_deterministic(self, model_name, seed):
        first = _trajectory(model_name, seed, 600.0, 400.0, 8, ticks=8, dt=1.0)
        second = _trajectory(model_name, seed, 600.0, 400.0, 8, ticks=8, dt=1.0)
        assert first == second

    def test_moving_models_actually_move(self):
        for model_name in MOVING_MODELS:
            history = _trajectory(
                model_name, 7, 600.0, 600.0, 6, ticks=5, dt=1.0
            )
            assert history[0] != history[-1], model_name

    def test_static_model_never_moves_and_never_draws(self):
        placement = [Position(10.0, 10.0), Position(20.0, 20.0)]
        rng = random.Random(3)
        state_before = rng.getstate()
        model = build_mobility_model(
            MobilitySpec(), 100.0, 100.0, placement, rng
        )
        for tick in range(1, 5):
            assert model.advance(float(tick)) == []
        assert rng.getstate() == state_before


# ----------------------------------------------------------------------
# The position-update / invalidation pipeline


def _apply_random_moves(network, rng, width, height, count):
    for _ in range(count):
        node = rng.choice(network.nodes)
        node.set_position(
            Position(rng.uniform(0, width), rng.uniform(0, height))
        )
    network.channel.invalidate_topology()


class TestTopologyInvalidation:
    def test_connectivity_map_updates_after_invalidate(self):
        positions = [Position(0.0, 0.0), Position(100.0, 0.0),
                     Position(200.0, 0.0)]
        network = Network(positions, seed=1)
        assert 1 in network.channel.connectivity_map()[0]
        # The memo without invalidation is the documented staleness
        # hazard: set_position alone must not silently rebuild it.
        network.nodes[1].set_position(Position(5000.0, 5000.0))
        assert 1 in network.channel.connectivity_map()[0]
        network.channel.invalidate_topology()
        after = network.channel.connectivity_map()
        assert 1 not in after[0]
        assert after[1] == []

    def test_invalidate_before_finalize_is_an_error(self):
        from repro.net.channel import ChannelError, WirelessChannel
        from repro.sim.engine import Simulator

        channel = WirelessChannel(Simulator(seed=1))
        with pytest.raises(ChannelError, match="finalize"):
            channel.invalidate_topology()

    def test_incremental_equals_fresh_rebuild_small_mesh(self):
        width = height = 800.0
        rng = random.Random(11)
        positions = random_topology(20, width, height,
                                    rng=random.Random(5))
        network = Network(positions, seed=1)
        _apply_random_moves(network, rng, width, height, count=30)
        fresh = Network(
            [node.position for node in network.nodes], seed=1
        )
        assert (
            network.channel.connectivity_map()
            == fresh.channel.connectivity_map()
        )

    @settings(max_examples=20)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        moves=st.integers(min_value=1, max_value=25),
    )
    def test_grid_equals_brute_under_random_motion(self, seed, moves):
        import repro.net.channel as channel_mod

        width = height = 700.0
        positions = random_topology(14, width, height,
                                    rng=random.Random(seed))
        # Force the grid path on one network, the brute scan on its
        # twin; after identical motion their audibility must match
        # bit-for-bit (the grid is a candidate superset, never a
        # filter).  MonkeyPatch as a context manager: Hypothesis reuses
        # function-scoped fixtures across examples.
        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(channel_mod, "GRID_MIN_NODES", 1)
            gridded = Network(positions, seed=1)
            assert gridded.channel._grid is not None
            patcher.setattr(channel_mod, "GRID_MIN_NODES", 10**9)
            brute = Network(positions, seed=1)
            assert brute.channel._grid is None

        rng_a = random.Random(seed + 1)
        rng_b = random.Random(seed + 1)
        _apply_random_moves(gridded, rng_a, width, height, moves)
        _apply_random_moves(brute, rng_b, width, height, moves)
        for node_a, node_b in zip(gridded.nodes, brute.nodes):
            assert node_a.position == node_b.position
        assert (
            gridded.channel.connectivity_map()
            == brute.channel.connectivity_map()
        )
        for node in gridded.nodes:
            assert [
                (receiver.node_id, mean, thr)
                for receiver, mean, thr
                in gridded.channel._audible[node.node_id]
            ] == [
                (receiver.node_id, mean, thr)
                for receiver, mean, thr
                in brute.channel._audible[node.node_id]
            ]


# ----------------------------------------------------------------------
# End-to-end moving scenarios


class TestMovingScenarios:
    @pytest.mark.parametrize("model", MOVING_MODELS)
    def test_moving_run_is_seed_deterministic(self, model):
        config = tiny_config(
            mobility=MobilitySpec(model=model, update_interval_s=1.0,
                                  speed_max_mps=20.0)
        )
        first = run_protocol("odmrp", config)
        second = run_protocol("odmrp", config)
        assert first.error is None, first.error
        assert first == second
        assert first.counters.get("mobility.moves", 0) > 0
        assert first.counters.get("mobility.distance_m", 0) > 0

    def test_static_default_emits_no_mobility_or_energy_counters(self):
        result = run_protocol("odmrp", tiny_config())
        assert result.error is None, result.error
        assert not any(
            name.startswith(("mobility.", "energy."))
            for name in result.counters
        )

    def test_scalar_and_vectorized_agree_on_moving_mesh(self):
        pytest.importorskip("numpy")
        results = {}
        for backend in ("scalar", "vectorized"):
            config = tiny_config(
                num_nodes=16,
                duration_s=10.0,
                mobility=MobilitySpec(
                    model="random-waypoint",
                    update_interval_s=0.5,
                    speed_min_mps=5.0,
                    speed_max_mps=30.0,
                ),
            )
            config = dataclasses.replace(
                config,
                network=dataclasses.replace(
                    config.network, phy_backend=backend
                ),
            )
            results[backend] = run_protocol("spp", config)
        assert results["scalar"].error is None, results["scalar"].error
        assert results["scalar"] == results["vectorized"]
        # Nodes at 30 m/s for 10 s churn audibility; a run where nothing
        # moved would not exercise the vector-state archive at all.
        assert results["scalar"].counters["mobility.moves"] > 0

    def test_monitors_pass_on_moving_scenario(self):
        from repro.validation.fuzzing import run_with_invariants

        spec = ExperimentSpec(
            name="moving-monitored",
            protocols=("odmrp",),
            seeds=(1,),
            config=tiny_config(
                mobility=MobilitySpec(model="gauss-markov",
                                      update_interval_s=1.0)
            ),
        )
        results = run_with_invariants(
            spec,
            monitors=("rng-isolation", "forwarding-state",
                      "channel-conservation"),
        )
        assert all(result.error is None for result in results)

    def test_mobility_telemetry_probes_record(self, tmp_path):
        from repro.telemetry.hub import TelemetryConfig

        config = tiny_config(
            mobility=MobilitySpec(model="random-waypoint"),
            energy=EnergySpec(enabled=True, initial_j=50.0),
            telemetry=TelemetryConfig(
                enabled=True, export_dir=str(tmp_path)
            ),
        )
        scenario = build_simulation_scenario("odmrp", config)
        scenario.run()
        names = {
            instrument.name
            for instrument in scenario.telemetry.instruments()
        }
        assert {"mobility.speed_mean", "mobility.update_rate",
                "energy.remaining_j", "energy.alive_nodes"} <= names


# ----------------------------------------------------------------------
# Energy accounting


class TestEnergy:
    def _idle_network(self):
        # Two nodes far outside radio range: no traffic, so the battery
        # drains by the idle baseline alone and death time is exact.
        return Network(
            [Position(0.0, 0.0), Position(50000.0, 50000.0)], seed=1
        )

    def test_idle_drain_kills_node_at_predictable_tick(self):
        network = self._idle_network()
        spec = EnergySpec(enabled=True, initial_j=0.045, idle_w=0.01,
                          accounting_interval_s=1.0)
        model = EnergyModel(spec, network)
        for tick in range(1, 4):
            network.sim.run(until=float(tick))
            model.step()
            assert network.nodes[0].active, f"died early at t={tick}"
        network.sim.run(until=5.0)
        model.step()  # cumulative drain 0.05 J > 0.045 J budget
        node = network.nodes[0]
        assert not node.active
        assert model.remaining_j(0) == 0.0
        assert node.counters.get("energy.depleted") == 1
        # Consumed energy is capped at the budget: never more out than in.
        assert node.counters.get("energy.consumed_j") == pytest.approx(0.045)
        assert model.alive_count() == 0

    def test_depleted_node_stays_dead_after_fault_revival(self):
        network = self._idle_network()
        spec = EnergySpec(enabled=True, initial_j=0.01, idle_w=0.01,
                          accounting_interval_s=1.0)
        model = EnergyModel(spec, network)
        network.sim.run(until=2.0)
        model.step()
        node = network.nodes[0]
        assert not node.active
        node.set_active(True)  # a fault plan's recovery event
        network.sim.run(until=3.0)
        model.step()
        assert not node.active, "dead batteries must stay dead"

    def test_energy_death_churns_protocol_state_deterministically(self):
        config = tiny_config(
            duration_s=10.0,
            energy=EnergySpec(enabled=True, initial_j=0.06, idle_w=0.01,
                              accounting_interval_s=1.0),
        )
        first = run_protocol("odmrp", config)
        second = run_protocol("odmrp", config)
        assert first.error is None, first.error
        assert first == second
        assert first.counters.get("energy.depleted") == config.num_nodes


# ----------------------------------------------------------------------
# Obstacle shadowing


class TestObstacles:
    def test_wall_crossing_counts(self):
        box = Obstacle(10.0, 10.0, 20.0, 20.0)
        through = (Position(0.0, 15.0), Position(30.0, 15.0))
        one_end_inside = (Position(15.0, 15.0), Position(30.0, 15.0))
        both_inside = (Position(12.0, 12.0), Position(18.0, 18.0))
        miss = (Position(0.0, 0.0), Position(30.0, 0.0))
        diagonal_miss = (Position(0.0, 25.0), Position(5.0, 0.0))
        assert box.wall_crossings(*through) == 2
        assert box.wall_crossings(*one_end_inside) == 1
        assert box.wall_crossings(*one_end_inside[::-1]) == 1
        assert box.wall_crossings(*both_inside) == 0
        assert box.wall_crossings(*miss) == 0
        assert box.wall_crossings(*diagonal_miss) == 0

    def test_shadowing_attenuates_per_crossing(self):
        base = TwoRayGroundPropagation()
        wall = Obstacle(100.0, -50.0, 120.0, 50.0, attenuation_db=10.0)
        model = ObstacleShadowingPropagation(base, (wall,))
        a, b = Position(0.0, 0.0), Position(200.0, 0.0)
        open_power = base.rx_power_mw_between(100.0, a, b)
        shadowed = model.rx_power_mw_between(100.0, a, b)
        # Straight through = two walls = 20 dB = factor 100.
        assert shadowed == pytest.approx(open_power / 100.0)
        # The distance-only envelope and range bound ignore obstacles.
        assert model.rx_power_mw(100.0, 200.0) == base.rx_power_mw(100.0, 200.0)
        assert model.max_range_for_power(100.0, 1e-9) == pytest.approx(
            base.max_range_for_power(100.0, 1e-9)
        )

    def test_obstacle_spec_rejects_out_of_arena(self):
        spec = ObstacleSpec(
            obstacles=(Obstacle(2000.0, 2000.0, 2100.0, 2100.0),)
        )
        with pytest.raises(ValueError, match="outside"):
            spec.validate_for(1000.0, 1000.0)

    def test_wall_severs_an_otherwise_audible_link(self):
        # Two radios 200 m apart (inside the 250 m nominal range) with a
        # thick 40 dB building on the line of sight between them.
        positions = [Position(150.0, 250.0), Position(350.0, 250.0)]
        wall = (Obstacle(200.0, 0.0, 260.0, 500.0, attenuation_db=40.0),)
        open_net = Network(positions, seed=1)
        blocked_net = Network(
            positions,
            seed=1,
            config=NetworkConfig(
                propagation=ObstacleShadowingPropagation(
                    TwoRayGroundPropagation(), wall
                )
            ),
        )
        assert open_net.channel.connectivity_map() == {0: [1], 1: [0]}
        assert blocked_net.channel.connectivity_map() == {0: [], 1: []}

    def test_obstacle_config_thins_scenario_connectivity(self):
        # Wired through SimulationScenarioConfig.obstacles: shadowing can
        # only remove edges relative to the open-space build.
        blocking = ObstacleSpec(
            obstacles=(Obstacle(150.0, 0.0, 350.0, 500.0,
                                attenuation_db=40.0),)
        )
        open_map = build_simulation_scenario(
            "odmrp", tiny_config()
        ).network.channel.connectivity_map()
        blocked_map = build_simulation_scenario(
            "odmrp", tiny_config(obstacles=blocking)
        ).network.channel.connectivity_map()
        open_edges = {
            (i, j) for i, out in open_map.items() for j in out
        }
        blocked_edges = {
            (i, j) for i, out in blocked_map.items() for j in out
        }
        assert blocked_edges <= open_edges
        assert blocked_edges < open_edges  # the 200 m slab cuts something


# ----------------------------------------------------------------------
# Spec axis, serialization, and reporting labels


class TestSpecAxis:
    def _full_spec(self):
        return ExperimentSpec(
            name="dyn",
            protocols=("odmrp",),
            seeds=(1, 2),
            mobility_models=("static", "random-waypoint"),
            config=tiny_config(
                mobility=MobilitySpec(model="gauss-markov", pause_s=1.0),
                obstacles=ObstacleSpec(
                    obstacles=(
                        Obstacle(10.0, 10.0, 60.0, 60.0, attenuation_db=6.0),
                        Obstacle(100.0, 200.0, 180.0, 260.0),
                    )
                ),
                energy=EnergySpec(enabled=True, initial_j=20.0),
            ),
        )

    def test_round_trips_through_toml_and_json(self):
        spec = self._full_spec()
        assert ExperimentSpec.from_toml(spec.to_toml()) == spec
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_total_runs_and_describe_include_axis(self):
        spec = self._full_spec()
        assert spec.total_runs == 4
        plan = spec.describe()
        assert "2 mobility models" in plan
        assert "random-waypoint" in plan

    def test_defaults_serialize_inert_and_reload(self):
        # Inert defaults round-trip (and old spec files with none of the
        # dynamic keys keep loading with the inert defaults).
        spec = ExperimentSpec(name="plain")
        data = spec.to_dict()
        assert "mobility_models" not in data
        assert data["config"]["mobility"]["model"] == "static"
        assert data["config"]["obstacles"]["obstacles"] == []
        assert data["config"]["energy"]["enabled"] is False
        assert ExperimentSpec.from_dict(data) == spec
        legacy = dict(data)
        legacy["config"] = {
            k: v for k, v in data["config"].items()
            if k not in ("mobility", "obstacles", "energy")
        }
        assert ExperimentSpec.from_dict(legacy) == spec

    def test_run_experiment_labels_cells(self):
        spec = ExperimentSpec(
            name="cells",
            protocols=("odmrp",),
            seeds=(1,),
            mobility_models=("static", "random-waypoint"),
            config=tiny_config(duration_s=6.0),
        )
        results = run_experiment(spec)
        assert [result.protocol for result in results] == [
            "odmrp@static", "odmrp@random-waypoint",
        ]
        assert all(result.error is None for result in results)
        static, moving = results
        assert "mobility.moves" not in static.counters
        assert moving.counters.get("mobility.moves", 0) > 0

    def test_pool_matches_serial_on_moving_mesh(self):
        from repro.experiments.runner import compare_protocols

        config = tiny_config(
            duration_s=6.0,
            mobility=MobilitySpec(model="random-waypoint",
                                  update_interval_s=1.0),
        )
        serial = compare_protocols(config, protocols=("odmrp",),
                                   topology_seeds=(1, 2), jobs=1)
        pooled = compare_protocols(config, protocols=("odmrp",),
                                   topology_seeds=(1, 2), jobs=2)
        assert serial == pooled

    def test_report_renders_labeled_cells(self):
        from repro.experiments.report import render_report
        from repro.experiments.results import RunResult

        def row(name):
            return RunResult(
                protocol=name, topology_seed=1, duration_s=10.0,
                offered_packets=100, expected_deliveries=300,
                delivered_packets=250, delivered_bytes=128000,
                mean_delay_s=0.01, probe_bytes=0.0, counters={},
            )

        report = render_report(
            [row("odmrp@static"), row("odmrp@random-waypoint")],
            title="mobility cells",
        )
        assert "odmrp@static" in report
        assert "odmrp@random-waypoint" in report


# ----------------------------------------------------------------------
# Fuzzer integration


class TestFuzzerIntegration:
    def test_fuzzer_draws_moving_and_static_specs(self):
        from repro.validation.fuzzing import random_spec

        models = {
            random_spec(index).config.mobility.model for index in range(24)
        }
        assert "static" in models
        assert models & {"random-waypoint", "gauss-markov"}
        assert any(
            random_spec(index).config.energy.enabled for index in range(24)
        )
        for index in range(8):
            random_spec(index).validate()


@pytest.mark.fuzz
class TestMovingDifferential:
    """The full differential oracle on a moving mesh (``-m fuzz``)."""

    def test_moving_spec_agrees_across_every_path(self, tmp_path):
        from repro.validation.fuzzing import (
            differential_check,
            moving_validation_spec,
        )

        spec = dataclasses.replace(
            moving_validation_spec(), protocols=("odmrp",)
        )
        errors = differential_check(spec, jobs=2, work_dir=str(tmp_path))
        assert errors == [], "\n".join(errors)

    def test_moving_mini_sweep_passes_invariants(self):
        from repro.validation.fuzzing import (
            moving_validation_spec,
            run_with_invariants,
        )

        results = run_with_invariants(moving_validation_spec())
        assert all(result.error is None for result in results)
