"""Benchmark E6: Figure 2 column "Throughput-testbed".

Runs the Section 5 experiment (two groups: 2 -> {3, 5}, 4 -> {1, 7})
over the emulated Figure 4 floor for all six protocols.  Shape: PP and
SPP lead (the paper measured +17.5% and +14%), driven by the 40-60%
lossy links that PP's compounding penalty permanently blacklists.
"""

from __future__ import annotations

from repro.analysis.tables import render_comparison
from repro.experiments.figures import (
    PAPER_THROUGHPUT_TESTBED,
    figure2_throughput_testbed,
)
from benchmarks.conftest import testbed_config, testbed_seeds


def bench_fig2_throughput_testbed(benchmark):
    result = benchmark.pedantic(
        lambda: figure2_throughput_testbed(testbed_config(), testbed_seeds()),
        iterations=1,
        rounds=1,
    )
    print()
    print(render_comparison(
        result.measured, PAPER_THROUGHPUT_TESTBED,
        title=(
            f"Figure 2 / Throughput-testbed "
            f"({len(testbed_seeds())} runs x "
            f"{testbed_config().duration_s:.0f}s; paper: 5 x 400s)"
        ),
    ))
    benchmark.extra_info["normalized_throughput"] = result.measured
    measured = result.measured
    # PP and SPP must clearly beat the baseline on the testbed.
    assert measured["pp"] > 1.02
    assert measured["spp"] > 1.02
    # And they must lead the other metrics, as in the paper.
    assert max(measured["pp"], measured["spp"]) >= max(
        measured["etx"], measured["metx"], measured["ett"]
    )
