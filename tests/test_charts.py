"""Tests for the text chart renderers."""

from __future__ import annotations

import pytest

from repro.analysis.charts import (
    render_bar_chart,
    render_grouped_chart,
    render_sparkline,
)


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = render_bar_chart({"a": 1.0, "b": 2.0}, width=20)
        line_a, line_b = chart.splitlines()
        assert line_a.count("#") == 10
        assert line_b.count("#") == 20

    def test_values_printed(self):
        chart = render_bar_chart({"spp": 1.18}, precision=2)
        assert "1.18" in chart

    def test_baseline_marker_drawn(self):
        chart = render_bar_chart(
            {"odmrp": 1.0, "spp": 2.0}, width=20, baseline=1.0
        )
        odmrp_line = chart.splitlines()[0]
        # Baseline at half scale: marker at column 10 of the bar.
        assert "+" in odmrp_line or "|" in odmrp_line

    def test_title(self):
        chart = render_bar_chart({"a": 1.0}, title="Throughput")
        assert chart.splitlines()[0] == "Throughput"

    def test_validation(self):
        with pytest.raises(ValueError):
            render_bar_chart({}, width=20)
        with pytest.raises(ValueError):
            render_bar_chart({"a": 1.0}, width=5)
        with pytest.raises(ValueError):
            render_bar_chart({"a": 0.0})

    def test_labels_aligned(self):
        chart = render_bar_chart({"a": 1.0, "longer": 1.0})
        lines = chart.splitlines()
        assert lines[0].index("#") == lines[1].index("#")


class TestGroupedChart:
    def test_blocks_joined(self):
        chart = render_grouped_chart(
            {"one": {"a": 1.0}, "two": {"b": 2.0}}
        )
        assert "one" in chart and "two" in chart
        assert "\n\n" in chart


class TestSparkline:
    def test_empty(self):
        assert render_sparkline([]) == ""

    def test_constant_is_flat(self):
        line = render_sparkline([3.0, 3.0, 3.0])
        assert len(set(line)) == 1
        assert len(line) == 3

    def test_monotone_ramp_uses_range(self):
        line = render_sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8, 9])
        assert line[0] == " "
        assert line[-1] == "@"
