"""Failure-injection tests: radio outages and ODMRP's soft-state repair."""

from __future__ import annotations

import pytest

from repro.experiments.faults import (
    FailureInjector,
    FaultPlan,
    FlappingSpec,
    OutageWindow,
)
from repro.net.packet import Packet, PacketKind
from repro.sim.process import PeriodicTask
from tests.conftest import link, make_loss_network
from tests.test_odmrp import build_routers


class TestNodeActiveFlag:
    def test_down_node_receives_nothing(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        heard = []
        network.nodes[1].register_handler(
            PacketKind.DATA, lambda p, s, pw: heard.append(p.uid)
        )
        network.nodes[1].set_active(False)
        network.nodes[0].send_broadcast(Packet(PacketKind.DATA, 0, 100, 0.0))
        network.run(1.0)
        assert heard == []

    def test_down_node_sends_nothing(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        heard = []
        network.nodes[1].register_handler(
            PacketKind.DATA, lambda p, s, pw: heard.append(p.uid)
        )
        network.nodes[0].set_active(False)
        network.nodes[0].send_broadcast(Packet(PacketKind.DATA, 0, 100, 0.0))
        network.run(1.0)
        assert heard == []
        assert network.channel.counters.get("channel.tx_dropped_node_down") == 1

    def test_mac_keeps_cycling_while_down(self):
        """Frames queued during an outage drain instead of wedging the MAC."""
        network = make_loss_network(2, {link(0, 1): 0.0})
        heard = []
        network.nodes[1].register_handler(
            PacketKind.DATA, lambda p, s, pw: heard.append(p.payload)
        )
        network.nodes[0].set_active(False)
        for i in range(3):
            network.nodes[0].send_broadcast(
                Packet(PacketKind.DATA, 0, 100, 0.0, payload=i)
            )
        network.sim.schedule(0.5, network.nodes[0].set_active, True)
        network.sim.schedule(
            1.0,
            lambda: network.nodes[0].send_broadcast(
                Packet(PacketKind.DATA, 0, 100, 0.0, payload="after")
            ),
        )
        network.run(2.0)
        assert heard == ["after"]

    def test_down_kills_inflight_reception(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        heard = []
        network.nodes[1].register_handler(
            PacketKind.DATA, lambda p, s, pw: heard.append(p.uid)
        )
        # A 1500 B frame takes ~6 ms; take the receiver down mid-flight.
        network.nodes[0].send_broadcast(Packet(PacketKind.DATA, 0, 1500, 0.0))
        network.sim.schedule(0.003, network.nodes[1].set_active, False)
        network.run(1.0)
        assert heard == []

    def test_recovery_restores_connectivity(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        heard = []
        network.nodes[1].register_handler(
            PacketKind.DATA, lambda p, s, pw: heard.append(p.uid)
        )
        network.nodes[1].set_active(False)
        network.nodes[1].set_active(True)
        network.nodes[0].send_broadcast(Packet(PacketKind.DATA, 0, 100, 0.0))
        network.run(1.0)
        assert len(heard) == 1

    def test_set_active_idempotent(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        node = network.nodes[0]
        node.set_active(True)  # already up: no event counted
        assert node.counters.get("node.up_events") == 0
        node.set_active(False)
        node.set_active(False)
        assert node.counters.get("node.down_events") == 1


class TestFailureInjector:
    def test_outage_window_validation(self):
        with pytest.raises(ValueError):
            OutageWindow(node_id=0, start_s=2.0, end_s=1.0)

    def test_scheduled_outage_applies_and_recovers(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        injector = FailureInjector(network.sim)
        injector.schedule_outage(network.nodes[1], 1.0, 2.0)
        network.run(1.5)
        assert not network.nodes[1].active
        network.run(2.5)
        assert network.nodes[1].active
        assert injector.total_downtime_s(1) == pytest.approx(1.0)

    def test_flapping_counts_and_bounds(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        injector = FailureInjector(network.sim)
        count = injector.schedule_flapping(
            network.nodes[0], start_s=0.0, period_s=10.0,
            down_fraction=0.3, until_s=35.0,
        )
        assert count == 4
        assert injector.total_downtime_s(0) == pytest.approx(3 * 3.0 + 3.0)

    def test_flapping_validation(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        injector = FailureInjector(network.sim)
        with pytest.raises(ValueError):
            injector.schedule_flapping(network.nodes[0], 0.0, 10.0, 1.5, 20.0)
        with pytest.raises(ValueError):
            injector.schedule_flapping(network.nodes[0], 0.0, 0.0, 0.5, 20.0)

    def test_overlapping_windows_count_downtime_once(self):
        """Regression: overlapping outages double-counted downtime.

        Two outages of [1, 4] and [3, 6] keep the node down for 5 s, not
        7 s -- a node that is already down cannot go "more down".  The
        naive per-window sum reported 7.
        """
        network = make_loss_network(2, {link(0, 1): 0.0})
        injector = FailureInjector(network.sim)
        injector.schedule_outage(network.nodes[1], 1.0, 4.0)
        injector.schedule_outage(network.nodes[1], 3.0, 6.0)
        assert injector.total_downtime_s(1) == pytest.approx(5.0)

    def test_flapping_overlapping_an_outage_counts_once(self):
        """Flapping windows nested inside a long outage add nothing."""
        network = make_loss_network(2, {link(0, 1): 0.0})
        injector = FailureInjector(network.sim)
        injector.schedule_outage(network.nodes[0], 0.0, 30.0)
        # Down-phases at [0, 3], [10, 13], [20, 23]: all inside [0, 30].
        injector.schedule_flapping(
            network.nodes[0], start_s=0.0, period_s=10.0,
            down_fraction=0.3, until_s=25.0,
        )
        assert injector.total_downtime_s(0) == pytest.approx(30.0)
        # A window poking past the outage extends it by the overhang only.
        injector.schedule_outage(network.nodes[0], 28.0, 33.0)
        assert injector.total_downtime_s(0) == pytest.approx(33.0)

    def test_identical_windows_count_once(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        injector = FailureInjector(network.sim)
        injector.schedule_outage(network.nodes[1], 2.0, 5.0)
        injector.schedule_outage(network.nodes[1], 2.0, 5.0)
        assert injector.total_downtime_s(1) == pytest.approx(3.0)


class TestFaultPlan:
    def test_empty_plan_is_empty(self):
        assert FaultPlan().is_empty()
        assert not FaultPlan(outages=(OutageWindow(0, 1.0, 2.0),)).is_empty()

    def test_validate_for_rejects_unknown_nodes(self):
        plan = FaultPlan(outages=(OutageWindow(5, 1.0, 2.0),))
        plan.validate_for(6)
        with pytest.raises(ValueError):
            plan.validate_for(5)
        flap = FaultPlan(flapping=(FlappingSpec(9, 0.0, 10.0, 0.3, 20.0),))
        with pytest.raises(ValueError):
            flap.validate_for(9)

    def test_apply_schedules_against_the_injector(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        injector = FailureInjector(network.sim)
        plan = FaultPlan(
            outages=(OutageWindow(1, 1.0, 2.0),),
            flapping=(FlappingSpec(0, 0.0, 10.0, 0.3, 15.0),),
        )
        plan.apply(injector, {n.node_id: n for n in network.nodes})
        assert injector.total_downtime_s(1) == pytest.approx(1.0)
        assert injector.total_downtime_s(0) == pytest.approx(6.0)
        network.run(1.5)
        assert not network.nodes[1].active


class TestOdmrpRepair:
    def test_route_repairs_around_failed_forwarder(self):
        """A diamond with a dead relay: the refresh flood rebuilds the
        forwarding group through the surviving relay."""
        losses = {
            link(0, 1): 0.0, link(1, 3): 0.0,
            link(0, 2): 0.0, link(2, 3): 0.0,
            link(1, 2): 0.0,
        }
        network = make_loss_network(4, losses, seed=3)
        deliveries = []
        routers = build_routers(network, deliveries=deliveries)
        routers[3].join_group(1)
        routers[0].start_source(1)
        network.run(2.0)
        task = PeriodicTask(network.sim, 0.05, lambda: routers[0].send_data(1))
        task.start()
        # Find which relay carries the data, then kill it.
        network.run(8.0)
        before = len(deliveries)
        assert before > 0
        used_relay = max(
            (1, 2),
            key=lambda i: network.nodes[i].counters.get("odmrp.data_forwarded"),
        )
        injector = FailureInjector(network.sim)
        injector.schedule_outage(
            network.nodes[used_relay], 8.5, 60.0
        )
        network.run(60.0)
        task.stop()
        after = len(deliveries)
        # ~51 s of 20 pkt/s traffic with one relay dead: the soft-state
        # refresh must re-route most of it through the other relay.
        recovered = after - before
        assert recovered > 0.6 * 51 * 20

    def test_source_outage_stops_and_resumes_traffic(self):
        network = make_loss_network(3, {link(0, 1): 0.0, link(1, 2): 0.0})
        deliveries = []
        routers = build_routers(network, deliveries=deliveries)
        routers[2].join_group(1)
        routers[0].start_source(1)
        network.run(2.0)
        task = PeriodicTask(network.sim, 0.1, lambda: routers[0].send_data(1))
        task.start()
        injector = FailureInjector(network.sim)
        injector.schedule_outage(network.nodes[0], 5.0, 15.0)
        network.run(5.5)
        during_start = len(deliveries)
        network.run(14.5)
        during_end = len(deliveries)
        assert during_end == during_start  # nothing delivered while down
        network.run(40.0)
        task.stop()
        assert len(deliveries) > during_end  # resumed after recovery
