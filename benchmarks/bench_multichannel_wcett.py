"""Benchmark (extension): multi-channel path selection with MC-WCETT.

The paper's stated future work.  Samples random multi-radio meshes with
an interference-aware channel assignment and compares the paths chosen
by channel-blind ETT against MC-WCETT across a beta sweep: how often the
channel-aware metric finds a path with a lower bottleneck-channel
airtime, at what total-airtime cost.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.multichannel.study import run_path_selection_study

BETAS = (0.0, 0.3, 0.5, 0.8)


def run_sweep():
    return {
        beta: run_path_selection_study(
            num_meshes=4, num_nodes=20, pairs_per_mesh=6, beta=beta, seed=7
        )
        for beta in BETAS
    }


def bench_multichannel_wcett(benchmark):
    results = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    rows = []
    for beta, result in sorted(results.items()):
        rows.append((
            f"{beta:.1f}",
            str(result.pairs_evaluated),
            f"{result.improvement_rate:.0%}",
            f"{result.mean_bottleneck_reduction_pct:+.1f}%",
            f"{result.mean_airtime_overhead_pct:+.1f}%",
        ))
    print()
    print(render_table(
        ("beta", "pairs", "paths improved", "bottleneck reduction",
         "airtime overhead"),
        rows,
        title=(
            "MC-WCETT vs channel-blind ETT on multi-radio meshes "
            "(future-work extension)"
        ),
    ))
    benchmark.extra_info["by_beta"] = {
        f"{beta:.1f}": {
            "improvement_rate": result.improvement_rate,
            "bottleneck_reduction_pct": result.mean_bottleneck_reduction_pct,
        }
        for beta, result in results.items()
    }
    # beta = 0 is exactly ETT: no bottleneck improvements by construction.
    assert results[0.0].mean_bottleneck_reduction_pct <= 1e-9
    # A positive beta must find at least some channel-diverse wins.
    assert any(
        results[beta].wcett_improved > 0 for beta in BETAS if beta > 0
    )
    # Diversity must not cost unbounded extra airtime.
    for beta in BETAS:
        assert results[beta].mean_airtime_overhead_pct < 30.0
