"""Shared test fixtures, Hypothesis profiles, and network helpers."""

from __future__ import annotations

import os
from typing import Dict, FrozenSet, Optional, Sequence

import pytest
from hypothesis import settings
from hypothesis.database import DirectoryBasedExampleDatabase

from repro.net.network import Network, NetworkConfig
from repro.net.topology import Position, chain_topology
from repro.sim.engine import Simulator
from repro.testbed.linkmodel import (
    EmpiricalChannel,
    LinkProfile,
    TimeVaryingLoss,
    testbed_radio_params,
)

# ----------------------------------------------------------------------
# Hypothesis: one shared profile instead of per-test @settings noise.
#
# Simulation-backed properties routinely exceed Hypothesis's default
# per-example deadline (a single example builds and runs a network), so
# the deadline is off globally.  The example database lives inside the
# repo's .hypothesis/ (gitignored) so shrunk counterexamples replay
# across local runs; CI selects the derandomized "ci" profile via
# HYPOTHESIS_PROFILE for reproducible, bounded jobs.

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
settings.register_profile(
    "repro",
    deadline=None,
    database=DirectoryBasedExampleDatabase(
        os.path.join(_REPO_ROOT, ".hypothesis", "examples")
    ),
)
settings.register_profile(
    "ci",
    parent=settings.get_profile("repro"),
    derandomize=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path_factory, monkeypatch):
    """Keep the experiment result cache out of the repo during tests.

    CLI commands cache by default; without this, tests exercising them
    would write .repro_cache/ into the working tree.
    """
    monkeypatch.setenv(
        "REPRO_CACHE_DIR",
        str(tmp_path_factory.mktemp("repro-cache")),
    )


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=1234)


def make_clean_network(
    positions: Sequence[Position],
    seed: int = 7,
    config: Optional[NetworkConfig] = None,
) -> Network:
    """A network with deterministic (no-fading) radios."""
    if config is None:
        config = NetworkConfig(rayleigh_fading=False)
    return Network(positions, seed=seed, config=config)


def make_chain_network(
    num_nodes: int = 4, spacing_m: float = 200.0, seed: int = 7
) -> Network:
    """No-fading chain; adjacent nodes connected, others out of range."""
    return make_clean_network(chain_topology(num_nodes, spacing_m), seed=seed)


def make_loss_network(
    num_nodes: int,
    losses: Dict[FrozenSet[int], float],
    seed: int = 7,
) -> Network:
    """A network with exact, constant per-link loss probabilities.

    Links absent from ``losses`` do not exist.  This is the workhorse for
    protocol tests that need engineered topologies (e.g. the Figure 1 and
    Figure 3 examples as live networks).
    """

    class _FixedLoss(TimeVaryingLoss):
        def __init__(self, value: float) -> None:
            self._fixed = value

        def loss_at(self, now: float) -> float:  # noqa: D401
            return self._fixed

    profiles = {
        key: LinkProfile(loss=_FixedLoss(value))
        for key, value in losses.items()
    }
    positions = [Position(float(i * 10), 0.0) for i in range(num_nodes)]
    return Network(
        positions,
        seed=seed,
        channel_factory=lambda sim: EmpiricalChannel(sim, profiles),
        radio_params=testbed_radio_params(),
    )


def link(a: int, b: int) -> FrozenSet[int]:
    return frozenset((a, b))
