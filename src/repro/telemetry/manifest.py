"""Run manifests: the provenance record at the head of every trace.

A manifest pins down everything needed to interpret (or re-run) the run
that produced a telemetry artifact: protocol, seed, a content hash over
the canonicalized config, the package version, host info, and wall-time
accounting.  ``canonicalize`` is the single canonical-form reducer for
config objects -- the experiment cache keys
(:mod:`repro.experiments.parallel`) and manifest config hashes are built
from the same reduction, so a config change invalidates both in lockstep.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Bump when the manifest record shape changes.
#: v2: manifests carry the registry resolution (``family``, ``metric``)
#: next to the protocol name, so a trace pins which router x metric
#: binding produced it.
MANIFEST_SCHEMA_VERSION = 2


def canonicalize(obj: Any) -> Any:
    """Recursively reduce a config object to JSON-stable primitives.

    Dataclasses become sorted field dicts; floats keep their exact repr
    via JSON; anything exotic (a custom propagation or fading model
    instance) falls back to ``repr`` -- good enough to key a cache, since
    two differently-configured models must repr differently to be
    distinguishable at all.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(key): canonicalize(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return repr(obj)


def config_digest(payload: Any) -> str:
    """SHA-256 hex digest over the canonical JSON form of ``payload``."""
    blob = json.dumps(
        canonicalize(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def package_version() -> str:
    """Installed package version, falling back to the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except Exception:  # noqa: BLE001 - metadata unavailable: use source
        pass
    import repro

    return repro.__version__


def host_info() -> Dict[str, str]:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


@dataclass
class RunManifest:
    """Provenance header of one telemetry trace."""

    protocol: str
    seed: int
    config_hash: str
    schema: int = MANIFEST_SCHEMA_VERSION
    #: Registry resolution of the protocol name ("" / None for traces
    #: written by pre-registry versions or hand-built scenarios).
    family: str = ""
    metric: Optional[str] = None
    package_version: str = ""
    created_unix: float = 0.0
    wall_time_s: float = 0.0
    sim_duration_s: float = 0.0
    events_executed: int = 0
    host: Dict[str, str] = field(default_factory=dict)
    config: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def events_per_wall_second(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.events_executed / self.wall_time_s

    def to_record(self) -> Dict[str, Any]:
        record = dataclasses.asdict(self)
        record["type"] = "manifest"
        return record

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "RunManifest":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in record.items() if k in fields})


def build_manifest(
    protocol: str,
    config: Any,
    seed: int,
    wall_time_s: float = 0.0,
    sim_duration_s: float = 0.0,
    events_executed: int = 0,
    family: str = "",
    metric: Optional[str] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> RunManifest:
    """Assemble a manifest for one finished (or about-to-run) run."""
    return RunManifest(
        protocol=protocol.lower(),
        seed=seed,
        config_hash=config_digest(config),
        family=family,
        metric=metric,
        package_version=package_version(),
        created_unix=time.time(),
        wall_time_s=wall_time_s,
        sim_duration_s=sim_duration_s,
        events_executed=events_executed,
        host=host_info(),
        config=canonicalize(config),
        extra=dict(extra or {}),
    )
