"""How the probing machinery sees good and bad links.

Sets up three point-to-point links with engineered loss rates (clean,
moderately lossy, very lossy), runs both probe families over them, and
prints each metric's view of each link over time -- including PP's
signature exponential cost blow-up on the very lossy link.

Run:  python examples/link_probing_demo.py
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.metrics import EttMetric, EtxMetric, MetxMetric, PpMetric, SppMetric
from repro.probing.broadcast_probe import BroadcastProbeAgent
from repro.probing.neighbor_table import NeighborTable
from repro.probing.packet_pair import PacketPairAgent
from repro.net.network import Network
from repro.net.topology import Position
from repro.testbed.linkmodel import (
    EmpiricalChannel,
    LinkProfile,
    TimeVaryingLoss,
    testbed_radio_params,
)


class FixedLoss(TimeVaryingLoss):
    """Constant loss probability (the demo wants exact values)."""

    def __init__(self, value: float) -> None:
        self._value_fixed = value

    def loss_at(self, now: float) -> float:
        return self._value_fixed


LINKS = {"clean": 0.02, "moderate": 0.30, "terrible": 0.60}


def main() -> None:
    # Nodes 0, 2, 4 probe; nodes 1, 3, 5 measure. One isolated link each.
    profiles = {}
    for index, loss in enumerate(LINKS.values()):
        profiles[frozenset((2 * index, 2 * index + 1))] = LinkProfile(
            loss=FixedLoss(loss)
        )
    positions = [Position(float(i * 100), 0.0) for i in range(6)]
    network = Network(
        positions,
        seed=42,
        channel_factory=lambda sim: EmpiricalChannel(sim, profiles),
        radio_params=testbed_radio_params(),
    )

    tables = {}
    for index in range(3):
        sender, receiver = network.nodes[2 * index], network.nodes[2 * index + 1]
        # A wider window than the protocol default (10 intervals) so the
        # printed df estimates are visibly converged, not window noise.
        tables[index] = NeighborTable(network.sim, receiver, window_intervals=40)
        BroadcastProbeAgent(network.sim, sender, interval_s=5.0).start()
        PacketPairAgent(network.sim, sender, interval_s=10.0).start()

    metrics = [EtxMetric(), EttMetric(), PpMetric(), MetxMetric(), SppMetric()]
    for checkpoint in (60.0, 200.0, 400.0):
        network.run(checkpoint)
        rows = []
        for index, (name, loss) in enumerate(LINKS.items()):
            quality = tables[index].link_quality(2 * index)
            cost_cells = []
            for metric in metrics:
                cost = metric.link_cost(quality)
                cost_cells.append(
                    f"{cost:.4g}" if cost != float("inf") else "inf"
                )
            rows.append((name, f"{loss:.0%}", f"{quality.forward_delivery_ratio:.2f}",
                         *cost_cells))
        print()
        print(render_table(
            ("link", "true loss", "measured df",
             "ETX", "ETT", "PP", "METX(df)", "SPP(df)"),
            rows,
            title=f"t = {checkpoint:.0f} s",
        ))
    print(
        "\nNote how PP's cost on the terrible link keeps growing with "
        "time (the 20% penalty compounds every lost pair) while the "
        "loss-window metrics stabilize around the true loss rate."
    )


if __name__ == "__main__":
    main()
