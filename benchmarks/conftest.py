"""Shared scaling knobs and fixtures for the benchmark suite.

Every benchmark runs a scaled-down version of a paper experiment by
default (the whole suite completes in minutes) and scales to paper size
through environment variables:

* ``REPRO_SIM_DURATION``  -- seconds of simulated time (paper: 400)
* ``REPRO_TOPOLOGIES``    -- random topologies per protocol (paper: 10)
* ``REPRO_RUNS``          -- testbed repetitions (paper: 5)
* ``REPRO_NODES``         -- simulation network size (paper: 50)
* ``REPRO_JOBS``          -- worker processes for the shared simulation
  sweep (0 = one per CPU; default 1).  Runs are seed-deterministic, so
  parallel sweeps report identical numbers, just sooner.

Example paper-scale run (tens of minutes):

    REPRO_SIM_DURATION=400 REPRO_TOPOLOGIES=10 REPRO_RUNS=5 \
        pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os
from typing import List, Tuple

import pytest

from repro.experiments.results import RunResult
from repro.experiments.scenarios import SimulationScenarioConfig
from repro.testbed.emulator import TestbedScenarioConfig


def env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


def env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def sim_duration() -> float:
    return env_float("REPRO_SIM_DURATION", 150.0)


def topology_seeds() -> Tuple[int, ...]:
    return tuple(range(1, env_int("REPRO_TOPOLOGIES", 1) + 1))


def testbed_seeds() -> Tuple[int, ...]:
    return tuple(range(1, env_int("REPRO_RUNS", 2) + 1))


def sweep_jobs() -> int:
    return env_int("REPRO_JOBS", 1)


def simulation_config() -> SimulationScenarioConfig:
    return SimulationScenarioConfig(
        num_nodes=env_int("REPRO_NODES", 50),
        duration_s=sim_duration(),
        warmup_s=min(30.0, sim_duration() / 4),
    )


def testbed_config() -> TestbedScenarioConfig:
    duration = env_float("REPRO_SIM_DURATION", 400.0)
    return TestbedScenarioConfig(
        duration_s=duration, warmup_s=min(30.0, duration / 4)
    )


@pytest.fixture(scope="session")
def shared_simulation_sweep() -> List[RunResult]:
    """One full-protocol sweep shared by the Figure 2 / Table 1 benches.

    The throughput, delay, and overhead columns of the paper all come
    from the same runs; sharing the sweep keeps the suite's wall time
    proportional to one comparison, not three.
    """
    from repro.experiments.figures import simulation_sweep

    return simulation_sweep(
        simulation_config(), topology_seeds(), jobs=sweep_jobs()
    )
