"""Benchmark E10: Figure 4, ping-based link classification.

Runs the authors' methodology (a series of ping exchanges per node pair)
over the emulated floor and checks the measured lossy/low-loss verdicts
against the Figure 4 ground truth.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.testbed.emulator import TestbedScenarioConfig, build_testbed_scenario
from repro.testbed.floormap import testbed_links
from repro.testbed.ping import classify_links_by_ping, symmetric_classification


def run_classification():
    scenario = build_testbed_scenario(
        "odmrp", TestbedScenarioConfig(run_seed=2)
    )
    directed = classify_links_by_ping(scenario.network, pings_per_node=150)
    return scenario, symmetric_classification(directed)


def bench_fig4_link_classification(benchmark):
    scenario, merged = benchmark.pedantic(
        run_classification, iterations=1, rounds=1
    )
    truth = {link.key: link.lossy for link in testbed_links()}
    rows = []
    correct = 0
    for key, verdict in sorted(merged.items(), key=lambda kv: sorted(kv[0])):
        a, b = sorted(scenario.index_to_label[i] for i in key)
        expected = truth[frozenset((a, b))]
        match = verdict.lossy == expected
        correct += match
        rows.append((
            f"{a}-{b}",
            f"{verdict.loss_rate:.0%}",
            "lossy" if verdict.lossy else "low-loss",
            "lossy" if expected else "low-loss",
            "ok" if match else "MISMATCH",
        ))
    print()
    print(render_table(
        ("link", "ping loss", "classified", "figure 4", "verdict"),
        rows,
        title="Figure 4: ping-based link classification of the testbed",
    ))
    assert len(merged) == len(truth), "every Figure 4 link must be measured"
    assert correct == len(rows), "classification must match Figure 4"
