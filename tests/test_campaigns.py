"""Tests for the fault-campaign planner (:mod:`repro.experiments.campaigns`).

Covers severity sampling (inverse-CDF correctness, likelihood ratios,
the importance on/off switch), fault materialization per generator kind
(determinism, severity scaling, the source-uptime guard), the
``[campaign]`` spec section's strict round-trip and validation, the
campaign plan's journal records (written, replayable, invisible to run
replay, compaction-proof), resume bit-identity, the weighted result
analysis (paired relative delivery, tail probabilities, verdicts), the
Robustness report section, and the CLI flag.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.experiments.campaigns import (
    CampaignConfig,
    CampaignDraw,
    CampaignResult,
    FaultGeneratorSpec,
    GENERATOR_KINDS,
    SOURCE_GUARD_FRACTION,
    default_generators,
    draw_campaign,
    materialize_fault_plan,
    plan_digest,
    replay_campaign_plan,
    run_campaign_experiment,
    severity_from_uniform,
)
from repro.experiments.faults import FaultPlan, OutageWindow
from repro.experiments.report import (
    injected_downtime_note,
    render_report,
    robustness_section,
)
from repro.experiments.resilience import SweepJournal
from repro.experiments.results import RunResult
from repro.experiments.scenarios import (
    SimulationScenarioConfig,
    build_simulation_scenario,
)
from repro.experiments.spec import ExperimentSpec, SpecError

TINY_CONFIG = SimulationScenarioConfig(
    num_nodes=8,
    area_width_m=500.0,
    area_height_m=500.0,
    num_groups=1,
    members_per_group=4,
    duration_s=8.0,
    warmup_s=2.0,
)


def tiny_spec(**overrides) -> ExperimentSpec:
    campaign = overrides.pop(
        "campaign", CampaignConfig(draws=2, master_seed=5)
    )
    defaults = dict(
        name="tiny-campaign",
        protocols=("odmrp", "spp"),
        seeds=(1, 2),
        campaign=campaign,
        config=TINY_CONFIG,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


@pytest.fixture(scope="module")
def tiny_campaign():
    """One shared campaign execution for every assertion below."""
    return run_campaign_experiment(tiny_spec())


class TestSeveritySampling:
    def test_severe_branch_inverse_cdf(self):
        # u above DEFENSIVE_MIX samples the severe power law: the
        # rescaled uniform 0.756 -> (0.756 - 0.5) / 0.5 = 0.512, and
        # 0.512 ** (1/3) = 0.8.
        campaign = CampaignConfig(proposal_shape=3.0)
        theta, _w = severity_from_uniform(0.756, campaign)
        assert theta == pytest.approx(0.8)

    def test_nominal_branch_inverse_cdf(self):
        # u below DEFENSIVE_MIX samples the nominal component with the
        # rescaled uniform 0.244 / 0.5 = 0.488.
        campaign = CampaignConfig(nominal_shape=3.0)
        theta, _w = severity_from_uniform(0.244, campaign)
        assert theta == pytest.approx(1.0 - 0.512 ** (1.0 / 3.0))

    def test_nominal_inverse_cdf_when_importance_off(self):
        campaign = CampaignConfig(nominal_shape=3.0, importance=False)
        theta, weight = severity_from_uniform(0.488, campaign)
        assert theta == pytest.approx(1.0 - 0.512 ** (1.0 / 3.0))
        assert weight == 1.0

    def test_weight_is_mixture_likelihood_ratio(self):
        from repro.experiments.campaigns import DEFENSIVE_MIX

        campaign = CampaignConfig(nominal_shape=4.0, proposal_shape=2.0)
        theta, weight = severity_from_uniform(0.49, campaign)
        nominal = 4.0 * (1.0 - theta) ** 3.0
        severe = 2.0 * theta
        mixture = DEFENSIVE_MIX * nominal + (1.0 - DEFENSIVE_MIX) * severe
        assert weight == pytest.approx(nominal / mixture, rel=1e-12)

    def test_weights_bounded_by_defensive_mix(self):
        """The defensive mixture's whole point: no draw can weigh more
        than 1 / DEFENSIVE_MIX, however mild it lands."""
        from repro.experiments.campaigns import DEFENSIVE_MIX

        campaign = CampaignConfig(nominal_shape=6.0, proposal_shape=8.0)
        for i in range(101):
            _theta, weight = severity_from_uniform(i / 100.0, campaign)
            assert 0.0 < weight <= 1.0 / DEFENSIVE_MIX + 1e-12

    def test_endpoints_stay_finite(self):
        campaign = CampaignConfig()
        for u in (0.0, 0.5, 1.0):
            theta, weight = severity_from_uniform(u, campaign)
            assert 0.0 < theta < 1.0
            assert math.isfinite(weight) and weight >= 0.0

    def test_severe_draws_get_small_weights(self):
        """The tilt's whole point: a severe draw is over-represented
        under the proposal, so its weight back to the nominal world
        must be below a mild draw's weight."""
        campaign = CampaignConfig(nominal_shape=3.0, proposal_shape=3.0)
        _mild, mild_weight = severity_from_uniform(0.1, campaign)
        _severe, severe_weight = severity_from_uniform(0.9, campaign)
        assert severe_weight < mild_weight


class TestGeneratorValidation:
    def test_defaults_cover_every_kind(self):
        assert tuple(g.kind for g in default_generators()) == GENERATOR_KINDS
        for generator in default_generators():
            generator.validate()

    @pytest.mark.parametrize("kwargs", [
        {"kind": "meteor"},
        {"weight": 0.0},
        {"max_node_fraction": 0.0},
        {"max_node_fraction": 1.5},
        {"max_outage_fraction": -0.1},
        {"period_s": 0.0},
        {"radius_fraction": 2.0},
        {"ramp_steps": 0},
        {"ramp_steps": True},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultGeneratorSpec(**kwargs).validate()


class TestCampaignConfigValidation:
    def test_defaults_valid(self):
        CampaignConfig().validate()

    @pytest.mark.parametrize("kwargs", [
        {"draws": 0},
        {"draws": True},
        {"master_seed": 1.5},
        {"nominal_shape": 0.5},
        {"proposal_shape": 0.0},
        {"tail_fraction": 0.0},
        {"tail_fraction": 1.0},
        {"generators": (FaultGeneratorSpec(kind="nope"),)},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CampaignConfig(**kwargs).validate()


class TestMaterialization:
    @pytest.mark.parametrize("kind", GENERATOR_KINDS)
    def test_deterministic_per_rng_seed(self, kind):
        generator = FaultGeneratorSpec(kind=kind)
        first = materialize_fault_plan(
            generator, 0.7, TINY_CONFIG, 1, random.Random(42)
        )
        second = materialize_fault_plan(
            generator, 0.7, TINY_CONFIG, 1, random.Random(42)
        )
        assert first == second
        assert plan_digest(first) == plan_digest(second)

    @pytest.mark.parametrize("kind", GENERATOR_KINDS)
    def test_windows_inside_simulation(self, kind):
        plan = materialize_fault_plan(
            FaultGeneratorSpec(kind=kind), 0.9, TINY_CONFIG, 1,
            random.Random(7),
        )
        plan.validate_for(TINY_CONFIG.num_nodes)
        for window in plan.outages:
            assert TINY_CONFIG.warmup_s <= window.start_s
            assert window.end_s <= TINY_CONFIG.duration_s
        for flap in plan.flapping:
            assert flap.until_s <= TINY_CONFIG.duration_s

    def test_severity_scales_downtime(self):
        """Higher theta must inject (weakly) more downtime for the same
        structural randomness."""
        generator = FaultGeneratorSpec(kind="storm")
        mild = materialize_fault_plan(
            generator, 0.2, TINY_CONFIG, 1, random.Random(3)
        )
        severe = materialize_fault_plan(
            generator, 0.9, TINY_CONFIG, 1, random.Random(3)
        )
        assert severe.merged_downtime_s() > mild.merged_downtime_s()

    @pytest.mark.parametrize("kind", GENERATOR_KINDS)
    def test_sources_keep_guard_tail(self, kind):
        """Materialized plans always pass the source-uptime check the
        scenario builder enforces: by construction no source is down
        into the final guard fraction of the traffic interval."""
        from repro.experiments.campaigns import _source_ids

        for rng_seed in range(5):
            plan = materialize_fault_plan(
                FaultGeneratorSpec(kind=kind), 0.97, TINY_CONFIG, 1,
                random.Random(rng_seed),
            )
            sources = _source_ids(TINY_CONFIG, 1)
            plan.assert_source_uptime(
                sources, TINY_CONFIG.warmup_s, TINY_CONFIG.duration_s
            )
            guard_start = TINY_CONFIG.duration_s - SOURCE_GUARD_FRACTION * (
                TINY_CONFIG.duration_s - TINY_CONFIG.warmup_s
            )
            for source in sources:
                assert not plan.covers_interval(
                    source, guard_start, TINY_CONFIG.duration_s
                )

    def test_scenario_builder_accepts_materialized_plans(self):
        plan = materialize_fault_plan(
            FaultGeneratorSpec(kind="storm"), 0.95, TINY_CONFIG, 1,
            random.Random(11),
        )
        import dataclasses

        build_simulation_scenario("odmrp", dataclasses.replace(
            TINY_CONFIG, faults=plan, topology_seed=1
        ))


class TestDrawCampaign:
    def test_deterministic_plan(self):
        campaign = CampaignConfig(draws=4, master_seed=9)
        first = draw_campaign(campaign, TINY_CONFIG, (1, 2))
        second = draw_campaign(campaign, TINY_CONFIG, (1, 2))
        assert [d.plan_dict() for d in first] == [
            d.plan_dict() for d in second
        ]

    def test_master_seed_moves_the_plan(self):
        first = draw_campaign(
            CampaignConfig(draws=4, master_seed=1), TINY_CONFIG, (1,)
        )
        second = draw_campaign(
            CampaignConfig(draws=4, master_seed=2), TINY_CONFIG, (1,)
        )
        assert [d.plan_dict() for d in first] != [
            d.plan_dict() for d in second
        ]

    def test_one_plan_per_seed(self):
        draws = draw_campaign(
            CampaignConfig(draws=3, master_seed=0), TINY_CONFIG, (1, 2, 3)
        )
        assert len(draws) == 3
        for draw in draws:
            assert sorted(draw.plans) == [1, 2, 3]
            assert draw.generator in GENERATOR_KINDS
            assert 0.0 < draw.theta < 1.0
            assert draw.weight >= 0.0

    def test_importance_off_gives_unit_weights(self):
        draws = draw_campaign(
            CampaignConfig(draws=5, master_seed=0, importance=False),
            TINY_CONFIG, (1,),
        )
        assert all(draw.weight == 1.0 for draw in draws)


class TestSpecIntegration:
    def test_toml_round_trip(self):
        spec = tiny_spec(campaign=CampaignConfig(
            draws=3, master_seed=11, nominal_shape=4.0, proposal_shape=2.5,
            importance=False, tail_fraction=0.4, baseline="odmrp",
            generators=(
                FaultGeneratorSpec(kind="storm", weight=2.0),
                FaultGeneratorSpec(kind="flapping", period_s=4.0),
            ),
        ))
        assert ExperimentSpec.from_toml(spec.to_toml()) == spec

    def test_json_round_trip(self):
        spec = tiny_spec()
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_campaign_section_omitted_when_absent(self):
        spec = tiny_spec(campaign=None)
        assert "[campaign]" not in spec.to_toml()

    def test_rejects_adaptive_combination(self):
        from repro.experiments.adaptive import AdaptiveConfig

        with pytest.raises(SpecError, match="pick one planner"):
            tiny_spec(adaptive=AdaptiveConfig()).validate()

    def test_rejects_mobility_axis(self):
        with pytest.raises(SpecError, match="mobility"):
            tiny_spec(mobility_models=("static", "waypoint")).validate()

    def test_rejects_spec_level_faults(self):
        import dataclasses

        config = dataclasses.replace(TINY_CONFIG, faults=FaultPlan(
            outages=(OutageWindow(0, 3.0, 4.0),)
        ))
        with pytest.raises(SpecError, match="faults"):
            tiny_spec(config=config).validate()

    def test_rejects_unknown_baseline(self):
        with pytest.raises(SpecError, match="baseline"):
            tiny_spec(
                campaign=CampaignConfig(baseline="maodv")
            ).validate()

    def test_surfaces_campaign_errors_as_spec_errors(self):
        with pytest.raises(SpecError, match="draws"):
            tiny_spec(campaign=CampaignConfig(draws=0)).validate()

    def test_total_runs_counts_baseline_and_draws(self):
        spec = tiny_spec(campaign=CampaignConfig(draws=3))
        # 2 protocols x 2 seeds x (1 baseline + 3 draws).
        assert spec.total_runs == 16

    def test_describe_mentions_campaign(self):
        text = tiny_spec().describe()
        assert "campaign: 2 fault draws" in text
        assert "1 baseline + 2 fault draws" in text


class TestSourceSilencingRejection:
    """The satellite fix: a plan keeping a source down for the whole
    traffic interval must be rejected loudly, not measured as zero."""

    def _source(self, seed: int = 1) -> int:
        from repro.experiments.campaigns import _source_ids

        return _source_ids(TINY_CONFIG, seed)[0]

    def test_full_coverage_rejected(self):
        import dataclasses

        source = self._source()
        config = dataclasses.replace(
            TINY_CONFIG,
            topology_seed=1,
            faults=FaultPlan(outages=(
                OutageWindow(source, 0.0, TINY_CONFIG.duration_s),
            )),
        )
        with pytest.raises(ValueError, match="source"):
            build_simulation_scenario("odmrp", config)

    def test_partial_coverage_accepted(self):
        import dataclasses

        source = self._source()
        config = dataclasses.replace(
            TINY_CONFIG,
            topology_seed=1,
            faults=FaultPlan(outages=(
                OutageWindow(source, TINY_CONFIG.warmup_s, 5.0),
            )),
        )
        build_simulation_scenario("odmrp", config)

    def test_other_nodes_may_be_down_throughout(self):
        import dataclasses

        source = self._source()
        victim = next(
            node for node in range(TINY_CONFIG.num_nodes) if node != source
        )
        config = dataclasses.replace(
            TINY_CONFIG,
            topology_seed=1,
            faults=FaultPlan(outages=(
                OutageWindow(victim, 0.0, TINY_CONFIG.duration_s),
            )),
        )
        build_simulation_scenario("odmrp", config)


class TestCampaignExecution:
    def test_run_shape(self, tiny_campaign):
        assert tiny_campaign.baseline == "odmrp"
        assert len(tiny_campaign.baseline_runs) == 4   # 2 protocols x 2 seeds
        assert len(tiny_campaign.draw_runs) == 2
        assert all(len(runs) == 4 for runs in tiny_campaign.draw_runs)
        assert tiny_campaign.total_runs == 12
        assert tiny_campaign.runs[:4] == tiny_campaign.baseline_runs

    def test_baseline_runs_are_fault_free(self, tiny_campaign):
        for run in tiny_campaign.baseline_runs:
            assert run.error is None
            assert "faults.injected_downtime_s" not in run.counters

    def test_faulted_runs_carry_downtime_counters(self, tiny_campaign):
        for runs in tiny_campaign.draw_runs:
            for run in runs:
                assert run.error is None
                assert run.counters["faults.injected_downtime_s"] > 0.0

    def test_deterministic_rerun(self, tiny_campaign):
        again = run_campaign_experiment(tiny_spec())
        assert again.plan_dict() == tiny_campaign.plan_dict()
        assert again.runs == tiny_campaign.runs

    def test_relative_delivery_paired(self, tiny_campaign):
        for draw in tiny_campaign.draws:
            for protocol in tiny_campaign.protocols:
                ratio = tiny_campaign.relative_delivery(
                    draw.index, protocol
                )
                assert ratio is None or ratio >= 0.0

    def test_tail_probability_bounds(self, tiny_campaign):
        for protocol in tiny_campaign.protocols:
            probability, (low, high) = tiny_campaign.tail_probability(
                protocol
            )
            assert 0.0 <= low <= probability <= high <= 1.0

    def test_robustness_rows(self, tiny_campaign):
        rows = tiny_campaign.robustness()
        assert [row.protocol for row in rows] == list(
            tiny_campaign.protocols
        )
        by_protocol = {row.protocol: row for row in rows}
        assert by_protocol["odmrp"].verdict == "baseline"
        assert by_protocol["spp"].verdict in (
            "survives", "inverts", "no-claim"
        )
        assert tiny_campaign.headline()

    def test_degradation_curve_monotone_downtime(self, tiny_campaign):
        for protocol in tiny_campaign.protocols:
            curve = tiny_campaign.degradation_curve(protocol)
            lows = [row["downtime_low_s"] for row in curve]
            assert lows == sorted(lows)


class TestPlanJournal:
    def test_plan_records_round_trip(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        spec = tiny_spec()
        result = run_campaign_experiment(spec, journal_path=journal)
        records = replay_campaign_plan(journal, spec.name)
        assert len(records) == len(result.draws)
        for record, draw in zip(records, result.plan_dict()["plan"]):
            assert record["draw"] == draw["draw"]
            assert record["generator"] == draw["generator"]
            assert record["theta"] == draw["theta"]
            assert record["weight"] == draw["weight"]
            assert record["faults"] == draw["faults"]

        # Plan records are invisible to run replay (executors never see
        # them) but survive compaction (unique schema-1 keys).
        run_records = SweepJournal.replay(journal)
        assert len(run_records) == result.total_runs
        SweepJournal.compact(journal)
        assert replay_campaign_plan(journal, spec.name) == records
        assert len(SweepJournal.replay(journal)) == result.total_runs

    def test_resume_replays_identical_campaign(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        spec = tiny_spec()
        first = run_campaign_experiment(spec, journal_path=journal)
        resumed = run_campaign_experiment(
            spec, journal_path=journal, resume=True
        )
        assert resumed.plan_dict() == first.plan_dict()
        assert resumed.runs == first.runs

    def test_missing_journal_returns_empty(self, tmp_path):
        assert replay_campaign_plan(
            str(tmp_path / "absent.jsonl"), "anything"
        ) == []


class TestReporting:
    def test_robustness_section_contents(self, tiny_campaign):
        section = robustness_section(tiny_campaign)
        assert "### Robustness" in section
        assert "**Verdict:**" in section
        assert "P[delivery" in section
        for protocol in tiny_campaign.protocols:
            assert f"| {protocol} |" in section

    def test_render_report_includes_campaign(self, tiny_campaign):
        report = render_report(
            tiny_campaign.baseline_runs,
            title="campaign",
            campaign=tiny_campaign,
        )
        assert "### Robustness" in report
        assert "### Normalized throughput" in report

    def test_injected_downtime_note(self, tiny_campaign):
        note = injected_downtime_note(tiny_campaign.runs)
        assert note is not None
        assert "Injected faults" in note
        for protocol in tiny_campaign.protocols:
            assert protocol in note

    def test_downtime_note_absent_for_clean_runs(self, tiny_campaign):
        assert injected_downtime_note(tiny_campaign.baseline_runs) is None


class TestResultEdgeCases:
    def _result(self) -> CampaignResult:
        """A hand-built campaign with one failed faulted run."""
        def run(protocol, seed, delivered, error=None):
            return RunResult(
                protocol=protocol, topology_seed=seed, duration_s=8.0,
                offered_packets=100, expected_deliveries=100,
                delivered_packets=delivered,
                delivered_bytes=delivered * 100,
                mean_delay_s=None, probe_bytes=0.0, error=error,
            )

        result = CampaignResult(
            name="edge", baseline="odmrp",
            config=CampaignConfig(draws=2),
            seeds=(1,), protocols=("odmrp", "spp"),
            draws=[
                CampaignDraw(
                    index=0, generator="storm", theta=0.3, weight=1.5,
                    plans={1: FaultPlan()},
                ),
                CampaignDraw(
                    index=1, generator="storm", theta=0.8, weight=0.5,
                    plans={1: FaultPlan()},
                ),
            ],
            baseline_runs=[run("odmrp", 1, 80), run("spp", 1, 100)],
            draw_runs=[
                [run("odmrp", 1, 40), run("spp", 1, 90)],
                [run("odmrp", 1, 8), run("spp", 1, 0, error="boom")],
            ],
        )
        return result

    def test_failed_runs_drop_out_of_estimates(self):
        result = self._result()
        assert result.failed_faulted_runs("spp") == 1
        assert result.failed_faulted_runs("odmrp") == 0
        # spp's series only has draw 0 (draw 1 errored): ratio 0.9.
        relative, _ci = result.mean_relative_delivery("spp")
        assert relative == pytest.approx(0.9)

    def test_tail_probability_weighted(self):
        result = self._result()
        # odmrp ratios: draw 0 -> 0.5 (not < 0.5), draw 1 -> 0.1 (tail).
        probability, _ci = result.tail_probability("odmrp")
        assert probability == pytest.approx(0.5 / 2.0)

    def test_empty_series_sentinels(self):
        result = self._result()
        result.draw_runs = [[], []]
        assert result.tail_probability("spp") == (0.0, (0.0, 0.0))
        assert result.mean_relative_delivery("spp") == (0.0, (0.0, 0.0))
        assert result.degradation_curve("spp") == []


class TestCli:
    def test_run_parser_accepts_campaign_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run", "--campaign", "--dry-run"])
        assert args.campaign is True

    def test_dry_run_prints_campaign_plan(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = str(tmp_path / "spec.toml")
        tiny_spec().save(spec_path)
        code = main(["run", "--spec", spec_path, "--dry-run"])
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign: 2 fault draws" in out

    def test_campaign_flag_fills_default_section(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = str(tmp_path / "spec.toml")
        tiny_spec(campaign=None).save(spec_path)
        code = main(
            ["run", "--spec", spec_path, "--campaign", "--dry-run"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign: 8 fault draws" in out
