"""Tests for the routing metrics -- the paper's primary contribution."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.accumulation import (
    additive,
    metx_closed_form,
    multiplicative,
    path_cost,
    recursive_metx,
)
from repro.core.comparison import best_path, normalize_against, rank_paths
from repro.core.metrics import (
    ALL_METRIC_NAMES,
    EttMetric,
    EtxMetric,
    HopCountMetric,
    LinkQuality,
    MetxMetric,
    PpMetric,
    SppMetric,
    metric_by_name,
)

delivery_ratios = st.floats(min_value=0.01, max_value=1.0)
paths = st.lists(delivery_ratios, min_size=1, max_size=8)


def quality(df: float = 1.0, delay=None, bandwidth=None) -> LinkQuality:
    return LinkQuality(
        forward_delivery_ratio=df,
        packet_pair_delay_s=delay,
        bandwidth_bps=bandwidth,
    )


class TestLinkQuality:
    def test_rejects_out_of_range_ratio(self):
        with pytest.raises(ValueError):
            LinkQuality(forward_delivery_ratio=1.5)
        with pytest.raises(ValueError):
            LinkQuality(forward_delivery_ratio=-0.1)


class TestHopCount:
    def test_counts_links(self):
        metric = HopCountMetric()
        cost = path_cost(metric, [metric.link_cost(quality())] * 4)
        assert cost == 4.0

    def test_lower_is_better(self):
        metric = HopCountMetric()
        assert metric.is_better(2.0, 3.0)
        assert not metric.is_better(3.0, 2.0)


class TestEtx:
    def test_link_cost_is_inverse_delivery(self):
        metric = EtxMetric()
        assert metric.link_cost(quality(0.5)) == pytest.approx(2.0)

    def test_dead_link_is_unusable(self):
        metric = EtxMetric()
        cost = metric.combine(1.0, metric.link_cost(quality(0.0)))
        assert not metric.is_usable(cost)

    def test_ignores_reverse_direction_entirely(self):
        # The multicast adaptation: only df appears in the LinkQuality
        # interface at all; this asserts the cost depends on df alone.
        metric = EtxMetric()
        assert metric.link_cost(quality(0.5, delay=10.0)) == metric.link_cost(
            quality(0.5, delay=None)
        )

    @given(paths)
    def test_path_cost_is_sum(self, dfs):
        metric = EtxMetric()
        total = path_cost(metric, [metric.link_cost(quality(df)) for df in dfs])
        assert total == pytest.approx(additive([1.0 / df for df in dfs]))


class TestEtt:
    def test_scales_etx_by_transmission_time(self):
        metric = EttMetric(packet_size_bytes=1000, default_bandwidth_bps=1e6)
        # 8000 bits at 1 Mbps = 8 ms; df 0.5 doubles it.
        assert metric.link_cost(quality(0.5)) == pytest.approx(0.016)

    def test_uses_measured_bandwidth_when_present(self):
        metric = EttMetric(packet_size_bytes=1000, default_bandwidth_bps=1e6)
        fast = metric.link_cost(quality(1.0, bandwidth=2e6))
        slow = metric.link_cost(quality(1.0, bandwidth=0.5e6))
        assert fast == pytest.approx(0.004)
        assert slow == pytest.approx(0.016)

    def test_validation(self):
        with pytest.raises(ValueError):
            EttMetric(packet_size_bytes=0)
        with pytest.raises(ValueError):
            EttMetric(default_bandwidth_bps=0.0)


class TestPp:
    def test_cost_is_the_smoothed_delay(self):
        metric = PpMetric()
        assert metric.link_cost(quality(0.9, delay=0.004)) == 0.004

    def test_unmeasured_link_is_unusable(self):
        metric = PpMetric()
        assert not metric.is_usable(metric.link_cost(quality(0.9, delay=None)))


class TestMetx:
    def test_figure1_values(self):
        """The paper's Figure 1: METX(A-C-D)=6, METX(A-B-D)=5."""
        metric = MetxMetric()
        acd = path_cost(
            metric, [metric.link_cost(quality(df)) for df in (1.0, 1.0 / 3.0)]
        )
        abd = path_cost(
            metric, [metric.link_cost(quality(df)) for df in (0.25, 1.0)]
        )
        assert acd == pytest.approx(6.0)
        assert abd == pytest.approx(5.0)
        assert metric.is_better(abd, acd)  # METX prefers A-B-D

    @given(paths)
    def test_recursion_equals_closed_form(self, dfs):
        assert recursive_metx(dfs) == pytest.approx(
            metx_closed_form(dfs), rel=1e-9
        )

    @given(paths)
    def test_metx_at_least_etx(self, dfs):
        """METX counts every hop's transmissions, so it dominates ETX."""
        etx = additive([1.0 / df for df in dfs])
        assert recursive_metx(dfs) >= etx - 1e-9

    def test_perfect_path_equals_hop_count(self):
        assert recursive_metx([1.0] * 5) == pytest.approx(5.0)

    def test_dead_link_is_infinite(self):
        assert math.isinf(recursive_metx([0.5, 0.0, 1.0]))


class TestSpp:
    def test_figure1_values(self):
        """1/SPP(A-C-D)=3 beats 1/SPP(A-B-D)=4."""
        metric = SppMetric()
        acd = path_cost(
            metric, [metric.link_cost(quality(df)) for df in (1.0, 1.0 / 3.0)]
        )
        abd = path_cost(
            metric, [metric.link_cost(quality(df)) for df in (0.25, 1.0)]
        )
        assert 1.0 / acd == pytest.approx(3.0)
        assert 1.0 / abd == pytest.approx(4.0)
        assert metric.is_better(acd, abd)  # SPP prefers A-C-D

    def test_figure3_spp_overrules_etx(self):
        """SPP avoids the path with the single 0.4 link; ETX does not."""
        etx = EtxMetric()
        spp = SppMetric()
        abcd = (0.8, 0.8, 0.8)
        aed = (0.9, 0.4)
        etx_abcd = path_cost(etx, [etx.link_cost(quality(df)) for df in abcd])
        etx_aed = path_cost(etx, [etx.link_cost(quality(df)) for df in aed])
        spp_abcd = path_cost(spp, [spp.link_cost(quality(df)) for df in abcd])
        spp_aed = path_cost(spp, [spp.link_cost(quality(df)) for df in aed])
        assert etx_abcd == pytest.approx(3.75)
        assert etx_aed == pytest.approx(3.61, abs=0.01)
        assert etx.is_better(etx_aed, etx_abcd)  # ETX picks the lossy path
        assert spp_abcd == pytest.approx(0.512)
        assert spp_aed == pytest.approx(0.36)
        assert spp.is_better(spp_abcd, spp_aed)  # SPP picks the long path

    def test_higher_is_better_orientation(self):
        metric = SppMetric()
        assert metric.higher_is_better
        assert metric.is_better(0.9, 0.5)
        assert metric.worst_cost() == float("-inf")

    def test_zero_probability_is_unusable(self):
        metric = SppMetric()
        assert not metric.is_usable(0.0)

    @given(paths)
    def test_spp_is_path_delivery_probability(self, dfs):
        metric = SppMetric()
        total = path_cost(metric, [metric.link_cost(quality(df)) for df in dfs])
        assert total == pytest.approx(multiplicative(dfs))
        assert 0.0 < total <= 1.0


class TestMonotonicity:
    """Adding a lossy link must never make any metric's path better."""

    @given(paths, delivery_ratios)
    def test_extension_never_improves(self, dfs, extra_df):
        for name in ALL_METRIC_NAMES:
            metric = metric_by_name(name)
            costs = [metric.link_cost(quality(df)) for df in dfs]
            base = path_cost(metric, costs)
            extended = metric.combine(
                base, metric.link_cost(quality(extra_df))
            )
            assert not metric.is_better(extended, base), (
                f"{name}: extending a path improved it"
            )

    @given(paths, st.integers(min_value=0, max_value=7), delivery_ratios)
    def test_degrading_a_link_never_helps(self, dfs, index, worse_df):
        index = index % len(dfs)
        if worse_df >= dfs[index]:
            return  # only test genuine degradation
        for name in ("etx", "metx", "spp"):
            metric = metric_by_name(name)
            good = path_cost(
                metric, [metric.link_cost(quality(df)) for df in dfs]
            )
            degraded_dfs = list(dfs)
            degraded_dfs[index] = worse_df
            bad = path_cost(
                metric, [metric.link_cost(quality(df)) for df in degraded_dfs]
            )
            assert not metric.is_better(bad, good), (
                f"{name}: degrading a link improved the path"
            )


class TestRegistry:
    def test_all_names_resolve(self):
        for name in ALL_METRIC_NAMES + ("hopcount",):
            assert metric_by_name(name).name == name

    def test_unknown_name_raises(self):
        # "wcett" used to be the canary here, but it is a registered
        # extension metric now (repro.multichannel.wcett).
        with pytest.raises(ValueError, match="unknown metric"):
            metric_by_name("airtime")

    def test_kwargs_forwarded(self):
        metric = metric_by_name("ett", packet_size_bytes=256)
        assert metric.packet_size_bytes == 256


class TestComparisonHelpers:
    def test_best_path_minimizing(self):
        metric = EtxMetric()
        assert best_path(metric, {"a": 3.0, "b": 2.0}) == "b"

    def test_best_path_maximizing(self):
        metric = SppMetric()
        assert best_path(metric, {"a": 0.3, "b": 0.8}) == "b"

    def test_best_path_skips_unusable(self):
        metric = EtxMetric()
        assert best_path(metric, {"a": float("inf"), "b": 5.0}) == "b"
        assert best_path(metric, {"a": float("inf")}) is None

    def test_best_path_tie_keeps_first(self):
        metric = EtxMetric()
        assert best_path(metric, {"first": 2.0, "second": 2.0}) == "first"

    def test_rank_paths_orders_best_first(self):
        metric = SppMetric()
        ranked = rank_paths(
            metric, {"a": 0.2, "b": 0.9, "dead": 0.0, "c": 0.5}
        )
        assert [name for name, _ in ranked] == ["b", "c", "a", "dead"]

    def test_normalize_against(self):
        normalized = normalize_against({"base": 2.0, "x": 3.0}, "base")
        assert normalized == {"base": 1.0, "x": 1.5}

    def test_normalize_missing_or_zero_baseline(self):
        with pytest.raises(KeyError):
            normalize_against({"x": 1.0}, "base")
        with pytest.raises(ValueError):
            normalize_against({"base": 0.0, "x": 1.0}, "base")
