"""Result records, aggregation over topologies, and normalization."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.comparison import normalize_against


@dataclass
class RunResult:
    """Measurements from one protocol run on one topology."""

    protocol: str
    topology_seed: int
    duration_s: float
    offered_packets: int
    expected_deliveries: int
    delivered_packets: int
    delivered_bytes: int
    mean_delay_s: Optional[float]
    probe_bytes: float
    counters: Dict[str, float] = field(default_factory=dict)
    #: Traceback text when the run crashed (parallel sweeps annotate
    #: failures instead of aborting); None for a successful run.
    error: Optional[str] = None
    #: Path of the run's exported telemetry artifact (JSONL), or None
    #: when telemetry was disabled.
    telemetry_path: Optional[str] = None

    @property
    def throughput_bps(self) -> float:
        return self.delivered_bytes * 8.0 / self.duration_s

    @property
    def packet_delivery_ratio(self) -> float:
        if self.expected_deliveries == 0:
            return 0.0
        return self.delivered_packets / self.expected_deliveries

    @property
    def probe_overhead_pct(self) -> float:
        """Probe bytes as a percentage of data bytes received (Table 1)."""
        if self.delivered_bytes == 0:
            return float("inf")
        return 100.0 * self.probe_bytes / self.delivered_bytes


@dataclass
class AggregateResult:
    """Mean over topologies for one protocol.

    ``runs`` counts only the measured runs behind the means;
    ``failed_runs`` and ``zero_delivery_runs`` surface what the means do
    *not* include (crashed workers) or include but may distort (runs
    that delivered nothing), so a report can never silently average away
    a broken sweep.
    """

    protocol: str
    runs: int
    mean_throughput_bps: float
    mean_delivery_ratio: float
    mean_delay_s: Optional[float]
    mean_probe_overhead_pct: float
    #: Error-annotated runs excluded from every mean.
    failed_runs: int = 0
    #: Successful runs that delivered zero packets (still averaged into
    #: throughput/PDR, but excluded from delay and overhead means).
    zero_delivery_runs: int = 0
    #: Breakdown of ``failed_runs`` by failure taxonomy
    #: (:class:`~repro.experiments.resilience.FailureKind` value ->
    #: count), so a report can say *how* a protocol's runs died
    #: (timeout vs worker crash vs model exception).
    failure_kinds: Dict[str, int] = field(default_factory=dict)


def aggregate_runs(runs: Sequence[RunResult]) -> Dict[str, AggregateResult]:
    """Group per-topology runs by protocol and average them.

    Error-annotated runs (from crashed parallel workers) carry no
    measurements and are excluded from the averages; they are tallied in
    ``AggregateResult.failed_runs`` instead of vanishing.  A protocol
    whose runs *all* failed still appears, with ``runs=0`` and zeroed
    means, so downstream tables show the hole rather than dropping the
    row.
    """
    # Local import: resilience imports this module at load time.
    from repro.experiments.resilience import classify_failure

    by_protocol: Dict[str, List[RunResult]] = {}
    failed: Dict[str, int] = {}
    kinds: Dict[str, Dict[str, int]] = {}
    for run in runs:
        if run.error is not None:
            failed[run.protocol] = failed.get(run.protocol, 0) + 1
            kind = classify_failure(run.error)
            if kind is not None:
                per_protocol = kinds.setdefault(run.protocol, {})
                per_protocol[kind.value] = per_protocol.get(kind.value, 0) + 1
            by_protocol.setdefault(run.protocol, [])
            continue
        by_protocol.setdefault(run.protocol, []).append(run)
    aggregates: Dict[str, AggregateResult] = {}
    for protocol, protocol_runs in by_protocol.items():
        if not protocol_runs:
            aggregates[protocol] = AggregateResult(
                protocol=protocol,
                runs=0,
                mean_throughput_bps=0.0,
                mean_delivery_ratio=0.0,
                mean_delay_s=None,
                mean_probe_overhead_pct=0.0,
                failed_runs=failed.get(protocol, 0),
                failure_kinds=kinds.get(protocol, {}),
            )
            continue
        delays = [
            run.mean_delay_s for run in protocol_runs
            if run.mean_delay_s is not None
        ]
        overheads = [
            run.probe_overhead_pct for run in protocol_runs
            if run.delivered_bytes > 0
        ]
        aggregates[protocol] = AggregateResult(
            protocol=protocol,
            runs=len(protocol_runs),
            mean_throughput_bps=_mean(
                [run.throughput_bps for run in protocol_runs]
            ),
            mean_delivery_ratio=_mean(
                [run.packet_delivery_ratio for run in protocol_runs]
            ),
            mean_delay_s=_mean(delays) if delays else None,
            mean_probe_overhead_pct=_mean(overheads) if overheads else 0.0,
            failed_runs=failed.get(protocol, 0),
            zero_delivery_runs=sum(
                1 for run in protocol_runs if run.delivered_packets == 0
            ),
            failure_kinds=kinds.get(protocol, {}),
        )
    return aggregates


def normalized_metric_table(
    aggregates: Mapping[str, AggregateResult],
    value: str = "throughput",
    baseline: str = "odmrp",
) -> Dict[str, float]:
    """Figure 2 style normalization of one column against the baseline.

    ``value`` selects the column: "throughput", "delay", or "pdr".
    """
    extractors = {
        "throughput": lambda agg: agg.mean_throughput_bps,
        "pdr": lambda agg: agg.mean_delivery_ratio,
        "delay": lambda agg: (
            agg.mean_delay_s if agg.mean_delay_s is not None else 0.0
        ),
    }
    if value not in extractors:
        raise ValueError(
            f"unknown column {value!r}; choose from {sorted(extractors)}"
        )
    extract = extractors[value]
    values = {name: extract(agg) for name, agg in aggregates.items()}
    return normalize_against(values, baseline)


def _mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("cannot average an empty sequence")
    return sum(values) / len(values)
