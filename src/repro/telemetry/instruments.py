"""Typed telemetry instruments.

Four instrument shapes cover everything the observability layer records:

* :class:`Counter` -- a monotonically increasing total (frames sent,
  probe bytes, tree joins).
* :class:`Gauge` -- a last-value measurement (final queue depth, trace
  recorder drop count).
* :class:`TimeSeries` -- fixed-interval samples of an evolving quantity
  (forwarding-group size over time, per-link delivery fraction).
* :class:`Histogram` -- a fixed-bucket distribution of observations
  (per-link df spread, JOIN QUERY fan-out per refresh round).

Instruments are dumb value holders: sampling policy lives in
:class:`repro.telemetry.hub.TelemetryHub`, serialization in
:mod:`repro.telemetry.export`.  Every instrument round-trips losslessly
through ``to_record()`` / ``from_record()``; equality is defined over the
record form, which is what the export round-trip tests rely on.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple


class Instrument:
    """Base class: a named, described, optionally unit-tagged value."""

    kind: str = "instrument"

    def __init__(self, name: str, description: str = "", unit: str = "") -> None:
        self.name = name
        self.description = description
        self.unit = unit

    def to_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"type": self.kind, "name": self.name}
        if self.description:
            record["description"] = self.description
        if self.unit:
            record["unit"] = self.unit
        return record

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instrument):
            return NotImplemented
        return self.to_record() == other.to_record()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class Counter(Instrument):
    """Monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, description: str = "", unit: str = "") -> None:
        super().__init__(name, description, unit)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def to_record(self) -> Dict[str, Any]:
        record = super().to_record()
        record["value"] = self.value
        return record

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "Counter":
        counter = cls(record["name"], record.get("description", ""),
                      record.get("unit", ""))
        counter.value = float(record["value"])
        return counter


class Gauge(Instrument):
    """Last-value measurement; ``None`` until first set."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "", unit: str = "") -> None:
        super().__init__(name, description, unit)
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_record(self) -> Dict[str, Any]:
        record = super().to_record()
        record["value"] = self.value
        return record

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "Gauge":
        gauge = cls(record["name"], record.get("description", ""),
                    record.get("unit", ""))
        value = record.get("value")
        gauge.value = None if value is None else float(value)
        return gauge


class TimeSeries(Instrument):
    """Samples of an evolving quantity at a fixed nominal interval.

    Sample times are stored explicitly (the hub may start sampling late
    or a probe may be registered mid-run), so the series is
    self-describing even when it does not span the whole run.
    """

    kind = "series"

    def __init__(
        self,
        name: str,
        interval_s: float,
        description: str = "",
        unit: str = "",
    ) -> None:
        super().__init__(name, description, unit)
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        self.interval_s = interval_s
        self.times: List[float] = []
        self.values: List[float] = []

    def append(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"series {self.name!r} samples must be time-ordered "
                f"({time} < {self.times[-1]})"
            )
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    @property
    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def mean(self) -> Optional[float]:
        if not self.values:
            return None
        return sum(self.values) / len(self.values)

    def minimum(self) -> Optional[float]:
        return min(self.values) if self.values else None

    def maximum(self) -> Optional[float]:
        return max(self.values) if self.values else None

    def to_record(self) -> Dict[str, Any]:
        record = super().to_record()
        record["interval_s"] = self.interval_s
        record["times"] = list(self.times)
        record["values"] = list(self.values)
        return record

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "TimeSeries":
        series = cls(
            record["name"],
            record["interval_s"],
            record.get("description", ""),
            record.get("unit", ""),
        )
        series.times = [float(t) for t in record["times"]]
        series.values = [float(v) for v in record["values"]]
        return series


#: Default histogram bucket upper edges: a wide log-ish ladder that fits
#: both ratio-valued quantities (df in [0, 1]) and counts (fan-out).
DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 0.75, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0
)


class Histogram(Instrument):
    """Fixed-bucket distribution with streaming count/sum/min/max.

    ``bounds`` are inclusive upper edges; an observation above the last
    edge lands in the overflow bucket (``counts`` has ``len(bounds)+1``
    entries).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_BOUNDS,
        description: str = "",
        unit: str = "",
    ) -> None:
        super().__init__(name, description, unit)
        edges = tuple(float(b) for b in bounds)
        if not edges or any(
            later <= earlier for earlier, later in zip(edges, edges[1:])
        ):
            raise ValueError("bounds must be non-empty and strictly increasing")
        self.bounds = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def to_record(self) -> Dict[str, Any]:
        record = super().to_record()
        record["bounds"] = list(self.bounds)
        record["counts"] = list(self.counts)
        record["count"] = self.count
        record["sum"] = self.sum
        record["min"] = self.min
        record["max"] = self.max
        return record

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "Histogram":
        histogram = cls(
            record["name"],
            record["bounds"],
            record.get("description", ""),
            record.get("unit", ""),
        )
        histogram.counts = [int(c) for c in record["counts"]]
        histogram.count = int(record["count"])
        histogram.sum = float(record["sum"])
        histogram.min = record["min"]
        histogram.max = record["max"]
        return histogram


#: Record ``type`` -> instrument class, used by the trace reader.
INSTRUMENT_TYPES = {
    cls.kind: cls for cls in (Counter, Gauge, TimeSeries, Histogram)
}
