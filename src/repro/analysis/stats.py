"""Small statistics helpers (no heavy dependencies).

The experiment harness needs means, sample standard deviations, and
confidence intervals over per-topology replications.  The adaptive
sweep planner (:mod:`repro.experiments.adaptive`) additionally needs
Student-t critical values at the small per-batch ``n`` it operates at
(where the normal z=1.96 approximation is materially too narrow: the
true t multiplier is 12.7 at n=2 and 2.78 at n=5), Welch two-sample
tests, and paired-difference CIs for common-random-number comparisons.

Everything is implemented from scratch on top of ``math`` -- the
Student-t distribution via the regularized incomplete beta function
(continued-fraction evaluation, Lentz's method) -- so the module stays
dependency-free and bit-deterministic given the platform's libm.

Edge-case sentinels (never raise on legal-but-degenerate data)
--------------------------------------------------------------
* ``confidence_interval`` / ``confidence_interval_95`` with n == 1
  return the degenerate interval ``(x, x)``; zero-variance samples
  likewise collapse to ``(mean, mean)``.
* ``welch_t_test`` with either sample smaller than 2 returns the
  "no evidence" sentinel ``WelchResult(statistic=0.0, df=0.0,
  p_value=1.0)``.  Two zero-variance samples return ``p_value=1.0``
  when the means are equal and ``p_value=0.0`` (infinite statistic)
  when they differ.
* ``paired_difference_ci`` with a single pair returns the degenerate
  interval around that one difference.
* The importance-weighted estimators (``weighted_mean`` and friends,
  used by :mod:`repro.experiments.campaigns`) *do* raise ``ValueError``
  on structurally broken input -- empty/misaligned samples, negative or
  non-finite weights, all-zero mass -- because a weight vector that
  malformed signals a planner bug, not a degenerate-but-legal sample.
  Legal degeneracy (n == 1, zero residual variance, ESS <= 1) again
  collapses to point intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return math.fsum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1); zero for fewer than two samples."""
    n = len(values)
    if n < 2:
        return 0.0
    center = mean(values)
    variance = math.fsum((v - center) ** 2 for v in values) / (n - 1)
    return math.sqrt(variance)


# ----------------------------------------------------------------------
# Student-t distribution from scratch: regularized incomplete beta
# I_x(a, b) by continued fraction (Numerical Recipes' betacf, modified
# Lentz), then the CDF identity and a bisection for critical values.


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta function at ``x``."""
    tiny = 1e-300
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    return h


def _reg_inc_beta(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
        + a * math.log(x) + b * math.log(1.0 - x)
    )
    front = math.exp(ln_front)
    # The continued fraction converges fast for x < (a+1)/(a+b+2);
    # use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) otherwise.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_cdf(t: float, df: float) -> float:
    """P(T <= t) for Student's t with ``df`` degrees of freedom."""
    if df <= 0:
        raise ValueError(f"degrees of freedom must be positive, got {df!r}")
    if t == 0.0:
        return 0.5
    if math.isinf(t):
        return 1.0 if t > 0 else 0.0
    x = df / (df + t * t)
    tail = 0.5 * _reg_inc_beta(df / 2.0, 0.5, x)
    return 1.0 - tail if t > 0 else tail


def t_critical(df: float, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value: P(|T| <= t*) = confidence.

    Found by bisection on the CDF (deterministic fixed iteration count,
    so identical inputs give bit-identical outputs everywhere the libm
    agrees).  Replaces the z=1.96 normal approximation, which at the
    small n adaptive sweeps run at understates the interval badly
    (df=1 -> 12.706, df=4 -> 2.776, df=29 -> 2.045).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence!r}")
    if df <= 0:
        raise ValueError(f"degrees of freedom must be positive, got {df!r}")
    target = 0.5 + confidence / 2.0
    lo, hi = 0.0, 1.0
    while student_t_cdf(hi, df) < target:
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover - unreachable for sane inputs
            return hi
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if student_t_cdf(mid, df) < target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


# ----------------------------------------------------------------------
# Confidence intervals


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Student-t CI for the mean of ``values``.

    n == 1 returns the degenerate ``(x, x)`` interval (no variance
    estimate exists); zero-variance samples collapse to ``(mean, mean)``.
    """
    center = mean(values)
    if len(values) < 2:
        return (center, center)
    half_width = ci_half_width(values, confidence)
    return (center - half_width, center + half_width)


def confidence_interval_95(values: Sequence[float]) -> Tuple[float, float]:
    """Student-t 95 % CI for the mean of ``values``.

    Historically this used the normal z=1.96 approximation; it now uses
    the exact t critical value for n-1 degrees of freedom, so intervals
    at small n are wider (and honest).
    """
    return confidence_interval(values, 0.95)


def ci_half_width(values: Sequence[float], confidence: float = 0.95) -> float:
    """Half-width of the Student-t CI; 0.0 for fewer than two samples."""
    n = len(values)
    if n < 2:
        return 0.0
    spread = stddev(values)
    if spread == 0.0:
        return 0.0
    return t_critical(n - 1, confidence) * spread / math.sqrt(n)


# ----------------------------------------------------------------------
# Two-sample comparisons


@dataclass(frozen=True)
class WelchResult:
    """Welch's unequal-variance t-test outcome."""

    statistic: float
    df: float
    p_value: float


def _welch_df(se1: float, se2: float, n1: int, n2: int) -> float:
    """Welch-Satterthwaite degrees of freedom.

    Computed from the variance *ratios* r_i = se_i / (se1 + se2) --
    algebraically identical to the textbook form but exactly
    scale-invariant and immune to ``se ** 2`` underflowing to zero for
    denormally small variances.
    """
    total = se1 + se2
    r1, r2 = se1 / total, se2 / total
    return 1.0 / (r1 ** 2 / (n1 - 1) + r2 ** 2 / (n2 - 1))


def welch_t_test(a: Sequence[float], b: Sequence[float]) -> WelchResult:
    """Welch's two-sample t-test (unequal variances).

    Symmetric (swapping the samples negates the statistic, p unchanged)
    and scale-invariant (multiplying both samples by c > 0 changes
    nothing).  Sentinels instead of raising: either sample smaller than
    2 -> ``WelchResult(0.0, 0.0, 1.0)`` ("no evidence"); two
    zero-variance samples -> p 1.0 on equal means, p 0.0 (infinite
    statistic, df n1+n2-2) on unequal means.
    """
    n1, n2 = len(a), len(b)
    if n1 < 2 or n2 < 2:
        return WelchResult(statistic=0.0, df=0.0, p_value=1.0)
    m1, m2 = mean(a), mean(b)
    v1 = stddev(a) ** 2
    v2 = stddev(b) ** 2
    if v1 == 0.0 and v2 == 0.0:
        df = float(n1 + n2 - 2)
        if m1 == m2:
            return WelchResult(statistic=0.0, df=df, p_value=1.0)
        statistic = math.copysign(math.inf, m1 - m2)
        return WelchResult(statistic=statistic, df=df, p_value=0.0)
    se1, se2 = v1 / n1, v2 / n2
    statistic = (m1 - m2) / math.sqrt(se1 + se2)
    df = _welch_df(se1, se2, n1, n2)
    p_value = 2.0 * (1.0 - student_t_cdf(abs(statistic), df))
    return WelchResult(
        statistic=statistic, df=df, p_value=min(1.0, max(0.0, p_value))
    )


def unpaired_difference_ci(
    a: Sequence[float], b: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Welch CI for ``mean(a) - mean(b)`` treating the samples as
    independent.  Either sample smaller than 2 (or two zero-variance
    samples) yields the degenerate interval around the point estimate.
    """
    n1, n2 = len(a), len(b)
    center = mean(a) - mean(b)
    if n1 < 2 or n2 < 2:
        return (center, center)
    se1 = stddev(a) ** 2 / n1
    se2 = stddev(b) ** 2 / n2
    if se1 + se2 == 0.0:
        return (center, center)
    df = _welch_df(se1, se2, n1, n2)
    half_width = t_critical(df, confidence) * math.sqrt(se1 + se2)
    return (center - half_width, center + half_width)


def paired_difference_ci(
    a: Sequence[float], b: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Student-t CI for the mean paired difference ``a[i] - b[i]``.

    This is the common-random-number payoff: when both samples ran on
    identical topologies/fading (same seeds, index-aligned), the
    topology-to-topology variance cancels in the differences and the
    interval is never wider than the unpaired Welch CI on positively
    correlated samples.  Requires equal lengths; a single pair returns
    the degenerate interval around its difference.
    """
    if len(a) != len(b):
        raise ValueError(
            f"paired samples must align: {len(a)} vs {len(b)} values"
        )
    diffs = [x - y for x, y in zip(a, b)]
    return confidence_interval(diffs, confidence)


def relative_gain_pct(value: float, baseline: float) -> float:
    """Percentage improvement of ``value`` over ``baseline``."""
    if baseline == 0:
        raise ValueError("baseline is zero")
    return 100.0 * (value - baseline) / baseline


# ---------------------------------------------------------------------------
# Importance-weighted (self-normalized) estimators.
#
# The fault-campaign planner draws fault configurations from a proposal
# distribution biased toward severe schedules and re-weights each draw
# by the likelihood ratio w_i = p(x_i) / q(x_i) back to the nominal
# fault distribution.  Everything below is the self-normalized flavor:
# estimates divide by sum(w) rather than n, so the weights only need to
# be known up to a common constant.  The price is a small O(1/n) bias
# (the estimator is a ratio), which the effective-sample-size
# diagnostics below are there to keep honest.
# ---------------------------------------------------------------------------


def _check_weights(
    values: Sequence[float], weights: Sequence[float]
) -> None:
    if len(values) != len(weights):
        raise ValueError(
            f"values and weights must align: {len(values)} vs "
            f"{len(weights)}"
        )
    if not weights:
        raise ValueError("need at least one weighted observation")
    for w in weights:
        if not (w >= 0.0) or math.isinf(w):
            raise ValueError(f"weights must be finite and >= 0, got {w}")
    if math.fsum(weights) <= 0.0:
        raise ValueError("weights sum to zero: no observation has mass")


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Self-normalized importance-weighted mean: sum(w x) / sum(w).

    With equal weights this is exactly :func:`mean`.  Raises
    ``ValueError`` on empty input, misaligned lengths, negative /
    non-finite weights, or an all-zero weight vector (a fully
    degenerate sample estimates nothing).
    """
    _check_weights(values, weights)
    total = math.fsum(weights)
    return math.fsum(w * x for w, x in zip(weights, values)) / total


def effective_sample_size(weights: Sequence[float]) -> float:
    """Kish effective sample size: (sum w)^2 / sum(w^2).

    Equals ``n`` exactly when all weights are equal and degrades toward
    1.0 as mass concentrates on a single draw; invariant to rescaling
    all weights by a common constant.  The standard self-normalized-IS
    health check: an ESS far below ``n`` means the proposal is poorly
    matched to the nominal distribution and the estimates below carry
    far less information than the raw draw count suggests.
    """
    _check_weights(weights, weights)
    total = math.fsum(weights)
    return total * total / math.fsum(w * w for w in weights)


#: An ESS share (ESS / n) below this marks the weight vector as
#: degenerate -- over ~2/3 of the nominal-distribution information was
#: lost to weight mismatch, so point estimates are dominated by a
#: handful of draws and the CI below is untrustworthy.
DEGENERACY_ESS_SHARE = 1.0 / 3.0

#: A single draw carrying more than this share of the total weight also
#: flags degeneracy, even when the ESS share still looks healthy.
DEGENERACY_MAX_SHARE = 0.5


@dataclass(frozen=True)
class WeightDiagnostics:
    """Health report for an importance-weight vector."""

    n: int
    ess: float
    max_share: float  # largest single weight / sum of weights
    degenerate: bool


def weight_diagnostics(weights: Sequence[float]) -> WeightDiagnostics:
    """Degeneracy sentinel for importance weights.

    ``degenerate`` is True when ``ess / n < DEGENERACY_ESS_SHARE`` or a
    single draw holds more than ``DEGENERACY_MAX_SHARE`` of the total
    mass.  A singleton sample (n == 1) trivially maxes both shares yet
    is reported non-degenerate: with one draw there is no weight
    *imbalance* to flag, only a small sample, which ``n`` conveys.
    """
    _check_weights(weights, weights)
    n = len(weights)
    ess = effective_sample_size(weights)
    max_share = max(weights) / math.fsum(weights)
    degenerate = n > 1 and (
        ess / n < DEGENERACY_ESS_SHARE or max_share > DEGENERACY_MAX_SHARE
    )
    return WeightDiagnostics(
        n=n, ess=ess, max_share=max_share, degenerate=degenerate
    )


def weighted_quantile(
    values: Sequence[float], weights: Sequence[float], q: float
) -> float:
    """Self-normalized weighted quantile (inverse of the weighted CDF).

    Returns the smallest observed value whose cumulative normalized
    weight reaches ``q``; with equal weights and q = k/n this is the
    k-th order statistic.  ``q`` outside [0, 1] raises; q = 0 returns
    the smallest value carrying positive weight.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must lie in [0, 1], got {q}")
    _check_weights(values, weights)
    total = math.fsum(weights)
    pairs = sorted(
        (x, w) for x, w in zip(values, weights) if w > 0.0
    )
    cumulative = 0.0
    for x, w in pairs:
        cumulative += w
        if cumulative >= q * total - 1e-12 * total:
            return x
    return pairs[-1][0]


def weighted_tail_probability(
    values: Sequence[float], weights: Sequence[float], threshold: float
) -> float:
    """Self-normalized estimate of P[X < threshold] under the nominal
    distribution, from draws made under the proposal.

    This is :func:`weighted_mean` over the indicator 1[x < threshold]
    -- the rare-event estimator the fault campaigns exist for.
    """
    return weighted_mean(
        [1.0 if x < threshold else 0.0 for x in values], weights
    )


def weighted_mean_ci(
    values: Sequence[float],
    weights: Sequence[float],
    confidence: float = 0.95,
) -> Tuple[float, float]:
    """Approximate CI for the self-normalized weighted mean.

    Uses the standard linearization (delta-method) variance of the
    ratio estimator, var ~= sum(w_i^2 (x_i - m)^2) / (sum w)^2, with a
    Student-t critical value on ``ESS - 1`` degrees of freedom so heavy
    weight concentration widens the interval instead of silently
    narrowing it.  Degenerate inputs return the point interval: a
    single observation, a single positive weight, or zero residual
    variance all yield ``(m, m)``.
    """
    m = weighted_mean(values, weights)
    ess = effective_sample_size(weights)
    if len(values) < 2 or ess <= 1.0:
        return (m, m)
    total = math.fsum(weights)
    variance = math.fsum(
        (w * (x - m)) ** 2 for w, x in zip(weights, values)
    ) / (total * total)
    if variance <= 0.0:
        return (m, m)
    half_width = t_critical(ess - 1.0, confidence) * math.sqrt(variance)
    return (m - half_width, m + half_width)


def weighted_tail_probability_ci(
    values: Sequence[float],
    weights: Sequence[float],
    threshold: float,
    confidence: float = 0.95,
) -> Tuple[float, float]:
    """CI for :func:`weighted_tail_probability`, clipped into [0, 1]."""
    indicators = [1.0 if x < threshold else 0.0 for x in values]
    low, high = weighted_mean_ci(indicators, weights, confidence)
    return (max(0.0, low), min(1.0, high))
