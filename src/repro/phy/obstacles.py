"""Obstacle shadowing: axis-aligned rectangles with per-wall attenuation.

The paper's arena is open space, but real mesh deployments thread links
through buildings; per-wall attenuation is the standard first-order
shadowing model (each wall a link's line-of-sight segment crosses costs a
fixed dB).  :class:`ObstacleShadowingPropagation` wraps any base
:class:`~repro.phy.propagation.PropagationModel`:

* :meth:`rx_power_mw` (distance-only) delegates to the base model
  unchanged -- it is the obstacle-free *envelope*, which keeps radio
  threshold calibration and the analytic range bound exactly as they
  were.
* :meth:`rx_power_mw_between` multiplies the base power by the wall
  attenuation along the actual segment, so per-link audibility decisions
  see the shadowed power.
* :meth:`max_range_for_power` delegates to the base model.  Attenuation
  only ever *shrinks* reach, so the base bound stays a valid superset
  radius -- the spatial grid index keeps its cell size and its
  candidate-superset guarantee under obstacles.

Wall-crossing counting uses Liang-Barsky segment/rectangle clipping: a
segment that passes straight through a rectangle crosses two walls, a
segment with one endpoint inside crosses one, and a segment entirely
inside (both radios indoors in the same room) crosses none.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.net.topology import Position
from repro.phy.propagation import PropagationModel


@dataclass
class Obstacle:
    """One axis-aligned rectangular obstacle (a building footprint)."""

    x_min_m: float
    y_min_m: float
    x_max_m: float
    y_max_m: float
    #: Power loss per wall crossing.  10 dB is a typical exterior wall at
    #: 2.4 GHz; interior drywall is nearer 3 dB.
    attenuation_db: float = 10.0

    def __post_init__(self) -> None:
        if not self.x_max_m > self.x_min_m:
            raise ValueError(
                f"obstacle needs x_max_m > x_min_m, got "
                f"[{self.x_min_m}, {self.x_max_m}]"
            )
        if not self.y_max_m > self.y_min_m:
            raise ValueError(
                f"obstacle needs y_max_m > y_min_m, got "
                f"[{self.y_min_m}, {self.y_max_m}]"
            )
        if self.attenuation_db < 0.0:
            raise ValueError(
                f"attenuation must be >= 0 dB, got {self.attenuation_db}"
            )

    def contains(self, position: Position) -> bool:
        return (
            self.x_min_m <= position.x <= self.x_max_m
            and self.y_min_m <= position.y <= self.y_max_m
        )

    def wall_crossings(self, a: Position, b: Position) -> int:
        """Walls the open segment ``a -> b`` crosses (0, 1, or 2).

        Liang-Barsky clipping: the clip parameters ``(t0, t1)`` bound the
        in-rectangle portion of the segment; each clip parameter strictly
        inside ``(0, 1)`` is one boundary crossing.  Endpoints sitting
        exactly on a wall count as inside (no crossing), matching the
        closed-rectangle convention of :meth:`contains`.
        """
        dx = b.x - a.x
        dy = b.y - a.y
        t0, t1 = 0.0, 1.0
        for p, q in (
            (-dx, a.x - self.x_min_m),
            (dx, self.x_max_m - a.x),
            (-dy, a.y - self.y_min_m),
            (dy, self.y_max_m - a.y),
        ):
            if p == 0.0:
                if q < 0.0:
                    return 0  # parallel to this slab and outside it
            else:
                r = q / p
                if p < 0.0:
                    if r > t1:
                        return 0
                    if r > t0:
                        t0 = r
                else:
                    if r < t0:
                        return 0
                    if r < t1:
                        t1 = r
        if t1 < t0:
            return 0
        return (1 if t0 > 0.0 else 0) + (1 if t1 < 1.0 else 0)


@dataclass
class ObstacleSpec:
    """A serializable obstacle layout for one scenario.

    Carried by ``SimulationScenarioConfig.obstacles``; the empty default
    wraps nothing and leaves the propagation model untouched, so runs
    without obstacles stay bit-identical to pre-obstacle builds.
    """

    obstacles: Tuple[Obstacle, ...] = ()

    def __post_init__(self) -> None:
        self.obstacles = tuple(self.obstacles)

    def is_empty(self) -> bool:
        return not self.obstacles

    def validate_for(self, width_m: float, height_m: float) -> "ObstacleSpec":
        """Check every obstacle overlaps the arena; returns self."""
        for obstacle in self.obstacles:
            if (
                obstacle.x_min_m >= width_m
                or obstacle.y_min_m >= height_m
                or obstacle.x_max_m <= 0.0
                or obstacle.y_max_m <= 0.0
            ):
                raise ValueError(
                    f"obstacle [{obstacle.x_min_m},{obstacle.y_min_m}]..."
                    f"[{obstacle.x_max_m},{obstacle.y_max_m}] lies entirely "
                    f"outside the {width_m}x{height_m} m arena"
                )
        return self


class ObstacleShadowingPropagation(PropagationModel):
    """A base path-loss model with per-wall obstacle attenuation on top."""

    def __init__(
        self,
        base: PropagationModel,
        obstacles: Tuple[Obstacle, ...],
    ) -> None:
        self.base = base
        self.obstacles = tuple(obstacles)
        #: Per-obstacle linear power factor for one wall crossing.
        self._wall_factors = tuple(
            10.0 ** (-obstacle.attenuation_db / 10.0)
            for obstacle in self.obstacles
        )

    def rx_power_mw(
        self,
        tx_power_mw: float,
        distance_m: float,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
    ) -> float:
        # Distance-only queries have no geometry to shadow: this is the
        # obstacle-free envelope (radio calibration, range bounds).
        return self.base.rx_power_mw(tx_power_mw, distance_m, tx_gain, rx_gain)

    def rx_power_mw_between(
        self,
        tx_power_mw: float,
        tx_position,
        rx_position,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
    ) -> float:
        power = self.base.rx_power_mw_between(
            tx_power_mw, tx_position, rx_position, tx_gain, rx_gain
        )
        for obstacle, factor in zip(self.obstacles, self._wall_factors):
            crossings = obstacle.wall_crossings(tx_position, rx_position)
            if crossings == 1:
                power *= factor
            elif crossings == 2:
                power *= factor * factor
        return power

    def max_range_for_power(
        self,
        tx_power_mw: float,
        min_power_mw: float,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
    ):
        # Walls only attenuate, so the base model's radius remains a
        # valid superset bound for every shadowed link.
        return self.base.max_range_for_power(
            tx_power_mw, min_power_mw, tx_gain, rx_gain
        )
