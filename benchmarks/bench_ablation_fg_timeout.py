"""Ablation (extension): forwarding-group lifetime vs metric gains.

ODMRP keeps forwarding-group flags alive for several refresh rounds; the
accumulated union of recent paths is a redundancy mesh that delivers
packets even when the *current* route choice is poor.  The longer that
lifetime, the more the baseline's redundancy hides its bad (min-hop,
lossy) choices -- shrinking the measured benefit of link-quality metrics.
This is the same mechanism the paper describes for multiple sources per
group (Section 4.3), here exercised through the FG timer.

The bench sweeps the FG lifetime on the testbed and reports ODMRP_SPP's
gain over ODMRP at each setting.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.tables import render_table
from repro.experiments.runner import collect_result
from repro.odmrp.config import OdmrpConfig
from repro.testbed.emulator import build_testbed_scenario
from benchmarks.conftest import testbed_config, testbed_seeds

FG_TIMEOUTS = (3.0, 4.5, 9.0)


def run_sweep():
    base = testbed_config()
    results = {}
    for fg_timeout in FG_TIMEOUTS:
        odmrp_config = OdmrpConfig(fg_timeout_s=fg_timeout)
        delivered = {"odmrp": 0, "spp": 0}
        for seed in testbed_seeds():
            config = replace(
                base.with_run_seed(seed), odmrp=odmrp_config
            )
            for protocol in ("odmrp", "spp"):
                scenario = build_testbed_scenario(protocol, config)
                scenario.run()
                delivered[protocol] += collect_result(
                    scenario
                ).delivered_packets
        results[fg_timeout] = delivered
    return results


def bench_ablation_fg_timeout(benchmark):
    results = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    rows = []
    gains = {}
    for fg_timeout, delivered in sorted(results.items()):
        gain = delivered["spp"] / max(1, delivered["odmrp"]) - 1.0
        gains[fg_timeout] = gain
        rows.append((
            f"{fg_timeout:.1f}s ({fg_timeout / 3.0:.1f} rounds)",
            str(delivered["odmrp"]),
            str(delivered["spp"]),
            f"{gain:+.1%}",
        ))
    print()
    print(render_table(
        ("FG lifetime", "ODMRP delivered", "ODMRP_SPP delivered",
         "SPP gain"),
        rows,
        title=(
            "Ablation: forwarding-group lifetime vs metric gain "
            "(testbed; longer FG = more baseline redundancy = less gain)"
        ),
    ))
    benchmark.extra_info["gains"] = {str(k): v for k, v in gains.items()}
    # The redundancy trend: the gain with the longest FG lifetime must
    # not exceed the gain with the shortest.
    assert gains[9.0] <= gains[3.0] + 0.05, gains
