"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_sim_options_parsed(self):
        args = build_parser().parse_args(
            ["fig2-sim", "--nodes", "20", "--duration", "60",
             "--topologies", "2"]
        )
        assert args.nodes == 20
        assert args.duration == 60.0
        assert args.topologies == 2

    def test_testbed_options_parsed(self):
        args = build_parser().parse_args(
            ["testbed", "--duration", "120", "--runs", "3", "--seed", "7"]
        )
        assert args.duration == 120.0
        assert args.runs == 3
        assert args.seed == 7


class TestAnalyticCommands:
    def test_fig1_prints_paper_values(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "6.000" in out and "5.000" in out
        assert "METX" in out

    def test_fig3_prints_paper_values(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "3.750" in out and "0.512" in out


class TestSimulationCommands:
    def test_fig2_sim_tiny_run(self, capsys):
        code = main([
            "fig2-sim", "--nodes", "14", "--duration", "40",
            "--topologies", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Throughput-simulations" in out
        assert "Delay" in out
        assert "odmrp" in out and "spp" in out

    def test_table1_tiny_run(self, capsys):
        code = main([
            "table1", "--nodes", "14", "--duration", "40",
            "--topologies", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "overhead" in out
        assert "ett" in out and "spp" in out


class TestTestbedCommands:
    def test_fig4(self, capsys):
        assert main(["fig4", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "2-5" in out and "lossy" in out

    def test_fig5_short_run(self, capsys):
        code = main(["fig5", "--duration", "90", "--runs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "odmrp" in out and "pp" in out
        assert "lossy-link share" in out

    def test_testbed_short_run(self, capsys):
        code = main(["testbed", "--duration", "60", "--runs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Throughput-testbed" in out
