"""Benchmark E9: multiple sources per group (Section 4.3).

ODMRP builds forwarding groups per *group*, so extra sources create a
more redundant mesh that partially compensates the original protocol's
bad path choices; the paper reports the relative gains shrinking by
~10-15%.  This bench compares the metric gains at 1 vs 2 sources per
group.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.experiments.figures import multi_source_gain_reduction
from benchmarks.conftest import simulation_config, topology_seeds

PROTOCOLS = ("odmrp", "pp", "spp")


def bench_multi_source_gain_reduction(benchmark):
    results = benchmark.pedantic(
        lambda: multi_source_gain_reduction(
            simulation_config(),
            seeds=topology_seeds(),
            source_counts=(1, 2),
            protocols=PROTOCOLS,
        ),
        iterations=1,
        rounds=1,
    )
    rows = []
    for count, figure in sorted(results.items()):
        rows.append(
            (str(count),)
            + tuple(
                f"{figure.measured[name]:.3f}"
                for name in PROTOCOLS
                if name != "odmrp"
            )
        )
    print()
    print(render_table(
        ("sources/group",) + tuple(p for p in PROTOCOLS if p != "odmrp"),
        rows,
        title=(
            "Section 4.3: normalized throughput vs sources per group "
            "(paper: gains shrink ~10-15% with more sources)"
        ),
    ))
    benchmark.extra_info["by_sources"] = {
        str(c): fig.measured for c, fig in results.items()
    }
    gain_one = sum(
        results[1].measured[p] - 1.0 for p in PROTOCOLS if p != "odmrp"
    )
    gain_two = sum(
        results[2].measured[p] - 1.0 for p in PROTOCOLS if p != "odmrp"
    )
    # The redundancy effect: relative gains must not grow with sources.
    assert gain_two <= gain_one + 0.10, (gain_one, gain_two)
