"""Runtime invariant monitors and differential scenario fuzzing.

Two halves guard the reproduction's bookkeeping:

* :mod:`repro.validation.invariants` / :mod:`repro.validation.monitors`
  -- pluggable per-slice checkers hooked into the chunked ``run(until=)``
  loop (the same zero-cost-when-disabled pattern as telemetry) that
  assert conservation properties across the PHY/MAC/ODMRP stack while a
  scenario runs.  Violations raise a structured
  :class:`~repro.validation.invariants.InvariantViolation` carrying sim
  time, node, and a replayable (protocol, config, seed) triple.
* :mod:`repro.validation.fuzzing` -- a generator of random small
  :class:`~repro.experiments.spec.ExperimentSpec`\\ s plus a differential
  oracle that runs each spec through the serial, parallel, cached, and
  telemetry-enabled execution paths and demands bit-identical results.

``fuzzing`` is intentionally *not* imported here: it depends on the
experiment-spec layer, which itself imports the scenario config that
carries :class:`ValidationConfig`.  Import it explicitly as
``repro.validation.fuzzing``.
"""

from repro.validation.invariants import (  # noqa: F401
    InvariantMonitor,
    InvariantSuite,
    InvariantViolation,
    ValidationConfig,
    build_suite,
    monitor_names,
    register_monitor,
)
