"""ETX-style broadcast probing and sliding-window loss estimation.

Every node broadcasts one small probe per interval (the paper uses 5 s for
ETX-family metrics).  Each receiver estimates the *forward* delivery ratio
``df`` of the sender->receiver link as::

    df = probes received in the last W seconds / probes expected in W

with ``W = window_intervals * interval`` (the De Couto ETX estimator).
Only the forward direction is measured -- broadcast data has no ACKs, so
reverse quality is deliberately ignored (Section 2.1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.net.node import Node
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicTask


@dataclass
class ProbePayload:
    """Contents of a broadcast probe."""

    sender_id: int
    sequence: int
    interval_s: float


class LossRatioEstimator:
    """Sliding-window forward-delivery-ratio estimator for one link."""

    def __init__(self, window_intervals: int = 10) -> None:
        if window_intervals <= 0:
            raise ValueError("window must cover at least one interval")
        self.window_intervals = window_intervals
        self._received_times: Deque[float] = deque()
        self._first_heard: Optional[float] = None
        self._interval_s: Optional[float] = None

    def note_received(self, now: float, interval_s: float) -> None:
        """Record one received probe (interval carried in the probe)."""
        if interval_s <= 0:
            raise ValueError("probe interval must be positive")
        if self._first_heard is None:
            self._first_heard = now
        self._interval_s = interval_s
        self._received_times.append(now)
        self._expire(now)

    def delivery_ratio(self, now: float) -> float:
        """Current ``df`` estimate in [0, 1]; 0 before any probe is heard.

        The expected count ramps up from the first probe heard, so a
        freshly discovered link is not unfairly scored against a full
        window it never had the chance to fill.
        """
        if self._first_heard is None or self._interval_s is None:
            return 0.0
        self._expire(now)
        window_s = self.window_intervals * self._interval_s
        observed_span = min(window_s, now - self._first_heard + self._interval_s)
        expected = max(1.0, observed_span / self._interval_s)
        ratio = len(self._received_times) / expected
        return min(1.0, ratio)

    def _expire(self, now: float) -> None:
        assert self._interval_s is not None
        horizon = now - self.window_intervals * self._interval_s
        received = self._received_times
        while received and received[0] <= horizon:
            received.popleft()


class BroadcastProbeAgent:
    """Sender side: periodically broadcast one probe.

    Receiver-side handling lives in
    :class:`repro.probing.neighbor_table.NeighborTable`, which owns the
    per-neighbor estimators.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        interval_s: float = 5.0,
        probe_size_bytes: int = 32,
        jitter: float = 0.1,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("probe interval must be positive")
        self.sim = sim
        self.node = node
        self.interval_s = interval_s
        self.probe_size_bytes = probe_size_bytes
        self._sequence = 0
        self._task = PeriodicTask(
            sim,
            interval_s,
            self._send_probe,
            jitter=jitter,
            rng=sim.rng.stream(f"probe.broadcast.{node.node_id}"),
        )

    def start(self) -> None:
        # Stagger the first probe inside one interval so the network's
        # probes are unsynchronized, as in a real deployment.
        rng = self.sim.rng.stream(f"probe.broadcast.start.{self.node.node_id}")
        self._task.start(initial_delay=rng.uniform(0.0, self.interval_s))

    def stop(self) -> None:
        self._task.stop()

    def _send_probe(self) -> None:
        self._sequence += 1
        packet = Packet(
            kind=PacketKind.PROBE,
            origin=self.node.node_id,
            size_bytes=self.probe_size_bytes,
            created_at=self.sim.now,
            payload=ProbePayload(
                sender_id=self.node.node_id,
                sequence=self._sequence,
                interval_s=self.interval_s,
            ),
        )
        self.node.send_broadcast(packet)
