"""Run protocol variants across topologies and collect results.

Environment knobs (read by the benchmark suite, not by this module) allow
paper-scale runs; the functions here are pure: everything comes in via the
config object.
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Sequence

from repro.experiments.results import RunResult
from repro.experiments.scenarios import (
    PROTOCOL_NAMES,
    SimulationScenario,
    SimulationScenarioConfig,
    build_simulation_scenario,
)
from repro.protocols import protocol_by_name
from repro.telemetry.export import trace_filename, write_trace
from repro.telemetry.manifest import build_manifest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (spec -> here)
    from repro.experiments.spec import ExperimentSpec

ProgressCallback = Callable[[str, int], None]


def run_protocol(
    protocol_name: str,
    config: Optional[SimulationScenarioConfig] = None,
) -> RunResult:
    """Build, run, and measure one protocol on one topology.

    When the config enables telemetry, the run's JSONL artifact is
    written before results are collected, so even a sweep that dies
    downstream leaves its traces behind.
    """
    scenario = build_simulation_scenario(protocol_name, config)
    start = time.perf_counter()
    scenario.run()
    wall_time_s = time.perf_counter() - start
    telemetry_path = export_run_telemetry(scenario, wall_time_s)
    return collect_result(scenario, telemetry_path=telemetry_path)


def telemetry_export_dir(config: SimulationScenarioConfig) -> str:
    """Where this config's telemetry artifacts land.

    Explicit ``TelemetryConfig.export_dir`` wins; the default is a
    ``telemetry/`` directory next to the cached run results, so one
    sweep's artifacts and cache entries travel together.
    """
    if config.telemetry.export_dir:
        return config.telemetry.export_dir
    from repro.experiments.parallel import resolve_cache_dir

    return os.path.join(resolve_cache_dir(None), "telemetry")


def export_run_telemetry(
    scenario: SimulationScenario, wall_time_s: float
) -> Optional[str]:
    """Write one finished run's manifest + instruments; returns the path."""
    hub = scenario.telemetry
    if hub is None:
        return None
    config = scenario.config
    extra = {
        "num_nodes": config.num_nodes,
        "samples_taken": hub.samples_taken,
        "offered_packets": scenario.offered_packets(),
    }
    attempt = os.environ.get("REPRO_RUN_ATTEMPT")  # resilience.ATTEMPT_ENV
    if attempt is not None:
        # Retry provenance under the resilient executor: attempt 0 is
        # the first dispatch, >0 means this artifact came from a retry.
        try:
            extra["attempt"] = int(attempt)
        except ValueError:
            pass
    # Fleet provenance under the dir:// backend: which worker executed
    # the run, against which shared sweep (distributed.WORKER_ID_ENV /
    # BACKEND_ENV, inherited by the supervised run child).
    worker_id = os.environ.get("REPRO_WORKER_ID")
    if worker_id:
        extra["worker_id"] = worker_id
    backend = os.environ.get("REPRO_SWEEP_BACKEND")
    if backend:
        extra["backend"] = backend
    if scenario.spec is not None:
        # Provenance for sweep tooling: which registry binding ran.
        extra["protocol_spec"] = scenario.spec.to_record()
    manifest = build_manifest(
        scenario.protocol_name,
        config,
        seed=config.topology_seed,
        wall_time_s=wall_time_s,
        sim_duration_s=config.duration_s,
        events_executed=scenario.network.sim.events_executed,
        family=scenario.spec.family if scenario.spec is not None else "",
        metric=scenario.spec.metric if scenario.spec is not None else None,
        extra=extra,
    )
    path = os.path.join(telemetry_export_dir(config), trace_filename(manifest))
    return write_trace(path, hub, manifest)


def collect_result(
    scenario: SimulationScenario, telemetry_path: Optional[str] = None
) -> RunResult:
    """Extract a :class:`RunResult` from a finished scenario."""
    probe_bytes = (
        scenario.probing.probe_bytes_sent()
        if scenario.probing is not None
        else 0.0
    )
    interesting_prefixes = (
        "odmrp.", "phy.", "tx.", "channel.", "mobility.", "energy.",
    )
    counters = {}
    for node in scenario.network.nodes:
        for name, value in node.counters.as_dict().items():
            if name.startswith(interesting_prefixes):
                counters[name] = counters.get(name, 0.0) + value
    for name, value in scenario.network.channel.counters.as_dict().items():
        counters[name] = counters.get(name, 0.0) + value
    faults = getattr(scenario.config, "faults", None)
    if faults is not None and not faults.is_empty():
        # Make faulty runs self-describing: the injected-downtime
        # budget rides in the result counters, so reports (and cached
        # or journal-replayed runs) can itemize fault severity without
        # access to the original plan object.  Testbed configs carry
        # no fault plan at all, hence the getattr guard.
        summary = faults.severity_summary()
        counters["faults.injected_downtime_s"] = summary["total_downtime_s"]
        counters["faults.nodes_affected"] = summary["nodes_affected"]
        counters["faults.windows"] = summary["windows"]
    sink = scenario.sink
    seed = getattr(
        scenario.config, "topology_seed", None
    )
    if seed is None:
        seed = getattr(scenario.config, "run_seed", 0)
    return RunResult(
        protocol=scenario.protocol_name,
        topology_seed=seed,
        duration_s=scenario.config.duration_s,
        offered_packets=scenario.offered_packets(),
        expected_deliveries=scenario.expected_deliveries(),
        delivered_packets=sink.total_packets,
        delivered_bytes=sink.total_bytes,
        mean_delay_s=sink.mean_delay_s(),
        probe_bytes=probe_bytes,
        counters=counters,
        telemetry_path=telemetry_path,
    )


def compare_protocols(
    config: Optional[SimulationScenarioConfig] = None,
    protocols: Sequence[str] = PROTOCOL_NAMES,
    topology_seeds: Iterable[int] = (1,),
    progress: Optional[ProgressCallback] = None,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: Optional[str] = None,
    run_timeout_s: Optional[float] = None,
    max_retries: Optional[int] = None,
    resume: bool = False,
    journal_path: Optional[str] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> List[RunResult]:
    """The paper's comparison loop: every protocol on every topology.

    Execution routes through the pluggable executor layer
    (:mod:`repro.experiments.executors`).  The default ``local-pool``
    backend preserves the historical behavior exactly: ``jobs`` fans
    the (protocol, seed) grid out across worker processes (``jobs<=0``
    means one per CPU); every run is seed-deterministic, so the
    returned list is identical to the serial one in both order and
    content.  ``use_cache`` replays unchanged runs from the on-disk
    result cache (see :mod:`repro.experiments.parallel` for the key and
    its invalidation rule).

    Regardless of ``jobs``, a run that raises comes back as an
    error-annotated :class:`RunResult` (``result.error`` holds the
    traceback) rather than aborting the sweep; ``jobs=1`` runs inline
    with no pool and no pickling requirement on the config.

    Setting any of ``run_timeout_s`` / ``max_retries`` / ``resume`` /
    ``journal_path`` selects the *resilient* local executor
    (:mod:`repro.experiments.resilience`): every run gets its own
    supervised worker process with a wall-clock timeout, transient
    failures retry with backoff, finished runs are journaled, and
    ``resume=True`` replays previously completed runs instead of
    re-simulating them.

    ``backend="dir://<shared-dir>"`` selects the distributed executor
    (:mod:`repro.experiments.distributed`): the sweep is published into
    the shared directory, ``workers`` local worker processes (plus any
    external ``repro worker`` processes pointed at the same URI) drain
    it via lease claims, and results aggregate incrementally as journal
    records land.  Results stay bit-identical across all backends.
    """
    if config is None:
        config = SimulationScenarioConfig()
    # Resolve every name up front: a typo'd protocol fails here with the
    # registry's valid-name listing instead of deep inside a worker.
    for name in protocols:
        protocol_by_name(name)

    from repro.experiments.executors import create_executor
    from repro.experiments.parallel import sweep_specs

    specs = sweep_specs(config, tuple(protocols), tuple(topology_seeds))
    executor = create_executor(
        backend,
        jobs=jobs,
        use_cache=use_cache,
        cache_dir=cache_dir,
        run_timeout_s=run_timeout_s,
        max_retries=max_retries,
        resume=resume,
        journal_path=journal_path,
        workers=workers,
    )
    outcomes = executor.execute(specs, progress=progress)
    return [outcome.result for outcome in outcomes]


def run_experiment(
    spec: "ExperimentSpec",
    progress: Optional[ProgressCallback] = None,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    journal_path: Optional[str] = None,
    workers: Optional[int] = None,
) -> List[RunResult]:
    """Execute a declarative :class:`~repro.experiments.spec.ExperimentSpec`.

    The spec is validated (every protocol resolved through the registry)
    before any simulation starts; execution then flows through the same
    :func:`compare_protocols` path as programmatic sweeps, so parallel
    fan-out, the result cache, and telemetry export all apply.  Specs
    that set ``run_timeout_s`` / ``max_retries`` -- or callers passing
    ``resume=True`` -- execute under the resilient supervisor (see
    :mod:`repro.experiments.resilience`).

    A spec with ``mobility_models`` runs the protocols x seeds grid once
    per listed model (``config.mobility.model`` replaced per cell) and
    relabels each result ``protocol@model``, so reports and result files
    keep the cells apart.  Run caching stays sound: per-model configs
    hash to distinct cache keys, and the shared journal (``resume``)
    records per-run spec keys, so sub-sweeps can share one journal.
    """
    import dataclasses as _dc

    spec.validate()

    def _execute(config, label_suffix: str) -> List[RunResult]:
        results = compare_protocols(
            config,
            protocols=spec.protocols,
            topology_seeds=spec.seeds,
            progress=progress,
            jobs=spec.jobs,
            use_cache=spec.use_cache,
            cache_dir=cache_dir,
            run_timeout_s=spec.run_timeout_s,
            max_retries=spec.max_retries,
            resume=resume,
            journal_path=journal_path,
            backend=spec.backend,
            workers=workers,
        )
        if not label_suffix:
            return results
        return [
            _dc.replace(result, protocol=f"{result.protocol}{label_suffix}")
            for result in results
        ]

    if not spec.mobility_models:
        return _execute(spec.config, "")
    all_results: List[RunResult] = []
    for model in spec.mobility_models:
        config = _dc.replace(
            spec.config,
            mobility=_dc.replace(spec.config.mobility, model=model),
        )
        all_results.extend(_execute(config, f"@{model}"))
    return all_results
