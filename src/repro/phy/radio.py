"""Radio parameter sets and power-unit helpers.

Defaults reproduce the paper's simulation setup: 2 Mbps channel (the
802.11 broadcast basic rate), 250 m nominal range under two-ray
propagation, omnidirectional unit-gain antennas at 1.5 m.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.phy.propagation import PropagationModel

BOLTZMANN_NOISE_DBM_PER_HZ = -174.0  # thermal noise density at ~290 K


def dbm_to_mw(dbm: float) -> float:
    """Convert a power in dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert a power in milliwatts to dBm (-inf for zero power)."""
    if mw <= 0.0:
        return float("-inf")
    return 10.0 * math.log10(mw)


def thermal_noise_mw(bandwidth_hz: float, noise_figure_db: float = 10.0) -> float:
    """Thermal noise power over ``bandwidth_hz`` plus receiver noise figure."""
    noise_dbm = (
        BOLTZMANN_NOISE_DBM_PER_HZ
        + 10.0 * math.log10(bandwidth_hz)
        + noise_figure_db
    )
    return dbm_to_mw(noise_dbm)


@dataclass
class RadioParams:
    """Parameters of one radio interface.

    Attributes
    ----------
    tx_power_dbm:
        Transmit power.  15 dBm is GloMoSim's default.
    data_rate_bps:
        Payload bit rate; the paper uses 2 Mbps, the 802.11 broadcast rate.
    rx_threshold_dbm:
        Sensitivity: packets arriving below this mean power cannot be
        received.  Calibrated by :func:`calibrate_rx_threshold_dbm` so the
        no-fading range is exactly the paper's 250 m.
    carrier_sense_threshold_dbm:
        Energy level at which the medium is sensed busy; conventionally
        ~10 dB below the receive threshold (senses farther than it decodes).
    sinr_threshold_db:
        Minimum signal-to-interference-plus-noise ratio for capture.
    """

    tx_power_dbm: float = 15.0
    frequency_hz: float = 2.4e9
    data_rate_bps: float = 2_000_000.0
    bandwidth_hz: float = 22e6
    antenna_gain: float = 1.0
    antenna_height_m: float = 1.5
    rx_threshold_dbm: float = -74.0
    carrier_sense_threshold_dbm: float = -84.0
    sinr_threshold_db: float = 10.0
    noise_figure_db: float = 10.0
    preamble_duration_s: float = 192e-6  # 802.11b long preamble + PLCP

    noise_mw: float = field(init=False)
    tx_power_mw: float = field(init=False)
    rx_threshold_mw: float = field(init=False)
    carrier_sense_threshold_mw: float = field(init=False)
    sinr_threshold_linear: float = field(init=False)

    def __post_init__(self) -> None:
        self._refresh_derived()

    def _refresh_derived(self) -> None:
        self.noise_mw = thermal_noise_mw(self.bandwidth_hz, self.noise_figure_db)
        self.tx_power_mw = dbm_to_mw(self.tx_power_dbm)
        self.rx_threshold_mw = dbm_to_mw(self.rx_threshold_dbm)
        self.carrier_sense_threshold_mw = dbm_to_mw(
            self.carrier_sense_threshold_dbm
        )
        self.sinr_threshold_linear = 10.0 ** (self.sinr_threshold_db / 10.0)

    def set_rx_threshold_dbm(self, value: float, cs_margin_db: float = 10.0) -> None:
        """Set the receive threshold and keep carrier sense ``cs_margin_db``
        below it."""
        self.rx_threshold_dbm = value
        self.carrier_sense_threshold_dbm = value - cs_margin_db
        self._refresh_derived()


def calibrate_rx_threshold_dbm(
    propagation: PropagationModel,
    params: RadioParams,
    target_range_m: float = 250.0,
) -> float:
    """Receive threshold making the no-fading range exactly ``target_range_m``.

    A packet sent at ``params.tx_power_dbm`` arrives exactly at threshold
    from ``target_range_m`` away; any farther and it cannot be decoded
    even on a clear channel.
    """
    if target_range_m <= 0:
        raise ValueError(f"target range must be positive, got {target_range_m}")
    rx_mw = propagation.rx_power_mw(
        params.tx_power_mw,
        target_range_m,
        params.antenna_gain,
        params.antenna_gain,
    )
    return mw_to_dbm(rx_mw)
