"""Chaos harness for the resilient sweep executor.

Injects real worker faults -- hangs, aborts, SIGKILLs, allocation
failures, raised exceptions, cache corruption -- into supervised sweeps
and asserts the supervisor (:mod:`repro.experiments.resilience`)
recovers: faulted runs are retried to bit-identical results, exhausted
runs are quarantined without aborting the sweep, corrupted cache
entries recompute, and an interrupted sweep resumes from its journal.

Fault injection is *in-band*: the supervised child shim calls
:func:`maybe_inject_fault` before running the spec, and the fault plan
travels through the :data:`CHAOS_PLAN_ENV` environment variable (a path
to a JSON plan file), so the injected failures exercise the exact
production supervision path -- no mocks between the fault and the
recovery machinery.  With the variable unset (the default, always)
injection is a no-op costing one dict lookup.

Entry points: ``repro chaos [--quick]`` on the CLI and
``pytest -m chaos`` in the test suite, both backed by :func:`run_chaos`.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import signal
import tempfile
import time
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from contextlib import contextmanager

from repro.experiments.parallel import (
    RunOutcome,
    RunSpec,
    _cache_path,
    cache_store,
    sweep_specs,
)
from repro.experiments.resilience import (
    FailureKind,
    ResilienceConfig,
    RetryPolicy,
    SweepJournal,
    execute_runs_resilient,
)
from repro.experiments.results import RunResult, aggregate_runs
from repro.experiments.scenarios import SimulationScenarioConfig

#: Environment variable naming the active chaos plan file (JSON).  Set
#: by :func:`active_plan` in the sweep parent; inherited by workers.
CHAOS_PLAN_ENV = "REPRO_CHAOS_PLAN"

#: Injectable fault actions.
CHAOS_ACTIONS = ("hang", "crash", "oom-kill", "oom", "exception")


class ChaosError(RuntimeError):
    """The exception the ``exception`` fault action raises in-run."""


@dataclass(frozen=True)
class ChaosFault:
    """One scheduled worker fault, keyed by (protocol, seed, attempt).

    ``attempt`` selects which dispatch of the run is sabotaged
    (0 = first execution); ``None`` faults *every* attempt, which is
    how retry-budget exhaustion is provoked.
    """

    protocol: str
    seed: int
    action: str
    attempt: Optional[int] = 0
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.action not in CHAOS_ACTIONS:
            raise ValueError(
                f"unknown chaos action {self.action!r}; "
                f"choose from {CHAOS_ACTIONS}"
            )

    def matches(self, protocol: str, seed: int, attempt: int) -> bool:
        return (
            self.protocol.lower() == protocol.lower()
            and self.seed == seed
            and (self.attempt is None or self.attempt == attempt)
        )


@dataclass
class ChaosPlan:
    """A set of scheduled faults, serializable for worker processes."""

    faults: Tuple[ChaosFault, ...] = ()

    def fault_for(
        self, protocol: str, seed: int, attempt: int
    ) -> Optional[ChaosFault]:
        for fault in self.faults:
            if fault.matches(protocol, seed, attempt):
                return fault
        return None

    def save(self, path: str) -> str:
        payload = [dataclasses.asdict(fault) for fault in self.faults]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        return path

    @classmethod
    def load(cls, path: str) -> "ChaosPlan":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return cls(faults=tuple(ChaosFault(**item) for item in payload))


@contextmanager
def active_plan(plan: ChaosPlan, directory: str) -> Iterator[str]:
    """Arm a chaos plan for every worker spawned inside the block."""
    path = plan.save(os.path.join(directory, "chaos_plan.json"))
    previous = os.environ.get(CHAOS_PLAN_ENV)
    os.environ[CHAOS_PLAN_ENV] = path
    try:
        yield path
    finally:
        if previous is None:
            os.environ.pop(CHAOS_PLAN_ENV, None)
        else:
            os.environ[CHAOS_PLAN_ENV] = previous


def maybe_inject_fault(spec: RunSpec, attempt: int) -> None:
    """Apply the armed fault for this (spec, attempt), if any.

    Called by the supervised child shim before the run starts.  No-op
    unless :data:`CHAOS_PLAN_ENV` names a readable plan file.
    """
    path = os.environ.get(CHAOS_PLAN_ENV)
    if not path:
        return
    try:
        plan = ChaosPlan.load(path)
    except (OSError, ValueError, TypeError):
        return  # an unreadable plan must never break a real sweep
    fault = plan.fault_for(spec.protocol, spec.seed, attempt)
    if fault is None:
        return
    if fault.action == "hang":
        time.sleep(fault.hang_s)
    elif fault.action == "crash":
        os.kill(os.getpid(), signal.SIGABRT)
    elif fault.action == "oom-kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif fault.action == "oom":
        raise MemoryError("chaos: injected allocation failure")
    elif fault.action == "exception":
        raise ChaosError("chaos: injected model exception")


def corrupt_cache_entry(
    cache_dir: str, spec: RunSpec, mode: str = "truncate"
) -> bool:
    """Damage one on-disk cache entry (parent-side fault injection).

    ``truncate`` keeps the first half of the file (a torn write);
    ``garbage`` replaces the content with non-JSON.  Returns False when
    the entry does not exist.
    """
    path = _cache_path(cache_dir, spec.cache_key())
    try:
        with open(path, "r", encoding="utf-8") as handle:
            content = handle.read()
    except OSError:
        return False
    damaged = content[: len(content) // 2] if mode == "truncate" else "{not json"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(damaged)
    return True


def _victim_worker_main(root: str) -> None:
    """Phase-6 victim: a ``dir://`` worker fated to die holding a lease.

    Runs in its own session (``os.setsid``) so the harness can SIGKILL
    the worker *and* its hung run child with one ``os.killpg`` -- the
    exact shape of a host dropping off the fleet.  No run timeout: the
    injected hang must pin the lease until the kill, not trip a
    supervisor timeout.
    """
    os.setsid()
    from repro.experiments.distributed import LeaseConfig, drain_worker

    drain_worker(
        root,
        worker_id="victim-worker",
        lease=LeaseConfig(
            lease_timeout_s=5.0,
            heartbeat_interval_s=0.2,
            poll_interval_s=0.1,
        ),
    )


# ----------------------------------------------------------------------
# The harness


@dataclass
class ChaosCheck:
    """One assertion the harness made, with its verdict."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class ChaosReport:
    """Everything one :func:`run_chaos` invocation verified."""

    checks: List[ChaosCheck] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def add(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks.append(ChaosCheck(name, ok, detail))

    def render(self) -> str:
        lines = []
        for check in self.checks:
            status = "ok" if check.ok else "FAIL"
            line = f"  [{status:>4}] {check.name}"
            if check.detail:
                line += f": {check.detail}"
            lines.append(line)
        passed = sum(1 for check in self.checks if check.ok)
        lines.append(f"{passed}/{len(self.checks)} chaos check(s) passed")
        return "\n".join(lines)


def chaos_config(quick: bool = False) -> SimulationScenarioConfig:
    """A deliberately tiny scenario: chaos tests the *executor*, not
    the model, so simulations only need to be real, not big."""
    return SimulationScenarioConfig(
        num_nodes=6,
        area_width_m=400.0,
        area_height_m=400.0,
        num_groups=1,
        members_per_group=3,
        duration_s=6.0 if quick else 10.0,
        warmup_s=2.0,
        topology_seed=1,
    )


def _results(outcomes: Sequence[RunOutcome]) -> List[RunResult]:
    return [outcome.result for outcome in outcomes]


def run_chaos(
    quick: bool = False,
    jobs: int = 2,
    work_dir: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
) -> ChaosReport:
    """Run the full chaos suite; returns the per-check report.

    Phases:

    1. *baseline* -- a clean supervised sweep establishes the reference
       results every later phase must reproduce bit-identically.
    2. *fault recovery* -- one transient fault per retryable kind
       (injected hang -> TIMEOUT, SIGABRT -> WORKER_CRASH, MemoryError
       -> OOM) on the first attempt only; the sweep must retry each to
       a result identical to the baseline.
    3. *quarantine* -- a run that hangs on *every* attempt must exhaust
       its retry budget, surface as a TIMEOUT failure in aggregation
       and the report, and not stop the other runs from completing.
    4. *cache corruption* -- truncated and garbled cache entries must
       quarantine, recompute identically, and a killed ``cache_store``
       (orphaned temp file) must be swept, never loaded.
    5. *interrupt + resume* -- a SIGINT mid-sweep must drain cleanly,
       leave a consistent journal, and a ``resume`` pass must replay
       completed runs and finish the rest, bit-identical to baseline.
    6. *distributed worker kill* -- a ``dir://`` worker SIGKILLed while
       holding a lease (with its run child hung) must leave a lease
       that expires, gets reclaimed by a rescue worker, and the rescued
       sweep's results must be bit-identical to the baseline.
    7. *adaptive mid-batch kill* -- an adaptive sweep interrupted while
       a batch is in flight must drain, journal consistently, and a
       ``resume`` pass must replay into the *identical* batch-by-batch
       plan (stopping decisions, seeds spent, and run results all
       bit-identical to a clean adaptive run).
    8. *campaign mid-draw kill* -- a fault campaign interrupted while
       its runs are in flight must drain, and a ``resume`` pass must
       replay into the *identical* sampled plan (generators, severities,
       importance weights, per-seed fault digests) with run results
       bit-identical to a clean campaign; the journaled
       ``campaign-plan`` records must match the resumed plan.
    """
    report = ChaosReport()
    say = log or (lambda message: None)
    if work_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            return run_chaos(quick=quick, jobs=jobs, work_dir=tmp, log=log)

    config = chaos_config(quick)
    protocols = ("odmrp", "spp")
    seeds = (1,) if quick else (1, 2)
    specs = sweep_specs(config, protocols, seeds)
    cache_dir = os.path.join(work_dir, "cache")

    # -- Phase 1: baseline ------------------------------------------------
    say(f"chaos: baseline sweep ({len(specs)} runs, jobs={jobs}) ...")
    baseline = execute_runs_resilient(
        specs, jobs=jobs, cache_dir=cache_dir,
        journal_path=os.path.join(work_dir, "baseline.jsonl"),
    )
    clean = all(outcome.result.error is None for outcome in baseline)
    report.add(
        "baseline-clean", clean,
        "all runs succeeded" if clean else "baseline sweep had failures",
    )
    if not clean:
        return report  # nothing downstream is meaningful
    # Timeout budget for the faulted phases: generous against the
    # slowest observed clean run, so only injected hangs can trip it.
    slowest = max(outcome.elapsed_s for outcome in baseline)
    timeout_s = max(3.0, 5.0 * slowest)
    retry = RetryPolicy(max_retries=2, backoff_base_s=0.05,
                        backoff_max_s=0.2)

    # -- Phase 2: transient faults recover to identical results ----------
    faulted = {
        (protocols[0], seeds[0]): "hang",
        (protocols[1], seeds[0]): "oom",
    }
    if not quick:
        faulted[(protocols[0], seeds[1])] = "crash"
        faulted[(protocols[1], seeds[1])] = "oom-kill"
    plan = ChaosPlan(faults=tuple(
        ChaosFault(protocol=protocol, seed=seed, action=action, attempt=0)
        for (protocol, seed), action in faulted.items()
    ))
    say(f"chaos: fault storm ({', '.join(sorted(set(faulted.values())))}) ...")
    journal_path = os.path.join(work_dir, "faulted.jsonl")
    with active_plan(plan, work_dir):
        stormed = execute_runs_resilient(
            specs, jobs=jobs, cache_dir=cache_dir,
            resilience=ResilienceConfig(
                run_timeout_s=timeout_s, retry=retry,
            ),
            journal_path=journal_path,
        )
    recovered = all(outcome.result.error is None for outcome in stormed)
    report.add(
        "chaos-recovered", recovered,
        "every faulted run retried to success" if recovered else "; ".join(
            f"{o.spec.protocol}/seed={o.spec.seed}: "
            + o.result.error.splitlines()[-1]
            for o in stormed if o.result.error is not None
        ),
    )
    retried = [
        outcome for outcome in stormed
        if (outcome.spec.protocol, outcome.spec.seed) in faulted
    ]
    all_retried = bool(retried) and all(o.attempts >= 2 for o in retried)
    report.add(
        "chaos-retried", all_retried,
        f"faulted runs took {[o.attempts for o in retried]} attempt(s)",
    )
    identical = _results(stormed) == _results(baseline)
    report.add(
        "chaos-identical", identical,
        "retried results bit-identical to baseline" if identical
        else "retried results diverged from baseline",
    )

    # -- Phase 3: exhausted retries quarantine, sweep degrades gracefully
    victim = specs[0]
    say("chaos: quarantine (hang on every attempt) ...")
    quarantine_retry = RetryPolicy(max_retries=1, backoff_base_s=0.05,
                                   backoff_max_s=0.1)
    plan = ChaosPlan(faults=(
        ChaosFault(protocol=victim.protocol, seed=victim.seed,
                   action="hang", attempt=None),
    ))
    with active_plan(plan, work_dir):
        degraded = execute_runs_resilient(
            specs, jobs=jobs, cache_dir=cache_dir,
            resilience=ResilienceConfig(
                run_timeout_s=timeout_s, retry=quarantine_retry,
            ),
            journal_path=os.path.join(work_dir, "quarantine.jsonl"),
        )
    victim_outcome = next(
        o for o in degraded
        if (o.spec.protocol, o.spec.seed)
        == (victim.protocol, victim.seed)
    )
    quarantined = (
        victim_outcome.failure_kind is FailureKind.TIMEOUT
        and victim_outcome.attempts == 2
        and (victim_outcome.result.error or "").startswith("TIMEOUT")
    )
    report.add(
        "quarantine-surfaces", quarantined,
        f"victim kind={victim_outcome.failure_kind} "
        f"attempts={victim_outcome.attempts}",
    )
    others_ok = all(
        o.result.error is None for o in degraded if o is not victim_outcome
    )
    report.add(
        "quarantine-degrades", others_ok,
        "sweep completed around the quarantined run" if others_ok
        else "healthy runs were dragged down",
    )
    aggregates = aggregate_runs(_results(degraded))
    agg = aggregates[victim.protocol.lower()]
    in_report = (
        agg.failed_runs == 1
        and agg.failure_kinds.get(FailureKind.TIMEOUT.value) == 1
    )
    from repro.experiments.report import render_report

    note = render_report(_results(degraded), title="chaos quarantine")
    in_report = in_report and "timeout" in note and "quarantined" in note
    report.add(
        "quarantine-reported", in_report,
        "TIMEOUT failure visible in aggregation and report"
        if in_report else f"aggregate={agg}",
    )

    # -- Phase 4: cache corruption quarantines and recomputes ------------
    say("chaos: cache corruption ...")
    for spec, outcome in zip(specs, baseline):
        cache_store(cache_dir, spec, outcome.result)
    corrupt_cache_entry(cache_dir, specs[0], mode="truncate")
    if len(specs) > 1:
        corrupt_cache_entry(cache_dir, specs[-1], mode="garbage")
    # A worker killed mid-store leaves only an orphaned temp file:
    orphan = _cache_path(cache_dir, specs[0].cache_key()) + ".tmp.99999"
    with open(orphan, "w", encoding="utf-8") as handle:
        handle.write('{"half": "written')
    rebuilt = execute_runs_resilient(
        specs, jobs=jobs, use_cache=True, cache_dir=cache_dir,
        journal_path=os.path.join(work_dir, "cache.jsonl"),
    )
    cache_identical = _results(rebuilt) == _results(baseline)
    recomputed = not rebuilt[0].from_cache and rebuilt[0].result.error is None
    quarantine_file = (
        _cache_path(cache_dir, specs[0].cache_key()) + ".corrupt"
    )
    report.add(
        "cache-corruption-recovers",
        cache_identical and recomputed and os.path.exists(quarantine_file)
        and not os.path.exists(orphan),
        f"recomputed={recomputed} identical={cache_identical} "
        f"quarantined={os.path.exists(quarantine_file)} "
        f"tmp-swept={not os.path.exists(orphan)}",
    )

    # -- Phase 5: SIGINT drains; --resume replays bit-identically ---------
    say("chaos: interrupt + resume ...")
    resume_journal = os.path.join(work_dir, "resume.jsonl")
    completions = {"count": 0}

    def interrupt_after_first(protocol: str, seed: int) -> None:
        completions["count"] += 1
        if completions["count"] == 1:
            os.kill(os.getpid(), signal.SIGINT)

    interrupted = False
    try:
        execute_runs_resilient(
            specs, jobs=1, cache_dir=cache_dir,
            journal_path=resume_journal, progress=interrupt_after_first,
        )
    except KeyboardInterrupt:
        interrupted = True
    journaled = SweepJournal.replay(resume_journal)
    drained = (
        interrupted
        and 1 <= len(journaled) < len(specs)
        and all(record.ok for record in journaled.values())
    )
    report.add(
        "interrupt-drains", drained,
        f"interrupted={interrupted}, {len(journaled)}/{len(specs)} "
        "run(s) journaled consistently",
    )
    resumed = execute_runs_resilient(
        specs, jobs=jobs, cache_dir=cache_dir,
        journal_path=resume_journal, resume=True,
    )
    replayed = [outcome for outcome in resumed if outcome.from_journal]
    resume_identical = _results(resumed) == _results(baseline)
    report.add(
        "resume-identical",
        resume_identical and len(replayed) == len(journaled),
        f"{len(replayed)} run(s) replayed from the journal, "
        f"{len(specs) - len(replayed)} executed; bit-identical="
        f"{resume_identical}",
    )

    # -- Phase 6: dir:// worker kill -> lease reclaim -> identical results
    say("chaos: distributed worker kill + lease reclaim ...")
    from repro.experiments.distributed import (
        BACKEND_ENV,
        WORKER_ID_ENV,
        LeaseConfig,
        SweepDir,
        drain_worker,
        publish_sweep,
    )

    shared = SweepDir(os.path.join(work_dir, "shared")).ensure()
    publish_sweep(shared, specs)
    keys = [spec.cache_key() for spec in specs]
    victim_key = keys[0]
    # The victim's first claim is specs[0] (claims scan in sweep order);
    # hang its run child so the lease stays held until the kill.  The
    # hang bound is a backstop only -- the group kill lands first.
    plan = ChaosPlan(faults=(
        ChaosFault(protocol=specs[0].protocol, seed=specs[0].seed,
                   action="hang", attempt=0, hang_s=120.0),
    ))
    ctx = multiprocessing.get_context()
    with active_plan(plan, work_dir):
        victim = ctx.Process(
            target=_victim_worker_main, args=(shared.root,)
        )
        victim.start()
        lease_file = shared.lease_path(victim_key)
        deadline = time.monotonic() + 60.0
        while not os.path.exists(lease_file):
            if time.monotonic() >= deadline or not victim.is_alive():
                break
            time.sleep(0.05)
        lease_observed = os.path.exists(lease_file)
        # Give the hung run child a beat to fork into the victim's
        # session, then kill the whole group -- worker and child die
        # together, heartbeats stop, the lease goes stale.
        time.sleep(0.75)
        try:
            os.killpg(victim.pid, signal.SIGKILL)
        except (OSError, TypeError):
            pass
        victim.join(10.0)
    # Plan disarmed *before* the rescue: the re-issued attempt of the
    # victim's run must execute clean, exactly like a healthy re-run.
    saved_env = {
        name: os.environ.get(name)
        for name in (WORKER_ID_ENV, BACKEND_ENV)
    }
    try:
        rescue_stats = drain_worker(
            shared.root,
            worker_id="rescue-worker",
            lease=LeaseConfig(
                lease_timeout_s=1.5,
                heartbeat_interval_s=0.2,
                poll_interval_s=0.1,
            ),
        )
    finally:
        for name, value in saved_env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    stale_leases = os.listdir(shared.stale_dir)
    reclaim_ok = (
        lease_observed
        and rescue_stats.reclaimed >= 1
        and len(stale_leases) >= 1
    )
    report.add(
        "dir-lease-reclaimed", reclaim_ok,
        f"victim lease observed={lease_observed}, rescue reclaimed="
        f"{rescue_stats.reclaimed}, {len(stale_leases)} stale carcass(es)",
    )
    leftover = [
        name for name in os.listdir(shared.leases_dir)
        if name.endswith(".lease")
    ]
    journaled = SweepJournal.replay(shared.journal_path)
    victim_record = journaled.get(victim_key)
    drained = (
        not leftover
        and all(key in journaled for key in keys)
        and all(journaled[key].ok for key in keys)
        and victim_record is not None
        and victim_record.worker == "rescue-worker"
    )
    report.add(
        "dir-queue-drained", drained,
        f"{len(journaled)}/{len(specs)} run(s) journaled ok, "
        f"{len(leftover)} leftover lease(s), victim run finished by "
        f"{victim_record.worker if victim_record else '?'}",
    )
    dir_results = [
        journaled[key].to_run_result()
        for key in keys if key in journaled
    ]
    dir_identical = dir_results == _results(baseline)
    report.add(
        "dir-identical", dir_identical,
        "rescued distributed sweep bit-identical to baseline"
        if dir_identical else "distributed results diverged from baseline",
    )

    # -- Phase 7: adaptive plan survives a mid-batch kill -----------------
    say("chaos: adaptive mid-batch interrupt + resume ...")
    from repro.experiments.adaptive import (
        AdaptiveConfig,
        replay_plan,
        run_adaptive_experiment,
    )
    from repro.experiments.spec import ExperimentSpec

    adaptive_spec = ExperimentSpec(
        name="chaos-adaptive",
        protocols=protocols,
        seeds=seeds,
        jobs=1,
        # Engages the resilient executor: supervised workers + journal,
        # so the interrupt below kills a real run child mid-batch.
        run_timeout_s=timeout_s,
        adaptive=AdaptiveConfig(
            target_half_width=0.25, batch_size=1, min_seeds=1, max_seeds=2,
        ),
        config=config,
    )
    clean_plan = run_adaptive_experiment(
        adaptive_spec, cache_dir=cache_dir,
        journal_path=os.path.join(work_dir, "adaptive-clean.jsonl"),
    )
    adaptive_journal = os.path.join(work_dir, "adaptive.jsonl")
    adaptive_completions = {"count": 0}

    def adaptive_interrupt(protocol: str, seed: int) -> None:
        adaptive_completions["count"] += 1
        if adaptive_completions["count"] == 1:
            os.kill(os.getpid(), signal.SIGINT)

    adaptive_interrupted = False
    try:
        run_adaptive_experiment(
            adaptive_spec, cache_dir=cache_dir,
            journal_path=adaptive_journal, progress=adaptive_interrupt,
        )
    except KeyboardInterrupt:
        adaptive_interrupted = True
    partial = SweepJournal.replay(adaptive_journal)
    report.add(
        "adaptive-interrupt-drains",
        adaptive_interrupted and len(partial) >= 1
        and all(record.ok for record in partial.values()),
        f"interrupted={adaptive_interrupted}, {len(partial)} run(s) "
        "journaled mid-batch",
    )
    resumed_plan = run_adaptive_experiment(
        adaptive_spec, cache_dir=cache_dir,
        journal_path=adaptive_journal, resume=True,
    )
    plan_identical = (
        resumed_plan.plan_dict() == clean_plan.plan_dict()
        and resumed_plan.runs == clean_plan.runs
    )
    report.add(
        "adaptive-resume-identical", plan_identical,
        "resumed adaptive plan bit-identical to the clean plan"
        if plan_identical else "resumed adaptive plan diverged",
    )
    journaled_plan = replay_plan(adaptive_journal, adaptive_spec.name)
    plan_journaled = [
        {key: record[key] for key in
         ("batch", "seeds", "protocols", "decisions")}
        for record in journaled_plan
    ] == [
        {"batch": batch["batch"], "seeds": batch["seeds"],
         "protocols": batch["protocols"], "decisions": batch["decisions"]}
        for batch in resumed_plan.plan_dict()["batches"]
    ]
    report.add(
        "adaptive-plan-journaled", plan_journaled,
        f"{len(journaled_plan)} per-batch stopping decision(s) in the "
        "journal match the resumed plan"
        if plan_journaled else "journaled plan records diverged",
    )

    # -- Phase 8: campaign plan survives a mid-draw kill ------------------
    say("chaos: campaign mid-draw interrupt + resume ...")
    from repro.experiments.campaigns import (
        CampaignConfig,
        replay_campaign_plan,
        run_campaign_experiment,
    )

    campaign_spec = ExperimentSpec(
        name="chaos-campaign",
        protocols=protocols,
        seeds=seeds,
        jobs=1,
        # Same trick as phase 7: the timeout engages the resilient
        # executor, so the interrupt kills a real run child in flight.
        run_timeout_s=timeout_s,
        campaign=CampaignConfig(draws=2, master_seed=3),
        config=config,
    )
    clean_campaign = run_campaign_experiment(
        campaign_spec, cache_dir=cache_dir,
        journal_path=os.path.join(work_dir, "campaign-clean.jsonl"),
    )
    campaign_journal = os.path.join(work_dir, "campaign.jsonl")
    campaign_completions = {"count": 0}

    def campaign_interrupt(protocol: str, seed: int) -> None:
        campaign_completions["count"] += 1
        if campaign_completions["count"] == 1:
            os.kill(os.getpid(), signal.SIGINT)

    campaign_interrupted = False
    try:
        run_campaign_experiment(
            campaign_spec, cache_dir=cache_dir,
            journal_path=campaign_journal, progress=campaign_interrupt,
        )
    except KeyboardInterrupt:
        campaign_interrupted = True
    campaign_partial = SweepJournal.replay(campaign_journal)
    report.add(
        "campaign-interrupt-drains",
        campaign_interrupted and len(campaign_partial) >= 1
        and all(record.ok for record in campaign_partial.values()),
        f"interrupted={campaign_interrupted}, {len(campaign_partial)} "
        "run(s) journaled mid-campaign",
    )
    resumed_campaign = run_campaign_experiment(
        campaign_spec, cache_dir=cache_dir,
        journal_path=campaign_journal, resume=True,
    )
    campaign_identical = (
        resumed_campaign.plan_dict() == clean_campaign.plan_dict()
        and resumed_campaign.runs == clean_campaign.runs
    )
    report.add(
        "campaign-resume-identical", campaign_identical,
        "resumed campaign plan and runs bit-identical to the clean run"
        if campaign_identical else "resumed campaign diverged",
    )
    journaled_campaign = replay_campaign_plan(
        campaign_journal, campaign_spec.name
    )
    campaign_journaled = [
        {key: record[key] for key in
         ("draw", "generator", "theta", "weight", "faults")}
        for record in journaled_campaign
    ] == resumed_campaign.plan_dict()["plan"]
    report.add(
        "campaign-plan-journaled", campaign_journaled,
        f"{len(journaled_campaign)} journaled draw record(s) match the "
        "resumed plan, weights included"
        if campaign_journaled else "journaled campaign records diverged",
    )
    say("chaos: done")
    return report
