"""The protocol registry: every router x metric combination, by name.

The paper's core claim is *orthogonality*: five link-quality metrics can
be plugged into mesh-based ODMRP or tree-based MAODV without touching
either protocol's machinery.  The registry makes that orthogonality a
first-class object instead of string branching scattered through the
scenario builder and CLI:

* a :class:`ProtocolSpec` binds a protocol *name* ("spp", "maodv-etx",
  "wcett") to a router class, a metric name, and optional per-protocol
  :class:`~repro.odmrp.config.OdmrpConfig` field overrides;
* a :class:`ProtocolRegistry` holds specs in registration order,
  rejects duplicate names, and resolves lookups with a helpful error
  (valid names plus a did-you-mean suggestion);
* :func:`register_protocol` is the registration API (also usable as the
  body of a class decorator via :func:`registers`), and the module seeds
  the default registry with the paper's six ODMRP variants, the six
  MAODV variants, and the single-channel WCETT entry.

``build_simulation_scenario`` resolves router class + metric from the
spec, so adding a protocol variant is one ``register_protocol`` call --
it is immediately sweepable, cacheable, and reportable through the whole
pipeline (runner, parallel cache, report, telemetry, CLI).
"""

from __future__ import annotations

import dataclasses
import difflib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Tuple, Type

from repro.core.metrics import RouteMetric, metric_type_by_name
from repro.maodv.protocol import MaodvRouter
from repro.multichannel.wcett import WcettSingleChannelMetric  # noqa: F401 - registers "wcett"
from repro.odmrp.config import OdmrpConfig
from repro.odmrp.protocol import OdmrpRouter


class DuplicateProtocolError(ValueError):
    """A spec was registered under a name that is already taken."""


class UnknownProtocolError(ValueError):
    """Lookup of a protocol name the registry has never seen."""

    def __init__(self, name: str, known: Tuple[str, ...]) -> None:
        hint = ""
        close = difflib.get_close_matches(name.lower(), known, n=3)
        if close:
            hint = f" (did you mean {', '.join(repr(c) for c in close)}?)"
        super().__init__(
            f"unknown protocol {name!r}{hint}; registered protocols: "
            + ", ".join(known)
        )
        self.name = name
        self.known = known


@dataclass(frozen=True)
class ProtocolSpec:
    """One named, runnable router x metric combination.

    Attributes
    ----------
    name:
        The sweep/table identifier ("spp", "maodv-etx", ...).  Lowercase.
    router:
        The router class instantiated per node; must accept the
        :class:`~repro.odmrp.protocol.OdmrpRouter` constructor signature.
    metric:
        Name of the route metric (resolved through
        :func:`repro.core.metrics.metric_by_name`), or None for the
        protocol's native min-hop flood (no probing layer is built).
    family:
        Coarse grouping for reports and docs: "odmrp", "maodv",
        "multichannel", ...
    overrides:
        Per-protocol :class:`~repro.odmrp.config.OdmrpConfig` field
        overrides, applied on top of the scenario config's protocol
        section at build time.
    """

    name: str
    router: Type[OdmrpRouter]
    metric: Optional[str] = None
    family: str = "odmrp"
    description: str = ""
    overrides: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("protocol name must be non-empty")
        if self.name != self.name.lower():
            raise ValueError(f"protocol name must be lowercase: {self.name!r}")
        if self.metric is not None:
            # Fail at registration, not mid-sweep: the metric must exist.
            metric_type_by_name(self.metric)
        # Freeze the overrides mapping so the spec stays hashable-ish and
        # nobody mutates a registered spec in place.
        object.__setattr__(self, "overrides", dict(self.overrides))
        unknown = set(self.overrides) - {
            f.name for f in dataclasses.fields(OdmrpConfig)
        }
        if unknown:
            raise ValueError(
                f"spec {self.name!r} overrides unknown OdmrpConfig "
                f"field(s): {sorted(unknown)}"
            )

    def build_metric(
        self,
        packet_size_bytes: int = 512,
        default_bandwidth_bps: float = 2_000_000.0,
    ) -> Optional[RouteMetric]:
        """Instantiate this spec's metric (None for min-hop protocols).

        Airtime-based metrics (ETT and its WCETT adaptation) are
        parameterized by the workload's packet size and the channel's
        nominal rate; the caller passes both from the scenario config.
        """
        if self.metric is None:
            return None
        metric_type = metric_type_by_name(self.metric)
        if getattr(metric_type, "uses_packet_airtime", False):
            return metric_type(
                packet_size_bytes=packet_size_bytes,
                default_bandwidth_bps=default_bandwidth_bps,
            )
        return metric_type()

    def protocol_config(self, base: OdmrpConfig) -> OdmrpConfig:
        """The protocol config for a run: ``base`` plus spec overrides."""
        if not self.overrides:
            return base
        return dataclasses.replace(base, **self.overrides)

    def to_record(self) -> Dict[str, Any]:
        """JSON-friendly description (telemetry manifests, dry runs)."""
        return {
            "name": self.name,
            "router": f"{self.router.__module__}.{self.router.__qualname__}",
            "metric": self.metric,
            "family": self.family,
            "overrides": dict(self.overrides),
        }


class ProtocolRegistry:
    """Ordered name -> :class:`ProtocolSpec` mapping with strict names."""

    def __init__(self) -> None:
        self._specs: Dict[str, ProtocolSpec] = {}

    def register(
        self, spec: ProtocolSpec, replace: bool = False
    ) -> ProtocolSpec:
        key = spec.name
        if not replace and key in self._specs:
            raise DuplicateProtocolError(
                f"protocol {key!r} is already registered "
                f"({self._specs[key].to_record()['router']}); pass "
                "replace=True to override it"
            )
        self._specs[key] = spec
        return spec

    def unregister(self, name: str) -> None:
        self._specs.pop(name.lower(), None)

    def get(self, name: str) -> ProtocolSpec:
        try:
            return self._specs[name.lower()]
        except KeyError:
            raise UnknownProtocolError(name, self.names()) from None

    def names(self) -> Tuple[str, ...]:
        return tuple(self._specs)

    def specs(self) -> Tuple[ProtocolSpec, ...]:
        return tuple(self._specs.values())

    def family(self, family: str) -> Tuple[ProtocolSpec, ...]:
        return tuple(
            spec for spec in self._specs.values() if spec.family == family
        )

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[ProtocolSpec]:
        return iter(self._specs.values())


#: The process-wide default registry every pipeline layer resolves against.
REGISTRY = ProtocolRegistry()


def register_protocol(
    name: str,
    router: Type[OdmrpRouter],
    metric: Optional[str] = None,
    family: str = "odmrp",
    description: str = "",
    overrides: Optional[Mapping[str, Any]] = None,
    registry: ProtocolRegistry = REGISTRY,
    replace: bool = False,
) -> ProtocolSpec:
    """Register one router x metric combination under ``name``."""
    spec = ProtocolSpec(
        name=name.lower(),
        router=router,
        metric=metric,
        family=family,
        description=description,
        overrides=dict(overrides or {}),
    )
    return registry.register(spec, replace=replace)


def registers(
    name: str, **kwargs: Any
) -> Callable[[Type[OdmrpRouter]], Type[OdmrpRouter]]:
    """Class-decorator form of :func:`register_protocol`.

    ::

        @registers("myproto", metric="spp", family="experimental")
        class MyRouter(OdmrpRouter):
            ...
    """

    def decorate(router: Type[OdmrpRouter]) -> Type[OdmrpRouter]:
        register_protocol(name, router, **kwargs)
        return router

    return decorate


def protocol_by_name(name: str) -> ProtocolSpec:
    """Resolve a spec from the default registry (helpful error on typo)."""
    return REGISTRY.get(name)


def protocol_names() -> Tuple[str, ...]:
    """All registered protocol names, in registration order."""
    return REGISTRY.names()


def paper_protocol_names() -> Tuple[str, ...]:
    """The paper's six simulation variants (the "odmrp" family)."""
    return tuple(spec.name for spec in REGISTRY.family("odmrp"))


def maodv_protocol_names() -> Tuple[str, ...]:
    """The tree-based variants (the "maodv" family)."""
    return tuple(spec.name for spec in REGISTRY.family("maodv"))


# ----------------------------------------------------------------------
# Seed registrations: the paper's six ODMRP variants, their MAODV
# counterparts (Section 4.3: "metrics continue to be effective in ...
# tree-based [protocols] such as MAODV"), and the multi-channel
# future-work entry.  Registration order is presentation order in
# reports and the CLI.

_PAPER_METRICS = ("ett", "etx", "metx", "pp", "spp")

register_protocol(
    "odmrp", OdmrpRouter, metric=None, family="odmrp",
    description="Original ODMRP: first-arriving JOIN QUERY, min-hop mesh.",
)
for _metric in _PAPER_METRICS:
    register_protocol(
        _metric, OdmrpRouter, metric=_metric, family="odmrp",
        description=f"ODMRP_{_metric.upper()}: mesh routing on {_metric}.",
    )

register_protocol(
    "maodv", MaodvRouter, metric=None, family="maodv",
    description="Tree-based (MAODV-like) multicast, min-hop trees.",
)
for _metric in _PAPER_METRICS:
    register_protocol(
        f"maodv-{_metric}", MaodvRouter, metric=_metric, family="maodv",
        description=(
            f"MAODV-like per-source trees selected by {_metric}."
        ),
    )

register_protocol(
    "wcett", OdmrpRouter, metric="wcett", family="multichannel",
    description=(
        "ODMRP on single-channel WCETT (degenerates to forward-only ETT "
        "on one channel; see repro.multichannel.wcett)."
    ),
)
