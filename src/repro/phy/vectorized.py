"""Vectorized fading samplers, bit-identical to the scalar hot path.

:class:`~repro.net.channel.WirelessChannel` normally walks a Python loop
over a transmission's audible receivers, drawing one fading gain per
pair from ``random.Random``.  At mesh sizes in the thousands that loop
dominates the run; this module replaces it with one numpy batch per
transmission *without changing a single bit of any result*.

The bit-identity contract and how each piece honors it:

* **Uniform stream** -- :class:`MtUniformStream` clones the scalar
  path's ``random.Random`` Mersenne-Twister state into a
  ``numpy.random.RandomState``.  Both generators implement MT19937 and
  derive doubles with the same 53-bit recipe, so ``uniforms(n)``
  returns exactly the floats ``n`` successive ``rng.random()`` calls
  would have (verified by tests down to the last ulp).  The clone is
  taken before the first draw and advanced only by the batched path, so
  a vectorized run consumes the stream in lock-step with a scalar one.
* **Transcendentals** -- numpy's ``log``/``exp`` use SIMD polynomial
  kernels that differ from libm by an ulp on some inputs, which would
  silently break golden results.  The samplers therefore evaluate
  ``log``/``exp`` with ``math``'s scalar functions in a tight list
  comprehension and batch only the operations numpy computes
  bit-identically (``cos``/``sin``/``sqrt`` and IEEE arithmetic).
* **Operation order** -- every sampler replays CPython's own formulas
  operation for operation: ``expovariate(1.0)`` is ``-log(1.0 - u)``
  and ``gauss(mu, sigma)`` is the Box-Muller pair ``mu + (cos(u1 *
  2pi) * sqrt(-2 log(1 - u2))) * sigma`` with the ``sin`` mate returned
  by the *second* call of each pair (all repo fading models consume
  gaussians strictly in real/imag pairs, so the ``gauss_next`` cache is
  always empty at batch boundaries).
* **Draw order** -- links draw in audible-list order, and links that
  would not draw in the scalar path (inactive receiver, zero AR(1)
  innovation) are masked out of the batch, so stream consumption is
  position-for-position identical.

Samplers exist for the three stochastic fading models; a custom
:class:`~repro.phy.fading.FadingModel` subclass gets no sampler and the
channel falls back to the scalar loop (``build_sampler`` returns
``None``).  ``NoFading`` needs no sampler at all -- the channel's
deterministic path already skips sampling.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - exercised only sans numpy
    raise ImportError(
        "repro.phy.vectorized requires numpy, a hard dependency of the "
        "vectorized PHY reception path (declared in pyproject.toml). "
        "Install it with `pip install numpy`, or force the pure-Python "
        "path with NetworkConfig(phy_backend='scalar')."
    ) from exc

from repro.phy.fading import (
    CorrelatedRayleighFading,
    FadingModel,
    RayleighFading,
    RicianFading,
)

TWOPI = 2.0 * math.pi  # random.gauss's angle scale


class MtUniformStream:
    """Batched uniforms, bit-identical to ``random.Random.random()``.

    Clones the Mersenne-Twister state of a ``random.Random`` into numpy's
    legacy ``RandomState``; ``uniforms(n)`` then yields exactly the next
    ``n`` doubles the Python generator would produce.  The source rng
    must not be advanced afterwards -- the clone owns the stream from
    the moment it is taken.
    """

    __slots__ = ("_state",)

    def __init__(self, py_rng: random.Random) -> None:
        version, internal, _gauss_next = py_rng.getstate()
        if version != 3:
            raise ValueError(
                f"unsupported random.Random state version {version}; "
                "the vectorized stream clone assumes the MT19937 layout"
            )
        state = np.random.RandomState()
        state.set_state(
            ("MT19937", np.array(internal[:-1], dtype=np.uint32), internal[-1])
        )
        self._state = state

    def uniforms(self, n: int) -> "np.ndarray":
        """The next ``n`` doubles in [0, 1), as ``random()`` would draw."""
        return self._state.random_sample(n)


def _gauss_pairs(
    stream: MtUniformStream, count: int
) -> "tuple[np.ndarray, np.ndarray]":
    """``count`` Box-Muller pairs, matching paired ``rng.gauss(0, 1)``.

    Returns ``(z1, z2)`` where ``z1[j]``/``z2[j]`` are the standard
    normals the scalar path's first/second ``gauss`` call of pair ``j``
    would produce.  ``log`` runs through ``math`` (numpy's differs by
    an ulp); ``cos``/``sin``/``sqrt`` are batched (bit-equal to libm).
    """
    u = stream.uniforms(2 * count)
    x2pi = u[0::2] * TWOPI
    log = math.log
    g2rad = np.sqrt(
        np.array([-2.0 * log(1.0 - v) for v in u[1::2].tolist()])
    )
    return np.cos(x2pi) * g2rad, np.sin(x2pi) * g2rad


class VectorizedSampler:
    """Per-transmission batch of fading gains for one sender's links.

    ``gains(slot, count, sel, now)`` returns the power gains for the
    sender's audible links -- all ``count`` of them when ``sel`` is
    ``None``, else exactly the (ascending) positions in ``sel``.  The
    result aligns element-for-element with the queried links.

    ``new_slot`` allocates whatever per-sender state the model keeps
    (only the correlated model keeps any); ``dump_state``/``load_state``
    let the channel migrate that state across re-finalizes.
    """

    def new_slot(self, count: int) -> Optional[object]:
        return None

    def dump_state(self, slot: Optional[object]) -> List[Optional[tuple]]:
        return []

    def load_state(
        self, slot: Optional[object], position: int, entry: tuple
    ) -> None:
        raise NotImplementedError("sampler keeps no per-link state")

    def gains(
        self,
        slot: Optional[object],
        count: int,
        sel: Optional[Sequence[int]],
        now: float,
    ) -> "np.ndarray":
        raise NotImplementedError


class RayleighSampler(VectorizedSampler):
    """i.i.d. exponential power gains; mirrors ``rng.expovariate(1.0)``."""

    def __init__(self, stream: MtUniformStream) -> None:
        self._stream = stream

    def gains(self, slot, count, sel, now):
        draws = count if sel is None else len(sel)
        u = self._stream.uniforms(draws)
        log = math.log
        return np.array([-log(1.0 - v) for v in u.tolist()])


class RicianSampler(VectorizedSampler):
    """i.i.d. Rician power gains; mirrors the paired-``gauss`` scalar."""

    def __init__(
        self,
        stream: MtUniformStream,
        los_amplitude: float,
        scatter_sigma: float,
    ) -> None:
        self._stream = stream
        self._los = los_amplitude
        self._sigma = scatter_sigma

    def gains(self, slot, count, sel, now):
        draws = count if sel is None else len(sel)
        z1, z2 = _gauss_pairs(self._stream, draws)
        real = self._los + (0.0 + z1 * self._sigma)
        imag = 0.0 + z2 * self._sigma
        return real * real + imag * imag


class _CorrelatedSlot:
    """AR(1) state arrays for one sender's audible links."""

    __slots__ = ("t", "re", "im", "has")

    def __init__(self, count: int) -> None:
        self.t = np.zeros(count)
        self.re = np.zeros(count)
        self.im = np.zeros(count)
        self.has = np.zeros(count, dtype=bool)


class CorrelatedRayleighSampler(VectorizedSampler):
    """Gauss-Markov fading; replays the scalar AR(1) update exactly.

    Fast path: after a sender's first transmission every link in its
    slot shares the same last-update time, so ``rho`` and the
    innovation are a single scalar ``exp``/``sqrt`` instead of per-link
    loops -- same doubles, computed once.
    """

    def __init__(
        self, stream: MtUniformStream, coherence_time_s: float
    ) -> None:
        self._stream = stream
        self._T = coherence_time_s
        self._sigma = math.sqrt(0.5)

    def new_slot(self, count):
        return _CorrelatedSlot(count)

    def dump_state(self, slot):
        if slot is None:
            return []
        t = slot.t.tolist()
        re = slot.re.tolist()
        im = slot.im.tolist()
        return [
            (t[k], re[k], im[k]) if has else None
            for k, has in enumerate(slot.has.tolist())
        ]

    def load_state(self, slot, position, entry):
        slot.t[position], slot.re[position], slot.im[position] = entry
        slot.has[position] = True

    def gains(self, slot, count, sel, now):
        sigma = self._sigma
        if sel is None:
            idx: object = slice(None)
            m = count
        else:
            idx = np.asarray(sel, dtype=np.intp)
            m = len(sel)
        has = slot.has[idx]
        t_old = slot.t[idx]
        re_old = slot.re[idx]
        im_old = slot.im[idx]

        if bool(has.all()) and m and bool((t_old == t_old[0]).all()):
            # Uniform-history fast path (every tx after the first).
            dt = now - float(t_old[0])
            rho = math.exp(-dt / self._T)
            innovation = sigma * math.sqrt(max(0.0, 1.0 - rho * rho))
            if innovation:
                z1, z2 = _gauss_pairs(self._stream, m)
                re_new = rho * re_old + (0.0 + z1 * innovation)
                im_new = rho * im_old + (0.0 + z2 * innovation)
            else:
                re_new = rho * re_old
                im_new = rho * im_old
        else:
            rho_arr = np.empty(m)
            innov_arr = np.zeros(m)
            stale = np.nonzero(has)[0]
            if stale.size:
                dt = now - t_old[stale]
                exp = math.exp
                rho_s = np.array(
                    [exp(v) for v in (-dt / self._T).tolist()]
                )
                innov_s = sigma * np.sqrt(
                    np.maximum(0.0, 1.0 - rho_s * rho_s)
                )
                rho_arr[stale] = rho_s
                innov_arr[stale] = innov_s
            # Links that consume a gaussian pair, in audible order:
            # fresh links always, stale links only when the innovation
            # is non-zero (the scalar path's `if innovation:` branch).
            need = ~has
            if stale.size:
                need[stale] = innov_s != 0.0
            z1 = z2 = pair_pos = None
            draws = int(need.sum())
            if draws:
                z1, z2 = _gauss_pairs(self._stream, draws)
                pair_pos = np.cumsum(need) - 1
            re_new = np.empty(m)
            im_new = np.empty(m)
            fresh = ~has
            if fresh.any():
                fp = pair_pos[fresh]
                re_new[fresh] = 0.0 + z1[fp] * sigma
                im_new[fresh] = 0.0 + z2[fp] * sigma
            if stale.size:
                drew = innov_s != 0.0
                upd = stale[drew]
                if upd.size:
                    fp = pair_pos[upd]
                    re_new[upd] = rho_arr[upd] * re_old[upd] + (
                        0.0 + z1[fp] * innov_arr[upd]
                    )
                    im_new[upd] = rho_arr[upd] * im_old[upd] + (
                        0.0 + z2[fp] * innov_arr[upd]
                    )
                hold = stale[~drew]
                if hold.size:
                    re_new[hold] = rho_arr[hold] * re_old[hold]
                    im_new[hold] = rho_arr[hold] * im_old[hold]

        slot.t[idx] = now
        slot.re[idx] = re_new
        slot.im[idx] = im_new
        slot.has[idx] = True
        return re_new * re_new + im_new * im_new


def build_sampler(
    fading: FadingModel, py_rng: random.Random
) -> Optional[VectorizedSampler]:
    """A batched sampler mirroring ``fading``, or ``None`` if unsupported.

    Matches on exact type -- a subclass may override the sampling math,
    and silently vectorizing it with the parent's formulas would break
    bit-identity.  Clones ``py_rng``'s stream; the caller must stop
    drawing from it once a sampler is built.
    """
    kind = type(fading)
    if kind is RayleighFading:
        return RayleighSampler(MtUniformStream(py_rng))
    if kind is RicianFading:
        return RicianSampler(
            MtUniformStream(py_rng),
            fading._los_amplitude,
            fading._scatter_sigma,
        )
    if kind is CorrelatedRayleighFading:
        return CorrelatedRayleighSampler(
            MtUniformStream(py_rng), fading.coherence_time_s
        )
    return None
