"""Benchmark E7: Table 1, probing overhead per metric.

Probe bytes as a percentage of data bytes received, from the shared
sweep.  Shape requirements: the packet-pair metrics (ETT, PP) cost a
multiple of the single-probe metrics (ETX, METX, SPP), with ETT >= PP
and SPP the cheapest -- the paper's ordering ETT > PP >> ETX > METX > SPP.
"""

from __future__ import annotations

from repro.analysis.tables import render_comparison
from repro.experiments.figures import (
    PAPER_TABLE1_OVERHEAD_PCT,
    table1_probing_overhead,
)


def bench_table1_probing_overhead(benchmark, shared_simulation_sweep):
    result = benchmark.pedantic(
        lambda: table1_probing_overhead(runs=shared_simulation_sweep),
        iterations=1,
        rounds=1,
    )
    print()
    print(render_comparison(
        result.measured, PAPER_TABLE1_OVERHEAD_PCT,
        value_label="overhead %",
        title="Table 1 / probing overhead",
    ))
    benchmark.extra_info["overhead_pct"] = result.measured
    measured = result.measured
    assert measured["ett"] > measured["pp"] > measured["etx"]
    assert measured["etx"] > measured["metx"] > measured["spp"]
    # Pair probing costs roughly 4-5x single probes in the paper.
    assert measured["ett"] / measured["etx"] > 3.0
