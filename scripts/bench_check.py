"""Smoke gate for the parallel runner and the vectorized PHY backend.

Two always-on guards, each failing the script (exit 1) on violation:

1. **Parallel consistency** -- a few-second mini-sweep run serially,
   with a pool of 2 workers, and from the warm disk cache; every pass
   must produce ``RunResult`` rows bit-identical to the serial
   baseline.
2. **Vectorized no-regression** -- the dense-mesh micro benchmark from
   ``benchmarks/bench_perf_engine.py`` run once per reception backend;
   the results must be bit-identical and the vectorized wall time must
   not exceed the scalar wall time by more than a tolerance (10% by
   default, for timer noise on loaded CI hosts).  This is the gate
   that the numpy path stays an optimization, not just an alternative.

The consistency check also runs under pytest as the ``perfsmoke``
marker (``pytest -m perfsmoke``); it is deselected from the default
tier-1 run to keep that fast.

Usage: PYTHONPATH=src python scripts/bench_check.py [--jobs N]
       [--skip-phy] [--phy-tolerance FRAC]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

from repro.experiments.parallel import verify_parallel_consistency

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                    "benchmarks")
)


def check_phy_backends(tolerance: float) -> int:
    from bench_perf_engine import phy_backend_micro

    start = time.perf_counter()
    wall_scalar, wall_vectorized, scalar, vectorized = phy_backend_micro()
    elapsed = time.perf_counter() - start

    if scalar != vectorized:
        print(
            f"bench_check: FAIL ({elapsed:.1f}s) -- scalar and vectorized "
            "backends produced different results",
            file=sys.stderr,
        )
        return 1
    if scalar.error is not None:
        print(
            f"bench_check: FAIL -- micro benchmark errored: {scalar.error}",
            file=sys.stderr,
        )
        return 1
    budget = wall_scalar * (1.0 + tolerance)
    if wall_vectorized > budget:
        print(
            f"bench_check: FAIL ({elapsed:.1f}s) -- vectorized backend is "
            f"slower than scalar: {wall_vectorized:.2f}s vs "
            f"{wall_scalar:.2f}s (budget {budget:.2f}s at "
            f"{tolerance:.0%} tolerance)",
            file=sys.stderr,
        )
        return 1
    speedup = wall_scalar / wall_vectorized if wall_vectorized > 0 else 0.0
    print(
        f"bench_check: OK ({elapsed:.1f}s) -- vectorized backend "
        f"bit-identical and {speedup:.2f}x vs scalar "
        f"({wall_vectorized:.2f}s vs {wall_scalar:.2f}s)"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2,
                        help="pool size for the parallel pass (default 2)")
    parser.add_argument("--skip-phy", action="store_true",
                        help="skip the scalar-vs-vectorized micro gate")
    parser.add_argument("--phy-tolerance", type=float, default=0.10,
                        help="allowed vectorized-over-scalar wall overrun "
                             "(fraction, default 0.10)")
    args = parser.parse_args(argv)

    start = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-bench-check-") as cache:
        divergences = verify_parallel_consistency(
            jobs=args.jobs, cache_dir=cache
        )
    elapsed = time.perf_counter() - start

    if divergences:
        print(f"bench_check: FAIL ({elapsed:.1f}s)", file=sys.stderr)
        for line in divergences:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(
        f"bench_check: OK ({elapsed:.1f}s) -- serial, jobs={args.jobs}, "
        "and warm-cache sweeps are bit-identical"
    )

    if not args.skip_phy:
        return check_phy_backends(args.phy_tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
