"""Discrete-event simulation substrate.

This package is the reproduction's substitute for GloMoSim: a small,
deterministic discrete-event engine with named random-number streams,
timers, periodic tasks, and structured counters.

Public entry points:

* :class:`repro.sim.engine.Simulator` -- the event loop.
* :class:`repro.sim.rng.RngRegistry` -- reproducible named RNG streams.
* :class:`repro.sim.process.PeriodicTask` / :class:`repro.sim.process.Timer`
  -- recurring and one-shot scheduling helpers.
* :class:`repro.sim.trace.CounterSet` -- lightweight metric counters.
"""

from repro.sim.engine import Simulator, SimulationError
from repro.sim.events import Event, EventHandle
from repro.sim.process import PeriodicTask, Timer
from repro.sim.rng import RngRegistry
from repro.sim.trace import CounterSet, TraceRecorder

__all__ = [
    "Simulator",
    "SimulationError",
    "Event",
    "EventHandle",
    "PeriodicTask",
    "Timer",
    "RngRegistry",
    "CounterSet",
    "TraceRecorder",
]
