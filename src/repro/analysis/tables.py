"""ASCII rendering of the paper's tables and figures.

The figures in the paper are bar charts; the reproduction renders the
same series as aligned text tables so the benchmark harness can print
paper-versus-measured rows directly.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as a column-aligned ASCII table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells
        else len(headers[i])
        for i in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in cells:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(columns))
        )
    return "\n".join(lines)


def render_comparison(
    measured: Mapping[str, float],
    paper: Mapping[str, float],
    value_label: str = "normalized value",
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Paper-vs-measured rows for one Figure 2 column or Table 1.

    Protocols present in only one of the mappings get a ``-`` in the
    other column rather than being dropped.
    """
    names = list(dict.fromkeys(list(paper) + list(measured)))
    rows = []
    for name in names:
        measured_text = (
            f"{measured[name]:.{precision}f}" if name in measured else "-"
        )
        paper_text = f"{paper[name]:.{precision}f}" if name in paper else "-"
        rows.append((name, paper_text, measured_text))
    return render_table(
        ("protocol", f"paper {value_label}", f"measured {value_label}"),
        rows,
        title=title,
    )
