"""Perf-smoke gate: mini-sweep parallel/serial/cache equivalence.

Marked ``perfsmoke`` and deselected from the default tier-1 run (see
``addopts`` in pyproject.toml); CI runs it explicitly with
``pytest -m perfsmoke``.  ``scripts/bench_check.py`` is the same gate as
a standalone script.
"""

from __future__ import annotations

import pytest

from repro.experiments.parallel import verify_parallel_consistency


@pytest.mark.perfsmoke
def test_mini_sweep_parallel_matches_serial(tmp_path):
    divergences = verify_parallel_consistency(jobs=2, cache_dir=str(tmp_path))
    assert divergences == [], "\n".join(divergences)
