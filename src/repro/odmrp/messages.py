"""ODMRP wire formats (as payload dataclasses).

``JoinQueryPayload.path_cost`` is the accumulated metric value of the path
the query has traveled so far, in the metric's own units and orientation;
original ODMRP ignores it.  ``prev_hop`` is rewritten at every hop so the
receiver knows which NEIGHBOR_TABLE entry to charge for the last link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class JoinQueryPayload:
    """One hop's view of a JOIN QUERY flood."""

    group_id: int
    source_id: int
    sequence: int  # per-source flood round
    prev_hop: int  # rewritten at each forwarding hop
    hop_count: int
    path_cost: float  # accumulated metric cost source -> prev_hop -> me

    def forwarded(self, prev_hop: int, path_cost: float) -> "JoinQueryPayload":
        """The payload as rebroadcast by ``prev_hop``."""
        return JoinQueryPayload(
            group_id=self.group_id,
            source_id=self.source_id,
            sequence=self.sequence,
            prev_hop=prev_hop,
            hop_count=self.hop_count + 1,
            path_cost=path_cost,
        )


@dataclass(frozen=True)
class JoinReplyEntry:
    """One (source, next hop) row of a JOIN TABLE."""

    source_id: int
    sequence: int
    next_hop: int


@dataclass(frozen=True)
class JoinReplyPayload:
    """A JOIN REPLY: the sender's JOIN TABLE for one group."""

    group_id: int
    sender_id: int
    entries: Tuple[JoinReplyEntry, ...]


@dataclass(frozen=True)
class DataPayload:
    """Multicast data identification (dedup key and delay accounting)."""

    group_id: int
    source_id: int
    sequence: int
