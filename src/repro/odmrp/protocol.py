"""The ODMRP router, original and metric-enhanced.

One :class:`OdmrpRouter` is attached to each node.  Constructing it with
``metric=None`` gives the paper's baseline ("ODMRP"): first-arriving JOIN
QUERY wins, members reply immediately, duplicates are dropped.
Constructing it with a :class:`~repro.core.metrics.RouteMetric` and a
:class:`~repro.probing.neighbor_table.NeighborTable` gives the enhanced
variant of Section 3.1 ("ODMRP_ETX", "ODMRP_SPP", ...):

* every hop charges the arriving JOIN QUERY with the cost of the link it
  arrived on (looked up in the NEIGHBOR_TABLE) before rebroadcasting;
* a member waits ``delta`` after the first query of a flood round,
  accumulating duplicates, and replies along the best-cost one;
* an intermediate node re-forwards a duplicate only when it improves on
  the best cost forwarded so far, and only within ``alpha < delta`` of
  first reception.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.metrics import RouteMetric
from repro.net.node import Node
from repro.net.packet import Packet, PacketKind
from repro.odmrp.config import OdmrpConfig
from repro.odmrp.messages import (
    DataPayload,
    JoinQueryPayload,
    JoinReplyEntry,
    JoinReplyPayload,
)
from repro.odmrp.state import DuplicateCache, ForwardingGroupState, QueryRoundState
from repro.probing.neighbor_table import NeighborTable
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority
from repro.sim.process import PeriodicTask

#: ``on_deliver(packet, payload, receiver_id)`` fires at each member delivery.
DeliverCallback = Callable[[Packet, DataPayload, int], Any]


class _SourceState:
    __slots__ = ("group_id", "query_sequence", "data_sequence", "refresh_task")

    def __init__(self, group_id: int, refresh_task: PeriodicTask) -> None:
        self.group_id = group_id
        self.query_sequence = 0
        self.data_sequence = 0
        self.refresh_task = refresh_task


class OdmrpRouter:
    """ODMRP state machine for one node."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        config: Optional[OdmrpConfig] = None,
        metric: Optional[RouteMetric] = None,
        neighbor_table: Optional[NeighborTable] = None,
        on_deliver: Optional[DeliverCallback] = None,
    ) -> None:
        if metric is not None and neighbor_table is None:
            raise ValueError(
                "metric-enhanced ODMRP needs a NeighborTable for link costs"
            )
        self.sim = sim
        self.node = node
        self.config = config or OdmrpConfig()
        self.metric = metric
        self.neighbor_table = neighbor_table
        self.on_deliver = on_deliver
        self._rng: random.Random = sim.rng.stream(f"odmrp.{node.node_id}")

        self.member_groups: set[int] = set()
        self._sources: Dict[int, _SourceState] = {}
        # Keyed by (group, source, sequence): a node can source
        # several groups, each with its own flood-round numbering.
        self._rounds: Dict[Tuple[int, int, int], QueryRoundState] = {}
        self._replied: DuplicateCache = DuplicateCache()
        self._data_cache: DuplicateCache = DuplicateCache()
        self.forwarding_groups = ForwardingGroupState()

        node.register_handler(PacketKind.JOIN_QUERY, self._on_join_query)
        node.register_handler(PacketKind.JOIN_REPLY, self._on_join_reply)
        node.register_handler(PacketKind.DATA, self._on_data)

    # ------------------------------------------------------------------
    # Application interface

    def join_group(self, group_id: int) -> None:
        """Become a receiver member of ``group_id``."""
        self.member_groups.add(group_id)

    def leave_group(self, group_id: int) -> None:
        self.member_groups.discard(group_id)

    def start_source(self, group_id: int) -> None:
        """Begin periodic JOIN QUERY floods for ``group_id``."""
        if group_id in self._sources:
            return
        task = PeriodicTask(
            self.sim,
            self.config.refresh_interval_s,
            lambda: self._send_query(group_id),
            jitter=0.05,
            rng=self._rng,
            priority=EventPriority.ROUTING,
        )
        self._sources[group_id] = _SourceState(group_id, task)
        task.start(initial_delay=self._rng.uniform(0.0, 0.05))

    def stop_source(self, group_id: int) -> None:
        state = self._sources.pop(group_id, None)
        if state is not None:
            state.refresh_task.stop()

    def send_data(self, group_id: int, size_bytes: int = 512) -> int:
        """Originate one multicast data packet; returns its sequence."""
        source = self._sources.get(group_id)
        if source is None:
            raise ValueError(
                f"node {self.node.node_id} is not a source for group {group_id}"
            )
        source.data_sequence += 1
        payload = DataPayload(
            group_id=group_id,
            source_id=self.node.node_id,
            sequence=source.data_sequence,
        )
        packet = Packet(
            kind=PacketKind.DATA,
            origin=self.node.node_id,
            size_bytes=size_bytes,
            created_at=self.sim.now,
            payload=payload,
        )
        self._data_cache.check_and_add(
            (group_id, self.node.node_id, source.data_sequence)
        )
        self.node.counters.add("odmrp.data_originated")
        self.node.send_broadcast(packet)
        return source.data_sequence

    # ------------------------------------------------------------------
    # JOIN QUERY handling

    def _send_query(self, group_id: int) -> None:
        source = self._sources[group_id]
        source.query_sequence += 1
        payload = JoinQueryPayload(
            group_id=group_id,
            source_id=self.node.node_id,
            sequence=source.query_sequence,
            prev_hop=self.node.node_id,
            hop_count=0,
            path_cost=(
                self.metric.initial_cost() if self.metric is not None else 0.0
            ),
        )
        self.node.counters.add("odmrp.query_originated")
        self._broadcast_query(payload)

    def _broadcast_query(self, payload: JoinQueryPayload) -> None:
        packet = Packet(
            kind=PacketKind.JOIN_QUERY,
            origin=payload.source_id,
            size_bytes=self.config.query_size_bytes,
            created_at=self.sim.now,
            payload=payload,
        )
        self.node.send_broadcast(packet)

    def _on_join_query(
        self, packet: Packet, sender_id: int, rx_power_mw: float
    ) -> None:
        payload: JoinQueryPayload = packet.payload
        if payload.source_id == self.node.node_id:
            return
        now = self.sim.now
        new_cost = self._charge_last_link(payload, sender_id)
        key = (payload.group_id, payload.source_id, payload.sequence)
        state = self._rounds.get(key)
        if state is None:
            state = QueryRoundState(
                group_id=payload.group_id,
                source_id=payload.source_id,
                sequence=payload.sequence,
                first_rx_time=now,
                best_cost=new_cost,
                best_upstream=sender_id,
                best_hop_count=payload.hop_count + 1,
                alpha_deadline=now + self.config.alpha_s,
            )
            self._rounds[key] = state
            self._prune_rounds(
                payload.group_id, payload.source_id, payload.sequence
            )
            if payload.group_id in self.member_groups:
                self._arm_member_reply(state)
            self._consider_query_forward(state)
            return
        if self.metric is None:
            self.node.counters.add("odmrp.query_duplicate_dropped")
            return
        if self.metric.is_better(new_cost, state.best_cost):
            state.best_cost = new_cost
            state.best_upstream = sender_id
            state.best_hop_count = payload.hop_count + 1
            self.node.counters.add("odmrp.query_improved")
            if now <= state.alpha_deadline:
                self._consider_query_forward(state)
        else:
            self.node.counters.add("odmrp.query_duplicate_dropped")

    def _charge_last_link(
        self, payload: JoinQueryPayload, sender_id: int
    ) -> float:
        """Path cost including the link the query just crossed."""
        if self.metric is None:
            return float(payload.hop_count + 1)
        assert self.neighbor_table is not None
        link_cost = self.neighbor_table.link_cost(sender_id, self.metric)
        return self.metric.combine(payload.path_cost, link_cost)

    def _consider_query_forward(self, state: QueryRoundState) -> None:
        if state.forward_pending:
            return  # the pending send will pick up the latest best cost
        if state.last_forwarded_cost is not None:
            if self.metric is None:
                return  # original ODMRP forwards only the first query
            if not self.metric.is_better(
                state.best_cost, state.last_forwarded_cost
            ):
                return
        state.forward_pending = True
        delay = self._rng.uniform(0.0, self.config.query_jitter_s)
        self.sim.schedule(
            delay, self._forward_query, state, priority=EventPriority.ROUTING
        )

    def _forward_query(self, state: QueryRoundState) -> None:
        state.forward_pending = False
        if state.last_forwarded_cost is not None and self.metric is not None:
            if not self.metric.is_better(
                state.best_cost, state.last_forwarded_cost
            ):
                return
        state.last_forwarded_cost = state.best_cost
        payload = JoinQueryPayload(
            group_id=state.group_id,
            source_id=state.source_id,
            sequence=state.sequence,
            prev_hop=self.node.node_id,
            hop_count=state.best_hop_count,
            path_cost=state.best_cost,
        )
        self.node.counters.add("odmrp.query_forwarded")
        self._broadcast_query(payload)

    def _prune_rounds(
        self, group_id: int, source_id: int, sequence: int
    ) -> None:
        """Drop round state older than a few refresh rounds for a flow."""
        horizon = sequence - 4
        if horizon <= 0:
            return
        stale = [
            key
            for key in self._rounds
            if key[0] == group_id and key[1] == source_id
            and key[2] <= horizon
        ]
        for key in stale:
            del self._rounds[key]

    # ------------------------------------------------------------------
    # JOIN REPLY handling

    def _arm_member_reply(self, state: QueryRoundState) -> None:
        state.reply_pending = True
        if self.metric is None:
            # Original ODMRP answers the first query straight away.
            delay = self._rng.uniform(0.0, self.config.reply_jitter_s)
        else:
            # Wait delta to accumulate duplicate queries (Section 3.1).
            delay = self.config.delta_s
        self.sim.schedule(
            delay, self._member_reply, state, priority=EventPriority.ROUTING
        )

    def _member_reply(self, state: QueryRoundState) -> None:
        state.reply_pending = False
        key = (state.group_id, state.source_id, state.sequence)
        if not self._replied.check_and_add(key):
            return
        state.replied = True
        self._send_reply(state)

    def _send_reply(self, state: QueryRoundState) -> None:
        entry = JoinReplyEntry(
            source_id=state.source_id,
            sequence=state.sequence,
            next_hop=state.best_upstream,
        )
        payload = JoinReplyPayload(
            group_id=state.group_id,
            sender_id=self.node.node_id,
            entries=(entry,),
        )
        packet = Packet(
            kind=PacketKind.JOIN_REPLY,
            origin=self.node.node_id,
            size_bytes=self.config.reply_size_bytes(1),
            created_at=self.sim.now,
            payload=payload,
        )
        self.node.counters.add("odmrp.reply_sent")
        self.node.send_broadcast(packet)

    def _on_join_reply(
        self, packet: Packet, sender_id: int, rx_power_mw: float
    ) -> None:
        payload: JoinReplyPayload = packet.payload
        now = self.sim.now
        for entry in payload.entries:
            if entry.next_hop != self.node.node_id:
                continue
            self.forwarding_groups.refresh(
                payload.group_id, now + self.config.fg_timeout_s
            )
            self.node.counters.add("odmrp.fg_refreshed")
            if entry.source_id == self.node.node_id:
                # The reply chain reached the source; the route is complete.
                self.node.counters.add("odmrp.route_established")
                continue
            key = (payload.group_id, entry.source_id, entry.sequence)
            if not self._replied.check_and_add(key):
                continue
            state = self._rounds.get(
                (payload.group_id, entry.source_id, entry.sequence)
            )
            if state is None:
                self.node.counters.add("odmrp.reply_no_route")
                continue
            delay = self._rng.uniform(0.0, self.config.reply_jitter_s)
            self.sim.schedule(
                delay, self._send_reply, state, priority=EventPriority.ROUTING
            )

    # ------------------------------------------------------------------
    # Data handling

    def _on_data(self, packet: Packet, sender_id: int, rx_power_mw: float) -> None:
        payload: DataPayload = packet.payload
        key = (payload.group_id, payload.source_id, payload.sequence)
        if not self._data_cache.check_and_add(key):
            self.node.counters.add("odmrp.data_duplicate")
            return
        # Which link actually carried this packet first -- the raw material
        # for the Figure 5 "heavily used links" tree extraction.
        self.node.counters.add(f"odmrp.data_rx_from.{sender_id}")
        if payload.group_id in self.member_groups:
            self.node.counters.add("odmrp.data_delivered")
            self.node.counters.add("odmrp.data_delivered_bytes", packet.size_bytes)
            if self.on_deliver is not None:
                self.on_deliver(packet, payload, self.node.node_id)
        if self.forwarding_groups.is_active(payload.group_id, self.sim.now):
            self.node.counters.add("odmrp.data_forwarded")
            self.node.send_broadcast(packet.copy_for_forwarding())

    # ------------------------------------------------------------------
    # Introspection (tests, Figure 5 tree extraction)

    def active_forwarding_groups(self) -> list[int]:
        """Group ids this node currently forwards for (telemetry hook)."""
        return self.forwarding_groups.active_groups(self.sim.now)

    def telemetry_snapshot(self) -> Dict[str, float]:
        """Cumulative routing-state sizes for the telemetry sampler."""
        return {
            "member_groups": float(len(self.member_groups)),
            "active_forwarding_groups": float(
                len(self.active_forwarding_groups())
            ),
            "query_rounds_tracked": float(len(self._rounds)),
        }

    def current_upstream(self, source_id: int) -> Optional[int]:
        """Best upstream toward ``source_id`` in the newest known round."""
        newest: Optional[QueryRoundState] = None
        for (_group, src, _seq), state in self._rounds.items():
            if src != source_id:
                continue
            if newest is None or state.sequence > newest.sequence:
                newest = state
        return newest.best_upstream if newest is not None else None

    def is_forwarder(self, group_id: int) -> bool:
        return self.forwarding_groups.is_active(group_id, self.sim.now)

    # ------------------------------------------------------------------
    # Validation hooks (read-only; used by repro.validation monitors)

    def seen_data(self, group_id: int, source_id: int, sequence: int) -> bool:
        """Whether this node has already accepted the identified packet."""
        return (group_id, source_id, sequence) in self._data_cache

    def would_forward_data(self, group_id: int, source_id: int) -> bool:
        """The forwarding decision `_on_data` would take right now.

        ODMRP forwards for any active forwarding group of the packet's
        group; the source id is ignored (mesh, not tree).  MAODV
        overrides this with its per-(group, source) tree membership.
        """
        return self.forwarding_groups.is_active(group_id, self.sim.now)

    def round_upstreams(self) -> Dict[Tuple[int, int, int], int]:
        """(group, source, sequence) -> current best upstream node id."""
        return {
            key: state.best_upstream for key, state in self._rounds.items()
        }

    def fg_expiries(self) -> Dict[int, float]:
        """group -> forwarding-group expiry time (all groups ever seen)."""
        return self.forwarding_groups.expiries()
