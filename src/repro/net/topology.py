"""Node placement generators.

The paper's simulation scenario places 50 static nodes uniformly at random
in a 1000 m x 1000 m area.  ``random_topology`` reproduces that, with an
optional connectivity constraint (a disconnected topology would make
throughput comparisons meaningless, and the paper's results average over
topologies where every receiver is reachable).
"""

from __future__ import annotations

import math
import random
from typing import List, NamedTuple, Optional, Sequence


class Position(NamedTuple):
    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


def random_topology(
    num_nodes: int,
    width_m: float = 1000.0,
    height_m: float = 1000.0,
    rng: Optional[random.Random] = None,
    connectivity_range_m: Optional[float] = 250.0,
    max_attempts: int = 200,
) -> List[Position]:
    """Uniform random placement, resampled until connected.

    Connectivity is checked on the unit-disk graph with radius
    ``connectivity_range_m`` (the nominal no-fading radio range).  Pass
    ``None`` to skip the check.
    """
    if num_nodes <= 0:
        raise ValueError(f"need at least one node, got {num_nodes}")
    if rng is None:
        rng = random.Random(0)
    for _ in range(max_attempts):
        positions = [
            Position(rng.uniform(0.0, width_m), rng.uniform(0.0, height_m))
            for _ in range(num_nodes)
        ]
        if connectivity_range_m is None or is_connected(
            positions, connectivity_range_m
        ):
            return positions
    raise RuntimeError(
        f"could not draw a connected topology of {num_nodes} nodes in "
        f"{width_m}x{height_m} m with range {connectivity_range_m} m "
        f"after {max_attempts} attempts"
    )


def grid_topology(
    rows: int, cols: int, spacing_m: float = 200.0
) -> List[Position]:
    """Regular grid, used by tests and the quickstart example."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    return [
        Position(c * spacing_m, r * spacing_m)
        for r in range(rows)
        for c in range(cols)
    ]


def chain_topology(num_nodes: int, spacing_m: float = 200.0) -> List[Position]:
    """Nodes on a line; the canonical multi-hop unit test topology."""
    if num_nodes <= 0:
        raise ValueError("need at least one node")
    return [Position(i * spacing_m, 0.0) for i in range(num_nodes)]


def neighbors_within(
    positions: Sequence[Position], index: int, range_m: float
) -> List[int]:
    """Indices of nodes within ``range_m`` of node ``index`` (excl. itself)."""
    center = positions[index]
    return [
        i
        for i, pos in enumerate(positions)
        if i != index and center.distance_to(pos) <= range_m
    ]


def is_connected(positions: Sequence[Position], range_m: float) -> bool:
    """True if the unit-disk graph over ``positions`` is connected."""
    n = len(positions)
    if n <= 1:
        return True
    seen = {0}
    frontier = [0]
    while frontier:
        current = frontier.pop()
        for other in neighbors_within(positions, current, range_m):
            if other not in seen:
                seen.add(other)
                frontier.append(other)
    return len(seen) == n


def average_degree(positions: Sequence[Position], range_m: float) -> float:
    """Mean unit-disk degree; a quick density diagnostic for scenarios."""
    if not positions:
        return 0.0
    total = sum(
        len(neighbors_within(positions, i, range_m))
        for i in range(len(positions))
    )
    return total / len(positions)
