"""Benchmarks E1/E2: the analytic metric examples of Figures 1 and 3.

These must match the paper *exactly* -- they are pure metric arithmetic.
The benchmark times the metric evaluation itself (millions of path-cost
folds per second matter for the routing hot path).
"""

from __future__ import annotations

from repro.analysis.tables import render_comparison
from repro.experiments.figures import figure1_metx_vs_spp, figure3_etx_vs_spp


def bench_figure1_metx_vs_spp(benchmark):
    result = benchmark(figure1_metx_vs_spp)
    print()
    print(render_comparison(
        result.measured, result.paper, value_label="path cost",
        title="Figure 1: METX vs 1/SPP on the diamond example",
    ))
    for key, value in result.paper.items():
        assert abs(result.measured[key] - value) < 1e-9
    # The paper's point: the two metrics disagree about the best path.
    assert result.measured["metx_abd"] < result.measured["metx_acd"]
    assert result.measured["inv_spp_acd"] < result.measured["inv_spp_abd"]


def bench_figure3_etx_vs_spp(benchmark):
    result = benchmark(figure3_etx_vs_spp)
    print()
    print(render_comparison(
        result.measured, result.paper, value_label="path cost",
        title="Figure 3: ETX vs SPP, lossy-link avoidance",
    ))
    assert abs(result.measured["etx_abcd"] - 3.75) < 1e-9
    assert abs(result.measured["spp_abcd"] - 0.512) < 1e-9
    # ETX picks the path with the 0.4 link; SPP avoids it.
    assert result.measured["etx_aed"] < result.measured["etx_abcd"]
    assert result.measured["spp_abcd"] > result.measured["spp_aed"]
