"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package
(``python setup.py develop`` needs only setuptools).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
