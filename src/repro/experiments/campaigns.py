"""Fault campaigns: importance-weighted sampling of the FaultPlan space.

The adaptive planner (:mod:`repro.experiments.adaptive`) spends seeds
where the *variance* is.  This module spends them where the *events*
are: the outage storms, regional blackouts, and flapping bursts that
uniform fault sampling almost never draws, yet which decide whether a
metric's paper-claimed gains survive in the field.

Severity model
--------------
Every campaign draw picks a parametric fault *generator* (an
independent outage storm, a correlated disc outage, a flapping burst,
or an intensity ramp) and a scalar severity ``theta`` in (0, 1) that
scales how many nodes it touches and for how long.  Under the
**nominal** fault distribution -- the world whose tail probabilities we
actually want -- severity follows the mild-biased power law

    p(theta) = k * (1 - theta)^(k - 1)        (k = ``nominal_shape``)

so severe schedules are rare, exactly like production outages.  The
planner *samples* from a severe-tilted defensive **mixture** instead,

    q(theta) = a * p(theta) + (1 - a) * l * theta^(l - 1)

with ``l = proposal_shape`` and ``a = DEFENSIVE_MIX``, and attaches the
likelihood ratio ``w = p(theta) / q(theta)`` to each draw.  The nominal
component in the mixture bounds every weight by ``1 / a`` (Hesterberg's
defensive importance sampling), so a single mild draw can never hijack
the self-normalizer no matter how aggressive the severe tilt is.  Self-normalized importance-weighted estimators
(:mod:`repro.analysis.stats`) then recover unbiased nominal-world tail
estimates -- P[delivery < ``tail_fraction`` x fault-free baseline] --
from draws concentrated where the events actually happen, with
effective-sample-size diagnostics keeping the weights honest.
``importance = false`` disables the tilt and samples the nominal
distribution directly (all weights 1.0) -- the vanilla Monte Carlo arm
the benchmark compares against.

Everything that is *structural* about a draw (which nodes, exact window
placement) is sampled identically under both distributions, so those
factors cancel in the weight; only severity is tilted.

Pairing and replay
------------------
Each drawn fault configuration runs against every protocol on the
spec's seeds, preceded by a fault-free common-random-number baseline on
the same seeds: per-(protocol, seed) ratios de-noise the degradation
the same way paired CRN comparisons de-noise protocol deltas.  Draws
are pure functions of ``(master_seed, draw index, seed)`` via
:func:`~repro.sim.rng.derive_seed`, execution routes through the
ordinary executor layer (local-pool / resilient / ``dir://``), and the
planner journals one ``campaign-plan`` record per draw -- generator,
theta, weight, per-seed fault digests -- so ``repro run --campaign
--resume`` replays the identical plan bit for bit.

Sources are never fully silenced: generators trim fault windows on
multicast source nodes so the final ``SOURCE_GUARD_FRACTION`` of the
traffic interval stays up (a fully covered source would measure
nothing; :meth:`FaultPlan.assert_source_uptime` rejects such plans).
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from dataclasses import asdict, dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import (
    mean,
    weight_diagnostics,
    weighted_mean,
    weighted_mean_ci,
    weighted_tail_probability,
    weighted_tail_probability_ci,
)
from repro.experiments.faults import FaultPlan, FlappingSpec, OutageWindow
from repro.experiments.results import RunResult
from repro.sim.rng import RngRegistry, derive_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (spec -> here)
    from repro.experiments.scenarios import SimulationScenarioConfig
    from repro.experiments.spec import ExperimentSpec

#: Journal key prefix for per-draw plan records.  Like the adaptive
#: planner's records these share the run journal (schema 1, unique
#: string keys, so ``compact()`` keeps them) but are invisible to
#: ``SweepJournal.replay()`` -- executors never see them.
CAMPAIGN_PLAN_KEY = "campaign-plan"

#: Fraction of the traffic interval, at its end, during which multicast
#: source nodes are guaranteed up: generator windows on source nodes
#: are clipped to end before this guard starts.
SOURCE_GUARD_FRACTION = 0.25

#: Severity draws are clamped into [EPS, 1 - EPS] so densities and
#: likelihood ratios stay finite at the (measure-zero) endpoints.
_THETA_EPS = 1e-9

#: Defensive-mixture fraction: the proposal draws this share of its
#: severities from the *nominal* distribution and the rest from the
#: severe power law.  A pure severe tilt fails to dominate the nominal
#: near theta = 0, giving the occasional mild draw an unbounded weight
#: that collapses the effective sample size; mixing the nominal back in
#: caps every weight at ``1 / DEFENSIVE_MIX`` while keeping roughly
#: half the draws concentrated where the rare events live.
DEFENSIVE_MIX = 0.5

GENERATOR_KINDS = ("storm", "regional", "flapping", "ramp")


@dataclass
class FaultGeneratorSpec:
    """One parametric fault generator in a campaign's mixture.

    ``weight`` is the generator's relative draw probability.  The
    mixture is identical under the nominal and proposal distributions,
    so generator choice cancels in the importance weight -- only the
    severity tilt contributes.
    """

    #: "storm" (independent per-node outages), "regional" (one disc of
    #: nodes down together), "flapping" (marginal-router bursts), or
    #: "ramp" (outage density rising over the run).
    kind: str = "storm"
    #: Relative probability of drawing this generator.
    weight: float = 1.0
    #: Fraction of the mesh a generator may touch at severity 1.
    max_node_fraction: float = 0.5
    #: Longest single outage at severity 1, as a fraction of the
    #: traffic interval.
    max_outage_fraction: float = 0.6
    #: Flapping period (seconds); only used by ``kind = "flapping"``.
    period_s: float = 8.0
    #: Disc radius at severity 1 as a fraction of the larger area
    #: dimension; only used by ``kind = "regional"``.
    radius_fraction: float = 0.35
    #: Number of rising-intensity segments; only ``kind = "ramp"``.
    ramp_steps: int = 4

    def validate(self) -> "FaultGeneratorSpec":
        if self.kind not in GENERATOR_KINDS:
            raise ValueError(
                f"unknown fault generator kind {self.kind!r}; "
                f"valid kinds: {', '.join(GENERATOR_KINDS)}"
            )
        if not self.weight > 0:
            raise ValueError(
                f"generator weight must be positive, got {self.weight!r}"
            )
        for name in ("max_node_fraction", "max_outage_fraction",
                     "radius_fraction"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(
                    f"generator {name} must lie in (0, 1], got {value!r}"
                )
        if not self.period_s > 0:
            raise ValueError(
                f"generator period_s must be positive, got {self.period_s!r}"
            )
        if not isinstance(self.ramp_steps, int) \
                or isinstance(self.ramp_steps, bool) or self.ramp_steps < 1:
            raise ValueError(
                f"generator ramp_steps must be a positive integer, "
                f"got {self.ramp_steps!r}"
            )
        return self


def default_generators() -> Tuple[FaultGeneratorSpec, ...]:
    """The stock mixture: one generator of every kind, equal weight."""
    return tuple(FaultGeneratorSpec(kind=kind) for kind in GENERATOR_KINDS)


@dataclass
class CampaignConfig:
    """The ``[campaign]`` section of an experiment spec."""

    #: Fault configurations sampled per campaign.
    draws: int = 8
    #: Master seed for the draw streams (generator choice, severity,
    #: per-seed window placement).  The whole plan is a pure function
    #: of this seed plus the spec's scenario config and seed list.
    master_seed: int = 0
    #: Nominal severity shape k: density k(1-theta)^(k-1).  Larger k =
    #: severe faults rarer in the world being estimated.
    nominal_shape: float = 3.0
    #: Severe-component shape l of the defensive mixture proposal:
    #: density l*theta^(l-1), biased toward severe configurations (the
    #: other ``DEFENSIVE_MIX`` of the mixture is the nominal itself).
    #: Only used while ``importance`` is on.
    proposal_shape: float = 3.0
    #: Importance sampling on (draw severities from the proposal,
    #: attach likelihood-ratio weights) or off (draw the nominal
    #: distribution directly, all weights 1.0 -- the vanilla Monte
    #: Carlo arm the benchmark compares against).
    importance: bool = True
    #: Tail event: per-draw relative delivery (faulted / fault-free,
    #: paired per seed) below this fraction.
    tail_fraction: float = 0.5
    #: Verdict baseline protocol; None picks "odmrp" when present, else
    #: registry order (the same rule as report.py / adaptive).
    baseline: Optional[str] = None
    #: Generator mixture; empty = :func:`default_generators`.
    generators: Tuple[FaultGeneratorSpec, ...] = ()

    def __post_init__(self) -> None:
        self.generators = tuple(self.generators)

    def validate(self) -> "CampaignConfig":
        if not isinstance(self.draws, int) or isinstance(self.draws, bool) \
                or self.draws < 1:
            raise ValueError(
                f"campaign.draws must be a positive integer, "
                f"got {self.draws!r}"
            )
        if not isinstance(self.master_seed, int) \
                or isinstance(self.master_seed, bool):
            raise ValueError(
                f"campaign.master_seed must be an integer, "
                f"got {self.master_seed!r}"
            )
        if not self.nominal_shape >= 1.0:
            raise ValueError(
                f"campaign.nominal_shape must be >= 1 (mild-biased power "
                f"law), got {self.nominal_shape!r}"
            )
        if not self.proposal_shape >= 1.0:
            raise ValueError(
                f"campaign.proposal_shape must be >= 1, "
                f"got {self.proposal_shape!r}"
            )
        if not 0.0 < self.tail_fraction < 1.0:
            raise ValueError(
                f"campaign.tail_fraction must lie in (0, 1), "
                f"got {self.tail_fraction!r}"
            )
        for generator in self.generators:
            generator.validate()
        return self

    def resolved_generators(self) -> Tuple[FaultGeneratorSpec, ...]:
        return self.generators or default_generators()


# ----------------------------------------------------------------------
# Severity sampling (pure math; no simulator anywhere near this)


def severity_from_uniform(
    u: float, campaign: CampaignConfig
) -> Tuple[float, float]:
    """Map one uniform draw to ``(theta, importance weight)``.

    Inverse-CDF sampling throughout.  With ``importance`` off the
    nominal CDF ``1 - (1-t)^k`` inverts to ``theta = 1 - (1-u)^(1/k)``
    and the weight is exactly 1.  With it on, ``u`` drives the
    defensive mixture: the first ``DEFENSIVE_MIX`` of uniform space
    samples the nominal component (rescaled ``u`` stays uniform), the
    rest samples the severe power law ``q(t) = l t^(l-1)`` via its CDF
    ``t^l``; the weight is the exact mixture likelihood ratio
    ``p / (a p + (1-a) q)``, which lies in ``(0, 1/a]`` by
    construction.  Theta is clamped to ``[_THETA_EPS, 1 - _THETA_EPS]``
    so both densities stay finite at the endpoints.
    """
    k = campaign.nominal_shape
    if not campaign.importance:
        theta = 1.0 - (1.0 - u) ** (1.0 / k)
        theta = min(max(theta, _THETA_EPS), 1.0 - _THETA_EPS)
        return theta, 1.0
    lam = campaign.proposal_shape
    mix = DEFENSIVE_MIX
    if u < mix:
        theta = 1.0 - (1.0 - u / mix) ** (1.0 / k)
    else:
        theta = ((u - mix) / (1.0 - mix)) ** (1.0 / lam)
    theta = min(max(theta, _THETA_EPS), 1.0 - _THETA_EPS)
    nominal = k * (1.0 - theta) ** (k - 1.0)
    severe = lam * theta ** (lam - 1.0)
    return theta, nominal / (mix * nominal + (1.0 - mix) * severe)


# ----------------------------------------------------------------------
# Fault materialization: (generator, theta, scenario, seed) -> FaultPlan


def _source_ids(config: "SimulationScenarioConfig", seed: int) -> List[int]:
    """The multicast source nodes a run with this seed will draw.

    Mirrors ``build_simulation_scenario``: membership comes from the
    run seed's "membership" stream, so the planner knows the sources
    without building a simulator.
    """
    from repro.traffic.groups import build_group_scenario

    groups = build_group_scenario(
        config.num_nodes,
        config.num_groups,
        config.members_per_group,
        config.sources_per_group,
        rng=RngRegistry(seed).stream("membership"),
    )
    return [source for _gid, source in groups.all_sources()]


def _node_positions(config: "SimulationScenarioConfig", seed: int):
    """The node placement a run with this seed will draw (same stream
    and connectivity constraint as ``build_simulation_scenario``)."""
    from repro.net.topology import random_topology

    return random_topology(
        config.num_nodes,
        config.area_width_m,
        config.area_height_m,
        rng=RngRegistry(seed).stream("topology"),
        connectivity_range_m=config.network.nominal_range_m,
    )


def _protect_sources(
    outages: List[OutageWindow],
    flapping: List[FlappingSpec],
    source_ids: Sequence[int],
    warmup_s: float,
    duration_s: float,
) -> Tuple[Tuple[OutageWindow, ...], Tuple[FlappingSpec, ...]]:
    """Clip faults on source nodes so the guard tail stays up."""
    protected = set(source_ids)
    guard_start = duration_s - SOURCE_GUARD_FRACTION * (duration_s - warmup_s)
    kept_outages = []
    for window in outages:
        if window.node_id in protected:
            if window.start_s >= guard_start:
                continue
            if window.end_s > guard_start:
                window = OutageWindow(
                    window.node_id, window.start_s, guard_start
                )
        kept_outages.append(window)
    kept_flapping = []
    for flap in flapping:
        if flap.node_id in protected:
            if flap.start_s >= guard_start:
                continue
            if flap.until_s > guard_start:
                flap = replace(flap, until_s=guard_start)
        kept_flapping.append(flap)
    return tuple(kept_outages), tuple(kept_flapping)


def materialize_fault_plan(
    generator: FaultGeneratorSpec,
    theta: float,
    config: "SimulationScenarioConfig",
    seed: int,
    rng: random.Random,
) -> FaultPlan:
    """Turn (generator, severity) into a concrete per-seed fault plan.

    All randomness comes from ``rng`` (structural placement -- shared
    by nominal and proposal, so it cancels in the importance weight);
    severity ``theta`` scales node counts, window lengths, and flapping
    duty cycles.  Windows land inside the traffic interval and source
    nodes keep the guard tail up.
    """
    num_nodes = config.num_nodes
    interval = config.duration_s - config.warmup_s
    if interval <= 0:
        return FaultPlan()
    max_victims = max(
        1, min(num_nodes, round(generator.max_node_fraction * num_nodes))
    )
    outages: List[OutageWindow] = []
    flapping: List[FlappingSpec] = []

    def _outage(node_id: int, start_s: float, length_s: float) -> None:
        length_s = max(length_s, 1e-3)
        end_s = min(start_s + length_s, config.duration_s)
        if end_s > start_s:
            outages.append(OutageWindow(node_id, start_s, end_s))

    if generator.kind == "storm":
        victims = rng.sample(
            range(num_nodes), max(1, round(theta * max_victims))
        )
        for victim in victims:
            length = (
                theta * generator.max_outage_fraction * interval
                * rng.uniform(0.5, 1.0)
            )
            start = config.warmup_s + rng.uniform(
                0.0, max(interval - length, 0.0)
            )
            _outage(victim, start, length)
    elif generator.kind == "regional":
        positions = _node_positions(config, seed)
        center_x = rng.uniform(0.0, config.area_width_m)
        center_y = rng.uniform(0.0, config.area_height_m)
        radius = theta * generator.radius_fraction * max(
            config.area_width_m, config.area_height_m
        )
        length = theta * generator.max_outage_fraction * interval
        start = config.warmup_s + rng.uniform(
            0.0, max(interval - length, 0.0)
        )
        for node_id, position in enumerate(positions):
            dx = position.x - center_x
            dy = position.y - center_y
            if math.hypot(dx, dy) <= radius:
                _outage(node_id, start, length)
    elif generator.kind == "flapping":
        victims = rng.sample(
            range(num_nodes), max(1, round(theta * max_victims))
        )
        down_fraction = min(0.9, 0.2 + 0.7 * theta)
        span = max(theta * interval, min(generator.period_s, interval))
        for victim in victims:
            start = config.warmup_s + rng.uniform(
                0.0, max(interval - span, 0.0)
            )
            flapping.append(FlappingSpec(
                node_id=victim,
                start_s=start,
                period_s=generator.period_s,
                down_fraction=down_fraction,
                until_s=min(start + span, config.duration_s),
            ))
    elif generator.kind == "ramp":
        steps = generator.ramp_steps
        segment = interval / steps
        for step in range(steps):
            intensity = theta * (step + 1) / steps
            count = round(intensity * max_victims)
            if count < 1:
                continue
            victims = rng.sample(range(num_nodes), count)
            segment_start = config.warmup_s + step * segment
            for victim in victims:
                length = intensity * segment * rng.uniform(0.5, 1.0)
                start = segment_start + rng.uniform(
                    0.0, max(segment - length, 0.0)
                )
                _outage(victim, start, length)
    else:  # pragma: no cover - validate() rejects unknown kinds
        raise ValueError(f"unknown generator kind {generator.kind!r}")

    protected_outages, protected_flapping = _protect_sources(
        outages, flapping, _source_ids(config, seed),
        config.warmup_s, config.duration_s,
    )
    return FaultPlan(outages=protected_outages, flapping=protected_flapping)


# ----------------------------------------------------------------------
# The campaign plan


def plan_digest(plan: FaultPlan) -> str:
    """Content hash of a fault plan (journal / replay comparisons)."""
    payload = json.dumps(asdict(plan), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class CampaignDraw:
    """One sampled fault configuration, materialized per seed."""

    index: int
    generator: str
    theta: float
    weight: float
    #: seed -> concrete plan that runs on that seed's topology.
    plans: Dict[int, FaultPlan] = field(default_factory=dict)

    def mean_downtime_s(self) -> float:
        """Injected node-seconds of downtime, averaged over seeds."""
        if not self.plans:
            return 0.0
        return mean([
            plan.merged_downtime_s() for plan in self.plans.values()
        ])

    def plan_dict(self) -> Dict[str, object]:
        return {
            "draw": self.index,
            "generator": self.generator,
            "theta": self.theta,
            "weight": self.weight,
            "faults": {
                str(seed): {
                    "digest": plan_digest(plan),
                    **plan.severity_summary(),
                }
                for seed, plan in sorted(self.plans.items())
            },
        }


def draw_campaign(
    campaign: CampaignConfig,
    config: "SimulationScenarioConfig",
    seeds: Sequence[int],
) -> List[CampaignDraw]:
    """Sample the whole campaign plan (no simulation involved).

    Deterministic: draw ``i``'s generator choice and severity come from
    the stream ``campaign.draw.{i}`` of the master seed, and the
    per-seed window placement from ``campaign.draw.{i}.seed.{s}`` -- so
    the plan is a pure function of (campaign, scenario config, seeds)
    and any resume, backend, or cache state reproduces it bit for bit.
    """
    campaign.validate()
    generators = [g.validate() for g in campaign.resolved_generators()]
    weights = [g.weight for g in generators]
    draws: List[CampaignDraw] = []
    for index in range(campaign.draws):
        rng = random.Random(
            derive_seed(campaign.master_seed, f"campaign.draw.{index}")
        )
        generator = rng.choices(generators, weights=weights, k=1)[0]
        theta, weight = severity_from_uniform(rng.random(), campaign)
        plans = {
            seed: materialize_fault_plan(
                generator, theta, config, seed,
                random.Random(derive_seed(
                    campaign.master_seed,
                    f"campaign.draw.{index}.seed.{seed}",
                )),
            )
            for seed in seeds
        }
        draws.append(CampaignDraw(
            index=index,
            generator=generator.kind,
            theta=theta,
            weight=weight,
            plans=plans,
        ))
    return draws


# ----------------------------------------------------------------------
# Result analysis


@dataclass
class ProtocolRobustness:
    """One protocol's campaign verdict row."""

    protocol: str
    #: Fault-free normalized throughput (vs the baseline protocol).
    fault_free_gain: float
    #: Importance-weighted faulted normalized throughput.
    faulted_gain: float
    #: Self-normalized P[relative delivery < tail_fraction].
    tail_probability: float
    tail_ci_low: float
    tail_ci_high: float
    #: Weighted mean relative delivery (faulted / fault-free, paired).
    mean_relative_delivery: float
    ess: float
    failed_runs: int
    #: "survives" | "inverts" | "baseline" | "no-claim".
    verdict: str


@dataclass
class CampaignResult:
    """A finished fault campaign: plan, runs, and weighted estimates."""

    name: str
    baseline: str
    config: CampaignConfig
    seeds: Tuple[int, ...]
    protocols: Tuple[str, ...]
    draws: List[CampaignDraw] = field(default_factory=list)
    baseline_runs: List[RunResult] = field(default_factory=list)
    #: Faulted runs grouped per draw, in draw order.
    draw_runs: List[List[RunResult]] = field(default_factory=list)

    @property
    def runs(self) -> List[RunResult]:
        """Every run the campaign executed (baseline first)."""
        flat = list(self.baseline_runs)
        for runs in self.draw_runs:
            flat.extend(runs)
        return flat

    @property
    def total_runs(self) -> int:
        return len(self.baseline_runs) + sum(
            len(runs) for runs in self.draw_runs
        )

    def weights(self) -> List[float]:
        return [draw.weight for draw in self.draws]

    def weight_diagnostics(self):
        return weight_diagnostics(self.weights())

    def plan_dict(self) -> Dict[str, object]:
        """The sampled plan as JSON-stable primitives.

        The determinism surface: two executions of the same spec --
        any jobs count, cache state, backend, or resume point -- must
        produce equal plan dicts, weights included.
        """
        return {
            "schema": 1,
            "name": self.name,
            "baseline": self.baseline,
            "draws": self.config.draws,
            "master_seed": self.config.master_seed,
            "nominal_shape": self.config.nominal_shape,
            "proposal_shape": self.config.proposal_shape,
            "importance": self.config.importance,
            "tail_fraction": self.config.tail_fraction,
            "seeds": list(self.seeds),
            "protocols": list(self.protocols),
            "generators": [
                asdict(g) for g in self.config.resolved_generators()
            ],
            "plan": [draw.plan_dict() for draw in self.draws],
            "total_runs": self.total_runs,
        }

    # -- paired-CRN lookups -------------------------------------------

    def _baseline_by_cell(self) -> Dict[Tuple[str, int], RunResult]:
        return {
            (run.protocol, run.topology_seed): run
            for run in self.baseline_runs
            if run.error is None
        }

    def fault_free_throughput(self, protocol: str) -> float:
        values = [
            run.throughput_bps for run in self.baseline_runs
            if run.protocol == protocol and run.error is None
        ]
        return mean(values) if values else 0.0

    def relative_delivery(
        self, draw_index: int, protocol: str
    ) -> Optional[float]:
        """Faulted / fault-free delivered packets, paired per seed.

        The common-random-number ratio: numerator and denominator ran
        on the identical topology, membership, and fading, so the ratio
        isolates what the injected faults cost.  ``None`` when no seed
        has both a clean faulted run and a delivering baseline.
        """
        baseline = self._baseline_by_cell()
        ratios = []
        for run in self.draw_runs[draw_index]:
            if run.protocol != protocol or run.error is not None:
                continue
            reference = baseline.get((protocol, run.topology_seed))
            if reference is None or reference.delivered_packets <= 0:
                continue
            ratios.append(
                run.delivered_packets / reference.delivered_packets
            )
        return mean(ratios) if ratios else None

    def _relative_series(
        self, protocol: str
    ) -> Tuple[List[float], List[float]]:
        """Per-draw relative delivery + weights (draws with data)."""
        values, weights = [], []
        for draw in self.draws:
            ratio = self.relative_delivery(draw.index, protocol)
            if ratio is None:
                continue
            values.append(ratio)
            weights.append(draw.weight)
        return values, weights

    def tail_probability(
        self, protocol: str
    ) -> Tuple[float, Tuple[float, float]]:
        """Self-normalized P[relative delivery < tail_fraction] + CI."""
        values, weights = self._relative_series(protocol)
        if not values:
            return 0.0, (0.0, 0.0)
        threshold = self.config.tail_fraction
        probability = weighted_tail_probability(values, weights, threshold)
        return probability, weighted_tail_probability_ci(
            values, weights, threshold
        )

    def mean_relative_delivery(
        self, protocol: str
    ) -> Tuple[float, Tuple[float, float]]:
        """Weighted mean relative delivery under nominal faults + CI."""
        values, weights = self._relative_series(protocol)
        if not values:
            return 0.0, (0.0, 0.0)
        return (
            weighted_mean(values, weights),
            weighted_mean_ci(values, weights),
        )

    def degradation_curve(
        self, protocol: str, buckets: int = 3
    ) -> List[Dict[str, float]]:
        """Relative delivery vs injected downtime, severity-bucketed.

        Draws are sorted by mean injected downtime and split into
        ``buckets`` equal groups; each row reports the bucket's
        downtime range and its *weighted* mean relative delivery --
        the per-metric degradation curve the Robustness report plots
        as a table.
        """
        rows: List[Dict[str, float]] = []
        scored = []
        for draw in self.draws:
            ratio = self.relative_delivery(draw.index, protocol)
            if ratio is None:
                continue
            scored.append((draw.mean_downtime_s(), draw.weight, ratio))
        if not scored:
            return rows
        scored.sort()
        count = min(buckets, len(scored))
        per_bucket = len(scored) / count
        for bucket in range(count):
            chunk = scored[
                round(bucket * per_bucket):round((bucket + 1) * per_bucket)
            ]
            if not chunk:
                continue
            rows.append({
                "downtime_low_s": chunk[0][0],
                "downtime_high_s": chunk[-1][0],
                "draws": float(len(chunk)),
                "relative_delivery": weighted_mean(
                    [ratio for _dt, _w, ratio in chunk],
                    [weight for _dt, weight, ratio in chunk],
                ),
            })
        return rows

    def faulted_gain(self, protocol: str) -> float:
        """Weighted mean of (protocol / baseline-protocol) throughput
        under faults, paired per (draw, seed)."""
        by_cell: Dict[Tuple[int, str, int], RunResult] = {}
        for draw_index, runs in enumerate(self.draw_runs):
            for run in runs:
                if run.error is None:
                    by_cell[(draw_index, run.protocol, run.topology_seed)] \
                        = run
        values, weights = [], []
        for draw in self.draws:
            ratios = []
            for seed in self.seeds:
                mine = by_cell.get((draw.index, protocol, seed))
                base = by_cell.get((draw.index, self.baseline, seed))
                if mine is None or base is None \
                        or base.throughput_bps <= 0:
                    continue
                ratios.append(mine.throughput_bps / base.throughput_bps)
            if ratios:
                values.append(mean(ratios))
                weights.append(draw.weight)
        return weighted_mean(values, weights) if values else 0.0

    def failed_faulted_runs(self, protocol: str) -> int:
        return sum(
            1
            for runs in self.draw_runs
            for run in runs
            if run.protocol == protocol and run.error is not None
        )

    def robustness(self) -> List[ProtocolRobustness]:
        """Per-protocol verdict rows, spec protocol order."""
        baseline_throughput = self.fault_free_throughput(self.baseline)
        diagnostics = self.weight_diagnostics()
        rows: List[ProtocolRobustness] = []
        for protocol in self.protocols:
            fault_free = self.fault_free_throughput(protocol)
            fault_free_gain = (
                fault_free / baseline_throughput
                if baseline_throughput > 0 else 0.0
            )
            faulted_gain = (
                1.0 if protocol == self.baseline
                else self.faulted_gain(protocol)
            )
            probability, (ci_low, ci_high) = self.tail_probability(protocol)
            relative, _ci = self.mean_relative_delivery(protocol)
            if protocol == self.baseline:
                verdict = "baseline"
            elif fault_free_gain <= 1.0:
                verdict = "no-claim"
            elif faulted_gain >= 1.0:
                verdict = "survives"
            else:
                verdict = "inverts"
            rows.append(ProtocolRobustness(
                protocol=protocol,
                fault_free_gain=fault_free_gain,
                faulted_gain=faulted_gain,
                tail_probability=probability,
                tail_ci_low=ci_low,
                tail_ci_high=ci_high,
                mean_relative_delivery=relative,
                ess=diagnostics.ess,
                failed_runs=self.failed_faulted_runs(protocol),
                verdict=verdict,
            ))
        return rows

    def headline(self) -> str:
        """One-line robustness verdict for the report."""
        rows = self.robustness()
        claimed = [r for r in rows if r.verdict in ("survives", "inverts")]
        if not claimed:
            return (
                "No protocol showed a fault-free gain over "
                f"{self.baseline}; nothing to stress."
            )
        survivors = [r.protocol for r in claimed if r.verdict == "survives"]
        inverted = [r.protocol for r in claimed if r.verdict == "inverts"]
        parts = [
            f"{len(survivors)}/{len(claimed)} paper-claimed gains survive "
            f"injected faults"
        ]
        if survivors:
            parts.append(f"survive: {', '.join(survivors)}")
        if inverted:
            parts.append(f"invert: {', '.join(inverted)}")
        return "; ".join(parts) + "."


# ----------------------------------------------------------------------
# Journal plumbing (mirrors the adaptive planner's records)


def _plan_key(name: str, draw_index: int) -> str:
    return f"{CAMPAIGN_PLAN_KEY}:{name}:{draw_index:04d}"


def _append_plan_record(path: str, name: str, draw: CampaignDraw) -> None:
    from repro.experiments.resilience import (
        JOURNAL_SCHEMA_VERSION,
        SweepJournal,
    )

    SweepJournal.append_record(path, {
        "schema": JOURNAL_SCHEMA_VERSION,
        "key": _plan_key(name, draw.index),
        "kind": CAMPAIGN_PLAN_KEY,
        "name": name,
        **draw.plan_dict(),
    })


def replay_campaign_plan(path: str, name: str) -> List[Dict[str, object]]:
    """Read a journal's ``campaign-plan`` records back, draw order.

    Same damage tolerance as the run journal reader: torn or alien
    lines are skipped, the last record per draw key wins.
    """
    from repro.experiments.resilience import JOURNAL_SCHEMA_VERSION

    by_key: Dict[str, Dict[str, object]] = {}
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError:
        return []
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError:
                continue
            if not isinstance(data, dict):
                continue
            if data.get("schema") != JOURNAL_SCHEMA_VERSION:
                continue
            if data.get("kind") != CAMPAIGN_PLAN_KEY:
                continue
            if data.get("name") != name:
                continue
            key = data.get("key")
            if isinstance(key, str):
                by_key[key] = data
    return [by_key[key] for key in sorted(by_key)]


# ----------------------------------------------------------------------
# The campaign executor loop


def run_campaign_experiment(
    spec: "ExperimentSpec",
    progress=None,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    journal_path: Optional[str] = None,
    workers: Optional[int] = None,
) -> CampaignResult:
    """Run ``spec`` as a fault campaign; returns plan, runs, estimates.

    Phase 0 executes the fault-free CRN baseline (every protocol on the
    spec's seeds, the exact cells an exhaustive sweep would run); each
    subsequent phase executes one sampled fault configuration against
    every (protocol, seed) cell with ``config.faults`` replaced by the
    draw's per-seed plan.  Every phase routes through
    :func:`~repro.experiments.executors.create_executor`, so cache,
    resilience, and ``dir://`` behavior match ordinary sweeps --
    distinct fault plans hash to distinct cache keys, and under
    ``dir://`` each draw is published as an incremental sweep
    extension.  After each draw a ``campaign-plan`` record lands in the
    sweep journal (when one is in play): the plan is a pure function of
    the master seed, so ``--resume`` reproduces it bit for bit and the
    journaled records double as a tamper check.
    """
    from repro.experiments.adaptive import (
        default_baseline,
        plan_journal_path,
    )
    from repro.experiments.executors import create_executor
    from repro.experiments.parallel import RunSpec

    spec.validate()
    campaign = (spec.campaign or CampaignConfig()).validate()
    baseline = campaign.baseline or default_baseline(spec.protocols)
    seeds = tuple(spec.seeds)
    draws = draw_campaign(campaign, spec.config, seeds)
    plan_path = plan_journal_path(
        spec, cache_dir=cache_dir, resume=resume, journal_path=journal_path
    )

    def _execute(specs):
        executor = create_executor(
            spec.backend,
            jobs=spec.jobs,
            use_cache=spec.use_cache,
            cache_dir=cache_dir,
            run_timeout_s=spec.run_timeout_s,
            max_retries=spec.max_retries,
            resume=resume,
            journal_path=journal_path,
            workers=workers,
        )
        return executor.execute(specs, progress=progress)

    result = CampaignResult(
        name=spec.name,
        baseline=baseline,
        config=campaign,
        seeds=seeds,
        protocols=tuple(spec.protocols),
        draws=draws,
    )
    baseline_specs = [
        RunSpec(protocol=protocol, config=spec.config, seed=seed)
        for seed in seeds
        for protocol in spec.protocols
    ]
    result.baseline_runs = [
        outcome.result for outcome in _execute(baseline_specs)
    ]
    for draw in draws:
        draw_specs = [
            RunSpec(
                protocol=protocol,
                config=replace(spec.config, faults=draw.plans[seed]),
                seed=seed,
            )
            for seed in seeds
            for protocol in spec.protocols
        ]
        result.draw_runs.append(
            [outcome.result for outcome in _execute(draw_specs)]
        )
        if plan_path is not None:
            _append_plan_record(plan_path, spec.name, draw)
    return result
