"""Tests for the parallel experiment runner and its result cache.

The contract under test: a (protocol, config, seed) triple produces an
identical :class:`RunResult` whether executed inline, in a process pool,
or replayed from the on-disk cache -- and a crashing run annotates
itself instead of killing the sweep.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.parallel import (
    RunSpec,
    cache_load,
    cache_store,
    execute_runs,
    execute_runs_detailed,
    sweep_specs,
    sweep_stale_cache_tmps,
    verify_parallel_consistency,
)
from repro.experiments.results import RunResult, aggregate_runs
from repro.experiments.runner import compare_protocols
from repro.experiments.scenarios import SimulationScenarioConfig

#: Smallest config that still exercises MAC, fading, probing, and ODMRP.
TINY = SimulationScenarioConfig(
    num_nodes=8,
    area_width_m=450.0,
    area_height_m=450.0,
    num_groups=1,
    members_per_group=3,
    duration_s=12.0,
    warmup_s=4.0,
    topology_seed=1,
)


class TestRunSpec:
    def test_cache_key_is_stable_and_seed_sensitive(self):
        a1 = RunSpec("spp", TINY, 1).cache_key()
        a2 = RunSpec("spp", TINY, 1).cache_key()
        b = RunSpec("spp", TINY, 2).cache_key()
        c = RunSpec("etx", TINY, 1).cache_key()
        assert a1 == a2
        assert len({a1, b, c}) == 3

    def test_cache_key_tracks_config_fields(self):
        base = RunSpec("spp", TINY, 1).cache_key()
        tweaked = RunSpec("spp", replace(TINY, rate_pps=21.0), 1).cache_key()
        nested = RunSpec("spp", TINY.with_probing_rate(5.0), 1).cache_key()
        assert base != tweaked
        assert base != nested

    def test_cache_key_ignores_embedded_topology_seed(self):
        """The spec seed wins over whatever seed the config carries."""
        a = RunSpec("spp", replace(TINY, topology_seed=7), 3).cache_key()
        b = RunSpec("spp", replace(TINY, topology_seed=9), 3).cache_key()
        assert a == b


class TestDeterminismAcrossExecutionModes:
    """Satellite: identical RunResult serially, in a pool of 2, and from
    the warm disk cache."""

    def test_serial_pool_and_cache_agree(self, tmp_path):
        specs = sweep_specs(TINY, ("odmrp", "spp"), (1,))
        serial = execute_runs(specs, jobs=1, use_cache=False)
        pooled = execute_runs(specs, jobs=2, use_cache=True,
                              cache_dir=str(tmp_path))
        cached = execute_runs(specs, jobs=1, use_cache=True,
                              cache_dir=str(tmp_path))
        assert serial == pooled
        assert serial == cached
        assert all(run.error is None for run in serial)
        assert serial[0].delivered_packets > 0

    def test_cached_pass_does_not_recompute(self, tmp_path):
        specs = sweep_specs(TINY, ("odmrp",), (1,))
        first = execute_runs_detailed(specs, jobs=1, use_cache=True,
                                      cache_dir=str(tmp_path))
        second = execute_runs_detailed(specs, jobs=1, use_cache=True,
                                       cache_dir=str(tmp_path))
        assert not first[0].from_cache
        assert second[0].from_cache
        assert first[0].result == second[0].result

    def test_compare_protocols_parallel_matches_serial(self, tmp_path):
        serial = compare_protocols(
            TINY, protocols=("odmrp", "spp"), topology_seeds=(1, 2)
        )
        pooled = compare_protocols(
            TINY, protocols=("odmrp", "spp"), topology_seeds=(1, 2),
            jobs=2, use_cache=True, cache_dir=str(tmp_path),
        )
        assert serial == pooled

    def test_verify_helper_reports_no_divergence(self, tmp_path):
        assert verify_parallel_consistency(
            config=TINY, protocols=("odmrp", "spp"), topology_seeds=(1,),
            jobs=2, cache_dir=str(tmp_path),
        ) == []


class TestFailureContainment:
    def test_bad_spec_yields_error_annotated_result_inline(self):
        specs = [
            RunSpec("odmrp", TINY, 1),
            RunSpec("not-a-protocol", TINY, 1),
        ]
        results = execute_runs(specs, jobs=1)
        assert results[0].error is None
        assert results[1].error is not None
        assert "not-a-protocol" in results[1].error
        assert results[1].delivered_packets == 0

    def test_bad_spec_yields_error_annotated_result_in_pool(self):
        specs = [
            RunSpec("not-a-protocol", TINY, 1),
            RunSpec("odmrp", TINY, 1),
        ]
        results = execute_runs(specs, jobs=2)
        assert results[0].error is not None
        assert results[1].error is None
        assert results[1].delivered_packets > 0

    def test_errored_runs_are_never_cached(self, tmp_path):
        spec = RunSpec("not-a-protocol", TINY, 1)
        execute_runs([spec], jobs=1, use_cache=True, cache_dir=str(tmp_path))
        assert cache_load(str(tmp_path), spec) is None

    def test_aggregate_skips_errored_runs(self):
        good = RunResult(
            protocol="spp", topology_seed=1, duration_s=10.0,
            offered_packets=10, expected_deliveries=20,
            delivered_packets=10, delivered_bytes=5120,
            mean_delay_s=0.01, probe_bytes=100.0,
        )
        bad = replace(good, topology_seed=2, delivered_packets=0,
                      delivered_bytes=0, error="boom")
        aggregates = aggregate_runs([good, bad])
        assert aggregates["spp"].runs == 1
        assert aggregates["spp"].mean_delivery_ratio == pytest.approx(0.5)


class TestCachePlumbing:
    def test_round_trip_preserves_every_field(self, tmp_path):
        spec = RunSpec("spp", TINY, 1)
        [outcome] = execute_runs_detailed([spec], jobs=1)
        cache_store(str(tmp_path), spec, outcome.result)
        loaded = cache_load(str(tmp_path), spec)
        assert loaded == outcome.result
        assert loaded.counters == outcome.result.counters

    def test_corrupt_cache_entry_is_a_miss_and_quarantined(self, tmp_path):
        spec = RunSpec("spp", TINY, 1)
        path = tmp_path / f"{spec.cache_key()}.json"
        path.write_text("{not json")
        assert cache_load(str(tmp_path), spec) is None
        # The damaged artifact is moved aside, never silently re-read.
        assert not path.exists()
        assert (tmp_path / f"{spec.cache_key()}.json.corrupt").exists()

    def test_truncated_cache_entry_recovers_on_restore(self, tmp_path):
        """Regression: a truncated artifact (torn write) must behave as
        a miss, and the slot must accept the recomputed result."""
        spec = RunSpec("spp", TINY, 1)
        result = _tiny_result(spec)
        cache_store(str(tmp_path), spec, result)
        path = tmp_path / f"{spec.cache_key()}.json"
        content = path.read_text()
        path.write_text(content[: len(content) // 2])
        assert cache_load(str(tmp_path), spec) is None
        cache_store(str(tmp_path), spec, result)
        assert cache_load(str(tmp_path), spec) == result

    @pytest.mark.parametrize("payload", [
        '"a json string, not an object"',
        '{"schema": 4, "wrong_field": 1}',
    ])
    def test_schema_mismatch_is_quarantined(self, tmp_path, payload):
        spec = RunSpec("spp", TINY, 1)
        path = tmp_path / f"{spec.cache_key()}.json"
        path.write_text(payload)
        assert cache_load(str(tmp_path), spec) is None
        assert (tmp_path / f"{spec.cache_key()}.json.corrupt").exists()

    def test_cache_store_cleans_temp_file_on_error(self, tmp_path,
                                                   monkeypatch):
        import json as json_module

        import repro.experiments.parallel as parallel_module

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(parallel_module.json, "dump", explode)
        spec = RunSpec("spp", TINY, 1)
        with pytest.raises(OSError, match="disk full"):
            cache_store(str(tmp_path), spec, _tiny_result(spec))
        monkeypatch.setattr(parallel_module.json, "dump",
                            json_module.dump)
        assert list(tmp_path.iterdir()) == []  # no orphaned temp

    def test_sweep_stale_cache_tmps(self, tmp_path):
        spec = RunSpec("spp", TINY, 1)
        cache_store(str(tmp_path), spec, _tiny_result(spec))
        entry = tmp_path / f"{spec.cache_key()}.json"
        orphan = tmp_path / f"{spec.cache_key()}.json.tmp.99999"
        orphan.write_text("{torn")
        assert sweep_stale_cache_tmps(str(tmp_path)) == 1
        assert not orphan.exists()
        assert entry.exists()  # real entries are untouched
        assert sweep_stale_cache_tmps(str(tmp_path)) == 0
        assert sweep_stale_cache_tmps(str(tmp_path / "missing")) == 0

    def test_sweep_specs_order_is_seed_major(self):
        specs = sweep_specs(TINY, ("a", "b"), (1, 2))
        assert [(s.seed, s.protocol) for s in specs] == [
            (1, "a"), (1, "b"), (2, "a"), (2, "b"),
        ]


def _tiny_result(spec: RunSpec) -> RunResult:
    return RunResult(
        protocol=spec.protocol, topology_seed=spec.seed, duration_s=1.0,
        offered_packets=10, expected_deliveries=10, delivered_packets=9,
        delivered_bytes=4608, mean_delay_s=0.01, probe_bytes=12.0,
    )


class TestInterruptedPoolShutdown:
    """Satellite: a KeyboardInterrupt escaping the collection loop must
    cancel pending futures and put down live workers -- no orphaned
    simulations grinding on after Ctrl-C."""

    def test_keyboard_interrupt_terminates_pool_workers(
        self, monkeypatch
    ):
        import time
        from concurrent.futures import ProcessPoolExecutor

        import repro.experiments.parallel as parallel_module

        created = []

        class RecordingPool(ProcessPoolExecutor):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                created.append(self)

        monkeypatch.setattr(
            parallel_module, "ProcessPoolExecutor", RecordingPool
        )

        def interrupt_immediately(protocol: str, seed: int) -> None:
            raise KeyboardInterrupt

        specs = sweep_specs(TINY, ("odmrp",), (1, 2, 3, 4))
        with pytest.raises(KeyboardInterrupt):
            execute_runs_detailed(
                specs, jobs=2, progress=interrupt_immediately
            )
        [pool] = created
        procs = list((getattr(pool, "_processes", None) or {}).values())
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and any(
            proc.is_alive() for proc in procs
        ):
            time.sleep(0.05)
        assert not any(proc.is_alive() for proc in procs)
