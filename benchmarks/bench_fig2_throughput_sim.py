"""Benchmark E3: Figure 2 column "Throughput-simulations".

Runs the Section 4.1 scenario for all six protocols over the configured
topologies and prints the normalized-throughput column next to the
paper's.  Shape requirements asserted: every metric beats original
ODMRP, and SPP is at (or tied with) the top.
"""

from __future__ import annotations

from repro.analysis.tables import render_comparison
from repro.experiments.figures import (
    PAPER_THROUGHPUT_SIMULATIONS,
    figure2_throughput_simulations,
)
from benchmarks.conftest import simulation_config, topology_seeds


def bench_fig2_throughput_simulations(benchmark, shared_simulation_sweep):
    result = benchmark.pedantic(
        lambda: figure2_throughput_simulations(runs=shared_simulation_sweep),
        iterations=1,
        rounds=1,
    )
    print()
    print(render_comparison(
        result.measured,
        PAPER_THROUGHPUT_SIMULATIONS,
        title=(
            "Figure 2 / Throughput-simulations "
            f"(config: {simulation_config().num_nodes} nodes, "
            f"{simulation_config().duration_s:.0f}s, "
            f"{len(topology_seeds())} topologies)"
        ),
    ))
    benchmark.extra_info["normalized_throughput"] = result.measured
    measured = result.measured
    for metric in ("ett", "etx", "metx", "pp", "spp"):
        assert measured[metric] > 1.0, (
            f"{metric} should beat original ODMRP (got {measured[metric]:.3f})"
        )
    top = max(m for name, m in measured.items() if name != "odmrp")
    assert measured["spp"] >= 0.95 * top, "SPP should be at/near the top"
    assert measured["ett"] <= measured["spp"], "ETT should trail SPP"
