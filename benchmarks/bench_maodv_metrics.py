"""Benchmark E14 (extension): metrics on a tree-based protocol.

Section 4.3 argues that even when multi-source redundancy shrinks the
metrics' gains over mesh-based ODMRP, "such metrics continue to be
effective in multicast protocols that are tree-based such as MAODV".
This bench runs the MAODV-like router (per-source trees, no forwarding-
group redundancy) with hop-count routing versus SPP routing on the same
scenarios.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.tables import render_table
from repro.experiments.runner import collect_result
from repro.experiments.scenarios import build_simulation_scenario
from repro.maodv.protocol import MaodvRouter
from benchmarks.conftest import simulation_config, topology_seeds


def run_maodv_comparison():
    config = simulation_config()
    totals = {"maodv": 0, "maodv_spp": 0}
    for seed in topology_seeds():
        seeded = replace(config, topology_seed=seed)
        for label, protocol in (("maodv", "odmrp"), ("maodv_spp", "spp")):
            scenario = build_simulation_scenario(
                protocol, seeded, router_class=MaodvRouter
            )
            scenario.run()
            totals[label] += collect_result(scenario).delivered_packets
    return totals


def bench_maodv_with_metrics(benchmark):
    totals = benchmark.pedantic(run_maodv_comparison, iterations=1, rounds=1)
    gain = totals["maodv_spp"] / max(1, totals["maodv"]) - 1.0
    print()
    print(render_table(
        ("protocol", "delivered packets"),
        [(name, str(count)) for name, count in totals.items()],
        title="Tree-based multicast (MAODV-like): hop count vs SPP",
    ))
    print(f"SPP gain over min-hop trees: {gain:+.1%} "
          "(Section 4.3: metrics stay effective on tree protocols)")
    benchmark.extra_info["totals"] = totals
    benchmark.extra_info["spp_gain"] = gain
    assert totals["maodv"] > 0, "baseline trees must deliver traffic"
    assert gain > 0.0, "SPP must improve tree-based multicast"
