"""The shared wireless broadcast medium.

Every transmission is visible to every node whose *mean* received power
clears an audibility cutoff (precomputed once -- nodes are static, per the
mesh-network setting).  For each audible node the channel samples one
fading realization, feeds the power into that node's carrier-sense and
interference bookkeeping, and registers a pending reception if the faded
power is decodable.  At end of transmission each pending reception is
decided by the receiver's SINR rule.

Subclasses can override :meth:`_sampled_power` to replace the
pathloss-times-fading model; the testbed emulation uses this to drive the
same MAC with empirically measured link loss rates.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.net.node import Node
from repro.net.packet import Packet
from repro.phy.fading import FadingModel, NoFading
from repro.phy.propagation import PropagationModel, TwoRayGroundPropagation
from repro.phy.reception import Reception
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority
from repro.sim.trace import CounterSet


class Transmission:
    """One frame in flight."""

    __slots__ = ("sender_id", "packet", "dest_id", "start_time", "end_time",
                 "touched", "notify_sender", "sender")

    def __init__(
        self,
        sender: Node,
        packet: Packet,
        dest_id: int,
        start_time: float,
        end_time: float,
        notify_sender: bool,
    ) -> None:
        self.sender = sender
        self.sender_id = sender.node_id
        self.packet = packet
        self.dest_id = dest_id
        self.start_time = start_time
        self.end_time = end_time
        self.notify_sender = notify_sender
        self.touched: List[Node] = []


class ChannelError(RuntimeError):
    """Raised on physically impossible requests (double transmission)."""


class WirelessChannel:
    """Shared medium connecting a set of static nodes."""

    def __init__(
        self,
        sim: Simulator,
        propagation: Optional[PropagationModel] = None,
        fading: Optional[FadingModel] = None,
        audible_margin_db: float = 10.0,
    ) -> None:
        self.sim = sim
        self.propagation = propagation or TwoRayGroundPropagation()
        self.fading = fading or NoFading()
        self.audible_margin_linear = 10.0 ** (audible_margin_db / 10.0)
        self.nodes: List[Node] = []
        self.counters = CounterSet()
        #: sender id -> [(receiver, mean power, rx threshold)], with the
        #: receiver's decode threshold baked in so the per-transmission
        #: loop never chases ``receiver.params``.
        self._audible: Dict[int, List[Tuple[Node, float, float]]] = {}
        self._fading_rng = sim.rng.stream("phy.fading")
        self._finalized = False
        self._connectivity_cache: Optional[Dict[int, List[int]]] = None
        self._tx_counter_names: Dict[Any, str] = {}
        #: Transmissions currently on the air (begin minus end).  O(1)
        #: bookkeeping so the conservation monitor can assert that power
        #: ledgers and pending receptions drain exactly when this is 0.
        self.transmissions_in_flight = 0
        #: True when the faded power is provably the mean power: NoFading
        #: draws gain 1.0 for every packet and no subclass has replaced
        #: ``_sampled_power``, so the sample (and its virtual dispatch)
        #: can be skipped entirely in ``begin_transmission``.
        self._deterministic_power = False

    # ------------------------------------------------------------------
    # Construction

    def register_node(self, node: Node) -> None:
        if self._finalized:
            raise ChannelError("cannot add nodes after finalize()")
        node.channel = self
        self.nodes.append(node)

    def finalize(self) -> None:
        """Precompute per-sender audibility lists (static topology).

        Re-running ``finalize()`` is the only legal way to change the
        topology, and it invalidates every derived cache (audibility
        lists, the memoized connectivity map).
        """
        self._audible = {}
        for sender in self.nodes:
            audible: List[Tuple[Node, float, float]] = []
            for receiver in self.nodes:
                if receiver is sender:
                    continue
                mean_mw = self.mean_rx_power_mw(sender, receiver)
                cutoff = (
                    receiver.params.carrier_sense_threshold_mw
                    / self.audible_margin_linear
                )
                if mean_mw >= cutoff:
                    audible.append(
                        (receiver, mean_mw, receiver.params.rx_threshold_mw)
                    )
            self._audible[sender.node_id] = audible
        self._connectivity_cache = None
        self._deterministic_power = (
            isinstance(self.fading, NoFading)
            and type(self)._sampled_power is WirelessChannel._sampled_power
        )
        self._finalized = True

    def mean_rx_power_mw(self, sender: Node, receiver: Node) -> float:
        """Mean (un-faded) received power for the sender->receiver link."""
        return self.propagation.rx_power_mw(
            sender.params.tx_power_mw,
            sender.distance_to(receiver),
            sender.params.antenna_gain,
            receiver.params.antenna_gain,
        )

    def audible_neighbors(self, node_id: int) -> List[Tuple[Node, float]]:
        """(neighbor, mean power) pairs audible from ``node_id``."""
        return [
            (receiver, mean_mw)
            for receiver, mean_mw, _threshold in self._audible[node_id]
        ]

    # ------------------------------------------------------------------
    # Transmission lifecycle (called by the MAC)

    def begin_transmission(
        self,
        sender: Node,
        packet: Packet,
        dest_id: int,
        duration_s: float,
        notify_sender: bool = True,
    ) -> Optional[Transmission]:
        if not self._finalized:
            raise ChannelError("channel not finalized; call finalize() first")
        if sender.transmitting:
            if notify_sender:
                raise ChannelError(
                    f"node {sender.node_id} attempted concurrent transmissions"
                )
            # Control frame (ACK) collided with own ongoing tx: drop.
            self.counters.add("channel.ack_dropped_half_duplex")
            return None
        if not sender.active:
            # Radio is down: the frame evaporates, but the MAC must keep
            # cycling, so complete the "transmission" after the airtime.
            self.counters.add("channel.tx_dropped_node_down")
            if notify_sender:
                self.sim.schedule(
                    duration_s,
                    sender.mac.on_tx_complete,
                    priority=EventPriority.PHY,
                )
            return None
        now = self.sim.now
        end_time = now + duration_s
        tx = Transmission(sender, packet, dest_id, now, end_time,
                          notify_sender)
        kind = packet.kind
        counter_name = self._tx_counter_names.get(kind)
        if counter_name is None:
            counter_name = f"channel.tx.{kind.value}"
            self._tx_counter_names[kind] = counter_name
        self.counters.add(counter_name)
        self.transmissions_in_flight += 1
        sender.phy_begin_own_tx()
        deterministic = self._deterministic_power
        touched_append = tx.touched.append
        for receiver, mean_mw, rx_threshold_mw in self._audible[sender.node_id]:
            if not receiver.active:
                continue
            if deterministic:
                power_mw = mean_mw
            else:
                power_mw = self._sampled_power(sender, receiver, mean_mw)
                if power_mw <= 0.0:
                    continue
            receiver.phy_add_power(tx, power_mw)
            touched_append(receiver)
            if not receiver.transmitting and power_mw >= rx_threshold_mw:
                reception = Reception(
                    tx, receiver.node_id, power_mw, now, end_time
                )
                receiver.phy_start_reception(reception)
        self.sim.schedule(
            duration_s, self._end_transmission, tx, priority=EventPriority.PHY
        )
        return tx

    def _sampled_power(
        self, sender: Node, receiver: Node, mean_mw: float
    ) -> float:
        """Fading-sampled instantaneous power for this packet on this link."""
        gain = self.fading.sample_link_gain(
            (sender.node_id, receiver.node_id), self.sim.now, self._fading_rng
        )
        return mean_mw * gain

    def _end_transmission(self, tx: Transmission) -> None:
        self.transmissions_in_flight -= 1
        tx.sender.phy_end_own_tx()
        for receiver in tx.touched:
            receiver.phy_remove_power(tx)
        for receiver in tx.touched:
            receiver.phy_finish_reception(tx, tx.dest_id)
        if tx.notify_sender:
            tx.sender.mac.on_tx_complete()

    # ------------------------------------------------------------------
    # Diagnostics

    def telemetry_snapshot(self) -> Dict[str, float]:
        """Cumulative channel counters (tx per kind, drops) by name.

        Pull-based accessor for the telemetry sampler; the transmission
        path only touches its existing ``CounterSet``.
        """
        return self.counters.as_dict()

    def connectivity_map(self) -> Dict[int, List[int]]:
        """node -> neighbors whose mean power clears the receive threshold.

        Memoized after :meth:`finalize`: the topology is static, so the
        O(n^2) scan happens once no matter how often benches poll it.
        Invalidation rule: only re-running ``finalize()`` (the sole legal
        topology change) clears the memo; callers must treat the returned
        mapping as read-only.
        """
        if self._connectivity_cache is None:
            self._connectivity_cache = {
                sender.node_id: [
                    receiver.node_id
                    for receiver, mean_mw, threshold
                    in self._audible[sender.node_id]
                    if mean_mw >= threshold
                ]
                for sender in self.nodes
            }
        return self._connectivity_cache
