"""Cross-module invariants and conservation properties.

These tests drive randomized traffic through the full stack and assert
physical bookkeeping invariants that any correct channel implementation
must maintain -- the kind of property that catches leaks long before
they show up as wrong throughput numbers.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.network import Network, NetworkConfig
from repro.net.packet import Packet, PacketKind
from repro.net.topology import random_topology
from tests.conftest import link, make_loss_network


def drive_random_traffic(network, num_packets, rng, horizon=20.0):
    for _ in range(num_packets):
        sender = rng.choice(network.nodes)
        at = rng.uniform(0.0, horizon)
        size = rng.randrange(40, 1400)
        network.sim.schedule_at(
            max(at, network.sim.now),
            lambda s=sender, z=size: s.send_broadcast(
                Packet(PacketKind.DATA, s.node_id, z, network.sim.now)
            ),
        )


class TestChannelConservation:
    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=15)
    def test_power_and_receptions_drain_after_quiescence(self, seed):
        """After all transmissions end, every node's interference ledger
        and pending-reception table must be empty."""
        rng = random.Random(seed)
        positions = random_topology(
            8, 600.0, 600.0, rng=rng, connectivity_range_m=None
        )
        network = Network(
            positions, seed=seed, config=NetworkConfig(rayleigh_fading=True)
        )
        for node in network.nodes:
            node.register_handler(PacketKind.DATA, lambda p, s, pw: None)
        drive_random_traffic(network, 30, rng)
        network.run(60.0)
        for node in network.nodes:
            assert node.current_power_mw == pytest.approx(0.0, abs=1e-18), (
                f"node {node.node_id} leaked power"
            )
            assert not node.pending_receptions, (
                f"node {node.node_id} leaked receptions"
            )
            assert not node.transmitting
            assert not node.medium_busy

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=10)
    def test_receptions_never_exceed_transmissions(self, seed):
        rng = random.Random(seed)
        network = make_loss_network(
            4,
            {link(0, 1): 0.2, link(1, 2): 0.2, link(2, 3): 0.2,
             link(0, 2): 0.5},
            seed=seed,
        )
        for node in network.nodes:
            node.register_handler(PacketKind.DATA, lambda p, s, pw: None)
        drive_random_traffic(network, 40, rng)
        network.run(60.0)
        total_tx = network.total_counter("tx.data.packets")
        total_rx = network.total_counter("rx.data.packets")
        # Each broadcast reaches at most (neighbors) receivers; with at
        # most 3 neighbors per node here, rx <= 3 * tx.
        assert total_rx <= 3 * total_tx

    def test_event_count_monotonic_and_time_monotonic(self):
        network = make_loss_network(3, {link(0, 1): 0.0, link(1, 2): 0.0})
        times = []

        def observe():
            times.append(network.sim.now)

        for i in range(50):
            network.sim.schedule(i * 0.1, observe)
        network.run(10.0)
        assert times == sorted(times)
        assert network.sim.events_executed >= 50


class TestCountersConsistency:
    def test_tx_bytes_match_packet_sizes(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        sizes = [100, 200, 300]
        for size in sizes:
            network.nodes[0].send_broadcast(
                Packet(PacketKind.DATA, 0, size, 0.0)
            )
        network.run(1.0)
        assert network.nodes[0].counters.get("tx.data.bytes") == sum(sizes)
        assert network.nodes[1].counters.get("rx.data.bytes") == sum(sizes)

    def test_phy_outcomes_partition_receptions(self):
        """Every candidate reception ends as ok, weak, collision, or
        half-duplex -- and their sum matches delivered + failed."""
        rng = random.Random(5)
        network = make_loss_network(
            4,
            {link(0, 1): 0.3, link(1, 2): 0.3, link(2, 3): 0.3},
            seed=5,
        )
        for node in network.nodes:
            node.register_handler(PacketKind.DATA, lambda p, s, pw: None)
        drive_random_traffic(network, 60, rng)
        network.run(60.0)
        ok = network.total_counter("phy.rx_ok")
        rx_packets = network.total_counter("rx.data.packets")
        # Every delivered packet decoded at the PHY first.
        assert rx_packets <= ok + 1e-9


class TestScenarioDeterminism:
    def test_identical_runs_identical_counters(self):
        from repro.experiments.runner import run_protocol
        from repro.experiments.scenarios import SimulationScenarioConfig

        config = SimulationScenarioConfig(
            num_nodes=14, area_width_m=600.0, area_height_m=600.0,
            duration_s=40.0, warmup_s=10.0,
            members_per_group=3, num_groups=1, topology_seed=8,
        )
        a = run_protocol("etx", config)
        b = run_protocol("etx", config)
        assert a.counters == b.counters
        assert a.delivered_packets == b.delivered_packets

    def test_different_protocols_share_offered_load(self):
        from repro.experiments.runner import run_protocol
        from repro.experiments.scenarios import SimulationScenarioConfig

        config = SimulationScenarioConfig(
            num_nodes=14, area_width_m=600.0, area_height_m=600.0,
            duration_s=40.0, warmup_s=10.0,
            members_per_group=3, num_groups=1, topology_seed=8,
        )
        results = [run_protocol(p, config) for p in ("odmrp", "spp")]
        # CBR phase draws come from per-source streams; the offered load
        # must be identical across protocol variants.
        assert results[0].offered_packets == results[1].offered_packets
