"""Tests for frame timing and the CSMA/CA MAC.

The load-bearing behaviour for the paper: broadcast frames get exactly
one attempt with no ACK, unicast frames are ACKed and retried -- the
asymmetry Section 2.1 builds the metric adaptations on.
"""

from __future__ import annotations

import pytest

from repro.mac.csma import BROADCAST_ID, CsmaMac, MacConfig
from repro.mac.frames import (
    ACK_FRAME_BYTES,
    MAC_DATA_HEADER_BYTES,
    FrameTimings,
    ack_airtime_s,
    frame_airtime_s,
)
from repro.net.packet import Packet, PacketKind
from tests.conftest import link, make_chain_network, make_loss_network


class TestFrameTimings:
    def test_difs_is_sifs_plus_two_slots(self):
        timings = FrameTimings()
        assert timings.difs_s == pytest.approx(
            timings.sifs_s + 2 * timings.slot_time_s
        )

    def test_airtime_formula(self):
        # 512 B payload + 34 B header at 2 Mbps plus 192 us preamble.
        expected = 192e-6 + (512 + MAC_DATA_HEADER_BYTES) * 8 / 2e6
        assert frame_airtime_s(512, 2e6) == pytest.approx(expected)

    def test_airtime_scales_inverse_with_rate(self):
        slow = frame_airtime_s(1000, 1e6, preamble_duration_s=0.0)
        fast = frame_airtime_s(1000, 2e6, preamble_duration_s=0.0)
        assert slow == pytest.approx(2 * fast)

    def test_ack_airtime(self):
        assert ack_airtime_s(2e6) == pytest.approx(
            192e-6 + ACK_FRAME_BYTES * 8 / 2e6
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            frame_airtime_s(-1, 2e6)
        with pytest.raises(ValueError):
            frame_airtime_s(100, 0.0)


class TestBroadcast:
    def test_single_attempt_no_retry(self):
        """Broadcast over a 100% lossy link: exactly one transmission."""
        network = make_loss_network(2, {link(0, 1): 1.0})
        node = network.nodes[0]
        outcomes = []
        node.send_broadcast(
            Packet(PacketKind.DATA, 0, 100, 0.0), on_done=outcomes.append
        )
        network.run(1.0)
        assert node.mac.frames_sent == 1
        assert node.mac.retransmissions == 0
        # Broadcast "success" means it went on the air, not delivery.
        assert outcomes == [True]

    def test_queue_drains_in_order(self):
        network = make_chain_network(2, 100.0)
        received = []
        network.nodes[1].register_handler(
            PacketKind.DATA, lambda p, s, pw: received.append(p.payload)
        )
        for i in range(5):
            network.nodes[0].send_broadcast(
                Packet(PacketKind.DATA, 0, 100, 0.0, payload=i)
            )
        network.run(1.0)
        assert received == [0, 1, 2, 3, 4]

    def test_queue_limit_drops(self):
        network = make_chain_network(2, 100.0)
        node = network.nodes[0]
        node.mac.config.queue_limit = 3
        results = []
        # The first frame goes straight into service, so capacity is the
        # queue limit plus the frame on the air: 4 accepted, 2 dropped.
        for i in range(6):
            node.send_broadcast(
                Packet(PacketKind.DATA, 0, 100, 0.0),
                on_done=results.append,
            )
        network.run(1.0)
        assert node.mac.frames_dropped_queue == 2
        assert results.count(False) == 2
        assert results.count(True) == 4

    def test_contenders_serialize_when_in_sense_range(self):
        """Two senders that sense each other never overlap frames."""
        network = make_chain_network(3, 100.0)  # everyone senses everyone
        received = []
        network.nodes[2].register_handler(
            PacketKind.DATA, lambda p, s, pw: received.append(s)
        )
        network.nodes[0].send_broadcast(Packet(PacketKind.DATA, 0, 800, 0.0))
        network.nodes[1].send_broadcast(Packet(PacketKind.DATA, 1, 800, 0.0))
        network.run(1.0)
        assert sorted(received) == [0, 1]
        assert network.nodes[2].counters.get("phy.rx_failed_collision") == 0


class TestUnicast:
    def test_delivery_with_ack(self):
        network = make_chain_network(2, 100.0)
        received = []
        network.nodes[1].register_handler(
            PacketKind.DATA, lambda p, s, pw: received.append(p.uid)
        )
        outcomes = []
        packet = Packet(PacketKind.DATA, 0, 200, 0.0)
        network.nodes[0].send_unicast(packet, 1, on_done=outcomes.append)
        network.run(1.0)
        assert received == [packet.uid]
        assert outcomes == [True]
        assert network.nodes[0].mac.retransmissions == 0

    def test_retries_recover_from_loss(self):
        """50% lossy link: unicast retries until the frame (and its ACK)
        get through -- the reliability broadcast lacks."""
        network = make_loss_network(2, {link(0, 1): 0.5})
        delivered = []
        network.nodes[1].register_handler(
            PacketKind.DATA, lambda p, s, pw: delivered.append(p.uid)
        )
        outcomes = []
        for i in range(20):
            network.nodes[0].send_unicast(
                Packet(PacketKind.DATA, 0, 200, 0.0), 1,
                on_done=outcomes.append,
            )
        network.run(30.0)
        successes = outcomes.count(True)
        # Per-attempt success ~ 0.25 (frame AND ack), but 8 attempts give
        # ~90% per-packet delivery; broadcast would sit at ~50%.
        assert successes >= 15
        assert network.nodes[0].mac.retransmissions > 0

    def test_retry_limit_gives_up(self):
        network = make_loss_network(2, {link(0, 1): 1.0})
        outcomes = []
        network.nodes[0].send_unicast(
            Packet(PacketKind.DATA, 0, 100, 0.0), 1, on_done=outcomes.append
        )
        network.run(10.0)
        assert outcomes == [False]
        timings = network.nodes[0].mac.config.timings
        assert network.nodes[0].mac.frames_sent == timings.retry_limit + 1
        assert network.nodes[0].mac.frames_dropped_retry == 1

    def test_unicast_not_delivered_to_third_party(self):
        network = make_chain_network(3, 100.0)
        wrong = []
        network.nodes[2].register_handler(
            PacketKind.DATA, lambda p, s, pw: wrong.append(s)
        )
        network.nodes[0].send_unicast(Packet(PacketKind.DATA, 0, 100, 0.0), 1)
        network.run(1.0)
        assert wrong == []
        # It was overheard at PHY level but filtered by destination.
        assert network.nodes[2].counters.get("phy.rx_overheard") >= 1


class TestBroadcastVsUnicastAsymmetry:
    def test_paper_section_2_1(self):
        """On the same 40% lossy link, unicast delivers far more than
        broadcast -- the fundamental difference of Section 2.1."""
        results = {}
        for mode in ("broadcast", "unicast"):
            network = make_loss_network(2, {link(0, 1): 0.4}, seed=3)
            count = 0

            def on_rx(p, s, pw):
                nonlocal count
                count += 1

            network.nodes[1].register_handler(PacketKind.DATA, on_rx)
            for i in range(200):
                packet = Packet(PacketKind.DATA, 0, 100, 0.0)
                if mode == "broadcast":
                    network.sim.schedule(
                        i * 0.05,
                        network.nodes[0].send_broadcast, packet,
                    )
                else:
                    network.sim.schedule(
                        i * 0.05,
                        lambda pk=packet: network.nodes[0].send_unicast(pk, 1),
                    )
            network.run(30.0)
            results[mode] = count
        assert results["broadcast"] < 150  # ~60% of 200
        assert results["unicast"] > 190  # retries push it near 100%
