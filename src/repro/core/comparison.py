"""Path selection and result-normalization helpers.

``best_path`` / ``rank_paths`` apply a metric's ordering to candidate
paths; ``normalize_against`` produces the "normalized value" columns of
Figure 2 (every protocol variant divided by the original-ODMRP baseline).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple, TypeVar

from repro.core.metrics import RouteMetric

PathT = TypeVar("PathT")


def best_path(
    metric: RouteMetric, candidates: Mapping[PathT, float]
) -> Optional[PathT]:
    """The candidate with the best usable cost; None if none is usable.

    Ties keep the first-seen candidate (insertion order), matching the
    protocol behaviour where the earliest JOIN QUERY wins among equals.
    """
    best: Optional[PathT] = None
    best_cost = metric.worst_cost()
    for candidate, cost in candidates.items():
        if not metric.is_usable(cost):
            continue
        if best is None or metric.is_better(cost, best_cost):
            best = candidate
            best_cost = cost
    return best


def rank_paths(
    metric: RouteMetric, candidates: Mapping[PathT, float]
) -> Sequence[Tuple[PathT, float]]:
    """Candidates sorted best-first under the metric (unusable paths last)."""

    def sort_key(item: Tuple[PathT, float]) -> Tuple[int, float]:
        _, cost = item
        usable = 0 if metric.is_usable(cost) else 1
        oriented = -cost if metric.higher_is_better else cost
        return (usable, oriented)

    return sorted(candidates.items(), key=sort_key)


def normalize_against(
    values: Mapping[str, float], baseline_key: str
) -> Dict[str, float]:
    """Divide every value by the baseline's (Figure 2's normalization).

    Raises if the baseline is missing or zero -- a zero baseline means the
    experiment produced no traffic and normalizing would hide the bug.
    """
    if baseline_key not in values:
        raise KeyError(f"baseline {baseline_key!r} missing from results")
    baseline = values[baseline_key]
    if baseline == 0:
        raise ValueError(
            f"baseline {baseline_key!r} is zero; cannot normalize"
        )
    return {key: value / baseline for key, value in values.items()}
