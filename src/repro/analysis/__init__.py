"""Statistics helpers and ASCII table rendering for experiment output."""

from repro.analysis.charts import (
    render_bar_chart,
    render_grouped_chart,
    render_sparkline,
)
from repro.analysis.stats import confidence_interval_95, mean, stddev
from repro.analysis.tables import render_comparison, render_table

__all__ = [
    "mean",
    "stddev",
    "confidence_interval_95",
    "render_table",
    "render_comparison",
    "render_bar_chart",
    "render_grouped_chart",
    "render_sparkline",
]
