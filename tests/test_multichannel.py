"""Tests for the multi-radio / multi-channel extension (future work)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.multichannel.assignment import (
    ChannelAssignment,
    alternating_assignment,
    assignment_connectivity,
    coloring_assignment,
    single_channel_assignment,
)
from repro.multichannel.study import (
    run_path_selection_study,
    sample_mesh,
)
from repro.multichannel.wcett import (
    HopEtt,
    bottleneck_channel_airtime,
    mc_wcett,
    path_ett_sum,
    per_channel_airtime,
    wcett,
)


def hops(*pairs):
    return [HopEtt(ett_s=ett, channel=ch) for ett, ch in pairs]


class TestWcett:
    def test_single_channel_reduces_to_ett_sum(self):
        """With every hop on one channel, max_j X_j equals the sum, so
        WCETT equals plain ETT for any beta."""
        path = hops((0.002, 0), (0.003, 0), (0.001, 0))
        for beta in (0.0, 0.3, 1.0):
            assert wcett(path, beta) == pytest.approx(path_ett_sum(path))

    def test_beta_zero_is_ett_sum(self):
        path = hops((0.002, 0), (0.003, 1))
        assert wcett(path, beta=0.0) == pytest.approx(0.005)

    def test_beta_one_is_bottleneck(self):
        path = hops((0.002, 0), (0.003, 1), (0.002, 1))
        assert wcett(path, beta=1.0) == pytest.approx(0.005)

    def test_per_channel_airtime(self):
        path = hops((0.002, 0), (0.003, 1), (0.002, 1))
        assert per_channel_airtime(path) == {0: 0.002, 1: pytest.approx(0.005)}
        assert bottleneck_channel_airtime(path) == pytest.approx(0.005)
        assert bottleneck_channel_airtime([]) == 0.0

    def test_channel_diverse_path_scores_better(self):
        """Equal total airtime; the diverse path wins for any beta > 0."""
        same = hops((0.002, 0), (0.002, 0))
        diverse = hops((0.002, 0), (0.002, 1))
        assert wcett(diverse, 0.5) < wcett(same, 0.5)
        assert wcett(diverse, 0.0) == pytest.approx(wcett(same, 0.0))

    def test_mc_wcett_same_combination(self):
        path = hops((0.004, 0), (0.002, 1))
        assert mc_wcett(path, 0.4) == pytest.approx(wcett(path, 0.4))

    def test_validation(self):
        with pytest.raises(ValueError):
            HopEtt(ett_s=-1.0, channel=0)
        with pytest.raises(ValueError):
            HopEtt(ett_s=1.0, channel=-1)
        with pytest.raises(ValueError):
            wcett(hops((0.001, 0)), beta=1.5)

    @given(
        etts=st.lists(
            st.floats(min_value=1e-4, max_value=0.1), min_size=1, max_size=8
        ),
        channels=st.lists(st.integers(min_value=0, max_value=2), min_size=8,
                          max_size=8),
        beta=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_wcett_bounded_by_components(self, etts, channels, beta):
        path = [
            HopEtt(ett, channels[i]) for i, ett in enumerate(etts)
        ]
        total = path_ett_sum(path)
        bottleneck = bottleneck_channel_airtime(path)
        value = wcett(path, beta)
        assert bottleneck - 1e-12 <= total + 1e-12
        assert min(bottleneck, total) - 1e-9 <= value <= total + 1e-9


class TestAssignments:
    def test_single_channel(self):
        assignment = single_channel_assignment([0, 1, 2])
        assert assignment.shared_channels(0, 1) == (0,)
        assert assignment.link_channel(1, 2) == 0

    def test_alternating_shares_channels(self):
        assignment = alternating_assignment(
            list(range(6)), num_channels=3, radios_per_node=2
        )
        for node in range(5):
            assert assignment.channels_of(node)
        # Adjacent ids always share (consecutive windows overlap).
        assert assignment.shared_channels(0, 1)

    def test_alternating_validation(self):
        with pytest.raises(ValueError):
            alternating_assignment([0], num_channels=2, radios_per_node=3)

    def test_assignment_validation(self):
        with pytest.raises(ValueError):
            ChannelAssignment(num_channels=0)
        with pytest.raises(ValueError):
            ChannelAssignment(num_channels=2, radios_by_node={0: (0, 5)})
        with pytest.raises(ValueError):
            ChannelAssignment(num_channels=2, radios_by_node={0: (1, 1)})

    def test_coloring_keeps_mesh_connected(self):
        links = [
            frozenset(pair)
            for pair in ((0, 1), (1, 2), (2, 3), (3, 0), (1, 3))
        ]
        assignment = coloring_assignment(
            links, num_channels=3, radios_per_node=2
        )
        assert assignment_connectivity(links, assignment) == 1.0

    def test_coloring_diversifies_adjacent_links(self):
        """A chain's consecutive links should land on different channels."""
        links = [frozenset((i, i + 1)) for i in range(5)]
        assignment = coloring_assignment(
            links, num_channels=3, radios_per_node=3
        )
        channels = [
            assignment.link_channel(i, i + 1) for i in range(5)
        ]
        assert all(c is not None for c in channels)
        diverse = sum(
            1 for a, b in zip(channels, channels[1:]) if a != b
        )
        assert diverse >= 3

    def test_connectivity_metric_empty(self):
        assignment = single_channel_assignment([0])
        assert assignment_connectivity([], assignment) == 1.0


class TestStudy:
    def test_sample_mesh_structure(self):
        mesh = sample_mesh(
            12,
            lambda node_ids, links, rng: single_channel_assignment(node_ids),
            rng=random.Random(2),
        )
        assert len(mesh.positions) == 12
        assert mesh.links
        for key in mesh.links:
            assert mesh.ett_by_link[key] > 0
        a, b = tuple(mesh.links[0])
        hop = mesh.hop(a, b)
        assert hop is not None and hop.channel == 0

    def test_path_hops_rejects_missing_links(self):
        mesh = sample_mesh(
            10,
            lambda node_ids, links, rng: single_channel_assignment(node_ids),
            rng=random.Random(3),
        )
        # A fake path over a non-link must return None.
        non_neighbors = None
        n = len(mesh.positions)
        for i in range(n):
            for j in range(i + 1, n):
                if frozenset((i, j)) not in mesh.ett_by_link:
                    non_neighbors = (i, j)
                    break
            if non_neighbors:
                break
        if non_neighbors:
            assert mesh.path_hops(list(non_neighbors)) is None

    def test_study_single_channel_never_improves(self):
        """With one channel, WCETT == ETT: zero improvements possible."""
        result = run_path_selection_study(
            num_meshes=2,
            num_nodes=14,
            pairs_per_mesh=4,
            assignment_factory=(
                lambda node_ids, links, rng: single_channel_assignment(node_ids)
            ),
            seed=5,
        )
        assert result.pairs_evaluated > 0
        assert result.wcett_improved == 0
        assert result.mean_bottleneck_reduction_pct == pytest.approx(0.0)

    def test_study_multichannel_finds_improvements(self):
        result = run_path_selection_study(
            num_meshes=3, num_nodes=18, pairs_per_mesh=6, seed=1
        )
        assert result.pairs_evaluated > 10
        assert result.wcett_improved > 0
        assert result.mean_bottleneck_reduction_pct > 0.0
        assert 0.0 <= result.improvement_rate <= 1.0

    def test_beta_zero_matches_ett_choice(self):
        result = run_path_selection_study(
            num_meshes=2, num_nodes=14, pairs_per_mesh=4, beta=0.0, seed=2
        )
        for choice in result.choices:
            assert choice.wcett_total_s <= choice.ett_total_s + 1e-12
