"""Multicast group scenarios.

``build_group_scenario`` draws the paper's simulation membership: a given
number of groups, each with a source set and a member set, all distinct
nodes drawn without replacement so no node plays two roles in one group.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class GroupSpec:
    """One multicast group: who sends, who listens."""

    group_id: int
    source_ids: Tuple[int, ...]
    member_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        overlap = set(self.source_ids) & set(self.member_ids)
        if overlap:
            raise ValueError(
                f"group {self.group_id}: nodes {sorted(overlap)} are both "
                "source and member"
            )


@dataclass(frozen=True)
class GroupScenario:
    """A full membership assignment over a node population."""

    groups: Tuple[GroupSpec, ...]

    def all_sources(self) -> List[Tuple[int, int]]:
        """(group_id, source_id) pairs across all groups."""
        return [
            (group.group_id, source)
            for group in self.groups
            for source in group.source_ids
        ]

    def all_members(self) -> List[Tuple[int, int]]:
        """(group_id, member_id) pairs across all groups."""
        return [
            (group.group_id, member)
            for group in self.groups
            for member in group.member_ids
        ]

    def expected_deliveries_per_packet(self, group_id: int) -> int:
        """How many member deliveries one source packet should produce."""
        for group in self.groups:
            if group.group_id == group_id:
                return len(group.member_ids)
        raise KeyError(f"no group {group_id} in scenario")


def build_group_scenario(
    num_nodes: int,
    num_groups: int = 2,
    members_per_group: int = 10,
    sources_per_group: int = 1,
    rng: random.Random | None = None,
) -> GroupScenario:
    """Draw a random membership assignment (the paper's Section 4.1 shape).

    Sources and members of the *same* group never coincide; nodes may
    participate in multiple groups, as in the paper (with 2 groups x 10
    members over 50 nodes, overlap across groups is possible and
    harmless).
    """
    if rng is None:
        rng = random.Random(0)
    per_group = members_per_group + sources_per_group
    if per_group > num_nodes:
        raise ValueError(
            f"group needs {per_group} distinct nodes but only "
            f"{num_nodes} exist"
        )
    groups = []
    for group_index in range(num_groups):
        chosen = rng.sample(range(num_nodes), per_group)
        sources = tuple(chosen[:sources_per_group])
        members = tuple(chosen[sources_per_group:])
        groups.append(
            GroupSpec(
                group_id=group_index + 1,
                source_ids=sources,
                member_ids=members,
            )
        )
    return GroupScenario(groups=tuple(groups))
