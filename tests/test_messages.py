"""Tests for ODMRP wire formats and config derivations."""

from __future__ import annotations

import pytest

from repro.odmrp.messages import (
    DataPayload,
    JoinQueryPayload,
    JoinReplyEntry,
    JoinReplyPayload,
)


class TestJoinQueryPayload:
    def base(self) -> JoinQueryPayload:
        return JoinQueryPayload(
            group_id=1,
            source_id=7,
            sequence=3,
            prev_hop=7,
            hop_count=0,
            path_cost=1.0,
        )

    def test_forwarded_rewrites_hop_fields_only(self):
        payload = self.base()
        forwarded = payload.forwarded(prev_hop=4, path_cost=0.8)
        assert forwarded.prev_hop == 4
        assert forwarded.path_cost == 0.8
        assert forwarded.hop_count == 1
        assert forwarded.group_id == payload.group_id
        assert forwarded.source_id == payload.source_id
        assert forwarded.sequence == payload.sequence

    def test_forwarded_chains(self):
        payload = self.base()
        twice = payload.forwarded(4, 0.8).forwarded(9, 0.6)
        assert twice.hop_count == 2
        assert twice.prev_hop == 9

    def test_immutability(self):
        payload = self.base()
        with pytest.raises(AttributeError):
            payload.path_cost = 0.0  # type: ignore[misc]


class TestJoinReply:
    def test_entries_are_tuples(self):
        entry = JoinReplyEntry(source_id=1, sequence=2, next_hop=3)
        payload = JoinReplyPayload(group_id=1, sender_id=9, entries=(entry,))
        assert payload.entries[0].next_hop == 3
        with pytest.raises(AttributeError):
            payload.group_id = 2  # type: ignore[misc]

    def test_entry_equality_by_value(self):
        a = JoinReplyEntry(1, 2, 3)
        b = JoinReplyEntry(1, 2, 3)
        assert a == b
        assert hash(a) == hash(b)


class TestDataPayload:
    def test_dedup_key_fields(self):
        a = DataPayload(group_id=1, source_id=2, sequence=3)
        b = DataPayload(group_id=1, source_id=2, sequence=3)
        assert a == b
        assert (a.group_id, a.source_id, a.sequence) == (1, 2, 3)
