"""Tests for the ``dir://`` distributed sweep backend.

The contract under test: the shared sweep directory is a correct work
queue (leases are exclusive, expire with their holder's heartbeat, and
are reclaimed by exactly one rescuer); workers drain it to a journal
that doubles as the completion ledger (every run lands exactly once,
transient failures are re-dispatched fleet-wide, deterministic
failures quarantine); and the coordinator returns outcomes in spec
order, bit-identical to the local backends.  The kill-a-live-worker
scenario lives in the chaos harness (``repro chaos`` / ``pytest -m
chaos``); here workers are cooperative and fast.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.experiments.distributed import (
    BACKEND_ENV,
    WORKER_ID_ENV,
    DirExecutor,
    DistributedSweepError,
    IncrementalAggregator,
    LeaseConfig,
    LeaseQueue,
    SweepDir,
    WorkerStats,
    drain_worker,
    load_sweep,
    publish_sweep,
    record_is_final,
)
from repro.experiments.parallel import (
    RunSpec,
    cache_shard_dir,
    cache_store,
)
from repro.experiments.resilience import (
    ATTEMPT_ENV,
    FailureKind,
    JournalRecord,
    SweepJournal,
)
from repro.experiments.results import RunResult
from repro.experiments.scenarios import SimulationScenarioConfig

CFG = SimulationScenarioConfig(
    num_nodes=4, duration_s=1.0, warmup_s=0.1, topology_seed=1
)

#: Queue knobs tuned for sub-second tests (never used where a live
#: holder could be falsely expired mid-run).
FAST_LEASE = LeaseConfig(
    lease_timeout_s=0.25, heartbeat_interval_s=0.1, poll_interval_s=0.05
)

#: Generous knobs for multi-worker drains: a live worker's lease must
#: never expire under CI scheduling jitter.
SAFE_LEASE = LeaseConfig(
    lease_timeout_s=30.0, heartbeat_interval_s=0.2, poll_interval_s=0.05
)

MARK_DIR_ENV = "REPRO_TEST_MARK_DIR"


@pytest.fixture(autouse=True)
def _restore_worker_env():
    """drain_worker stamps provenance env vars; keep tests hermetic."""
    saved = {
        name: os.environ.get(name)
        for name in (WORKER_ID_ENV, BACKEND_ENV)
    }
    yield
    for name, value in saved.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value


def _quick_result(spec: RunSpec, delivered: int = 5) -> RunResult:
    return RunResult(
        protocol=spec.protocol.lower(), topology_seed=spec.seed,
        duration_s=1.0, offered_packets=10, expected_deliveries=10,
        delivered_packets=delivered, delivered_bytes=delivered * 512,
        mean_delay_s=0.01, probe_bytes=1.0,
    )


def _specs(n: int = 2, protocol: str = "odmrp"):
    return [RunSpec(protocol, CFG, seed) for seed in range(1, n + 1)]


def _attempt() -> int:
    return int(os.environ.get(ATTEMPT_ENV, "0"))


# -- fake workers (module-level: must survive the process boundary) ----


def ok_worker(spec):
    return _quick_result(spec), 0.01


def flaky_memory_worker(spec):
    if _attempt() == 0:
        raise MemoryError("transient allocation failure")
    return _quick_result(spec), 0.01


def value_error_worker(spec):
    raise ValueError("deterministic model bug")


def never_worker(spec):
    raise AssertionError("this spec should have replayed, not re-run")


def marking_worker(spec):
    """Exactly-once probe: O_EXCL-create one marker per run key.

    A second execution of the same key cannot create the marker and
    leaves a ``.dup`` tombstone the test asserts against.
    """
    mark_dir = os.environ[MARK_DIR_ENV]
    key = spec.cache_key()
    try:
        fd = os.open(
            os.path.join(mark_dir, f"{key}.marker"),
            os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644,
        )
        os.close(fd)
    except FileExistsError:
        with open(os.path.join(mark_dir, f"{key}.dup.{os.getpid()}"),
                  "w", encoding="utf-8"):
            pass
    time.sleep(0.02)  # let the other workers into the scramble
    return _quick_result(spec), 0.02


def _stress_worker_main(root: str, worker_id: str) -> None:
    drain_worker(
        root, worker_id=worker_id, lease=SAFE_LEASE,
        worker_fn=marking_worker, use_cache=False,
    )


class TestLeaseConfig:
    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError, match="lease_timeout_s"):
            LeaseConfig(lease_timeout_s=0.0)

    def test_rejects_heartbeat_at_or_above_timeout(self):
        with pytest.raises(ValueError, match="heartbeat_interval_s"):
            LeaseConfig(lease_timeout_s=1.0, heartbeat_interval_s=1.0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="max_retries"):
            LeaseConfig(max_retries=-1)


class TestLeaseQueue:
    def _queue(self, tmp_path, worker_id, config=FAST_LEASE):
        sweep = SweepDir(str(tmp_path)).ensure()
        return LeaseQueue(sweep, config, worker_id)

    def test_claim_is_exclusive(self, tmp_path):
        a = self._queue(tmp_path, "a")
        b = self._queue(tmp_path, "b")
        held = a.try_claim("k1", attempt=0, index=0)
        assert held is not None and held.key == "k1"
        assert b.try_claim("k1", attempt=0, index=0) is None
        assert a.stats.claimed == 1 and b.stats.claimed == 0

    def test_release_frees_the_slot(self, tmp_path):
        a = self._queue(tmp_path, "a")
        b = self._queue(tmp_path, "b")
        a.release(a.try_claim("k1", 0, 0))
        assert b.try_claim("k1", 0, 0) is not None

    def test_distinct_keys_are_independent(self, tmp_path):
        a = self._queue(tmp_path, "a")
        assert a.try_claim("k1", 0, 0) is not None
        assert a.try_claim("k2", 0, 1) is not None

    def test_expired_lease_is_reclaimed(self, tmp_path):
        a = self._queue(tmp_path, "a")
        b = self._queue(tmp_path, "b")
        assert a.try_claim("k1", 0, 0) is not None
        time.sleep(0.4)  # past FAST_LEASE.lease_timeout_s, no renewals
        held = b.try_claim("k1", attempt=1, index=0)
        assert held is not None and held.attempt == 1
        assert b.stats.expired == 1 and b.stats.reclaimed == 1
        # The carcass moved into stale/, it did not vanish.
        assert len(os.listdir(b.sweep.stale_dir)) == 1

    def test_renewed_lease_stays_live(self, tmp_path):
        a = self._queue(tmp_path, "a")
        b = self._queue(tmp_path, "b")
        held = a.try_claim("k1", 0, 0)
        for _ in range(5):
            time.sleep(0.1)
            assert a.renew(held)
        # Renewals kept the heartbeat fresh the whole 0.5 s.
        assert b.try_claim("k1", 0, 0) is None
        assert a.stats.renewed == 5

    def test_renew_detects_takeover(self, tmp_path):
        a = self._queue(tmp_path, "a")
        b = self._queue(tmp_path, "b")
        held_a = a.try_claim("k1", 0, 0)
        time.sleep(0.4)
        assert b.try_claim("k1", 1, 0) is not None
        # a stalled past the timeout and lost the lease: renew must say
        # so, and must not clobber b's claim.
        assert not a.renew(held_a)
        assert b.renew(b.try_claim("k1", 1, 0) or _held(b, "k1"))

    def test_unreadable_lease_expires_by_mtime(self, tmp_path):
        # A claimant killed between O_EXCL create and the first write
        # leaves an empty lease; mtime aging must unwedge the queue.
        b = self._queue(tmp_path, "b")
        path = b.sweep.lease_path("k1")
        with open(path, "w", encoding="utf-8"):
            pass
        old = time.time() - 60.0
        os.utime(path, (old, old))
        assert b.try_claim("k1", 0, 0) is not None


def _held(queue, key):
    """Fetch the live lease object for an assertion helper."""
    from repro.experiments.distributed import Lease

    return Lease(key=key, path=queue.sweep.lease_path(key), attempt=1,
                 index=0)


class TestRecordIsFinal:
    def _record(self, ok=True, attempts=1, failure_kind=None, error=None):
        result = {"error": error} if error else None
        return JournalRecord(
            key="k", protocol="odmrp", seed=1,
            status="ok" if ok else "failed", attempts=attempts,
            elapsed_s=0.1, failure_kind=failure_kind, result=result,
        )

    def test_success_is_final(self):
        assert record_is_final(self._record(ok=True), max_retries=2)

    def test_deterministic_failure_is_final(self):
        record = self._record(
            ok=False, failure_kind=FailureKind.EXCEPTION.value
        )
        assert record_is_final(record, max_retries=2)

    def test_transient_failure_awaits_redispatch(self):
        record = self._record(
            ok=False, attempts=1, failure_kind=FailureKind.TIMEOUT.value
        )
        assert not record_is_final(record, max_retries=2)

    def test_transient_failure_finalizes_when_budget_exhausts(self):
        record = self._record(
            ok=False, attempts=3, failure_kind=FailureKind.TIMEOUT.value
        )
        assert record_is_final(record, max_retries=2)

    def test_unknown_kind_classifies_from_the_error_text(self):
        record = self._record(
            ok=False, attempts=1, failure_kind=None,
            error="OOM: worker killed by SIGKILL",
        )
        assert not record_is_final(record, max_retries=1)
        assert record_is_final(record, max_retries=0)


class TestSweepManifest:
    def test_round_trip(self, tmp_path):
        sweep = SweepDir(str(tmp_path)).ensure()
        specs = _specs(3)
        publish_sweep(sweep, specs)
        assert load_sweep(sweep) == specs

    def test_unpublished_sweep_is_none(self, tmp_path):
        assert load_sweep(SweepDir(str(tmp_path)).ensure()) is None

    def _tamper(self, sweep, mutate):
        with open(sweep.sweep_path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        mutate(data)
        with open(sweep.sweep_path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)

    def test_schema_mismatch_fails_loudly(self, tmp_path):
        sweep = SweepDir(str(tmp_path)).ensure()
        publish_sweep(sweep, _specs(1))
        self._tamper(sweep, lambda d: d.update(schema=999))
        with pytest.raises(DistributedSweepError, match="schema"):
            load_sweep(sweep)

    def test_cache_schema_skew_fails_loudly(self, tmp_path):
        sweep = SweepDir(str(tmp_path)).ensure()
        publish_sweep(sweep, _specs(1))
        self._tamper(sweep, lambda d: d.update(cache_schema=-1))
        with pytest.raises(DistributedSweepError, match="cache schema"):
            load_sweep(sweep)

    def test_key_skew_fails_loudly(self, tmp_path):
        # A worker whose code hashes runs differently than the
        # publisher must refuse to drain.
        sweep = SweepDir(str(tmp_path)).ensure()
        publish_sweep(sweep, _specs(1))
        self._tamper(
            sweep, lambda d: d["runs"][0].update(key="f" * 64)
        )
        with pytest.raises(DistributedSweepError, match="version skew"):
            load_sweep(sweep)

    def test_unreadable_manifest_fails_loudly(self, tmp_path):
        sweep = SweepDir(str(tmp_path)).ensure()
        with open(sweep.sweep_path, "w", encoding="utf-8") as handle:
            handle.write("{torn")
        with pytest.raises(DistributedSweepError, match="unreadable"):
            load_sweep(sweep)


class TestIncrementalAggregator:
    def test_results_land_in_spec_order(self):
        specs = _specs(3)
        agg = IncrementalAggregator(specs)
        for spec in reversed(specs):  # arrival order != spec order
            assert agg.add(spec.cache_key(), _quick_result(spec))
        assert agg.done and agg.landed == 3
        assert agg.results() == [_quick_result(spec) for spec in specs]

    def test_duplicates_and_strangers_are_rejected(self):
        specs = _specs(1)
        agg = IncrementalAggregator(specs)
        key = specs[0].cache_key()
        assert agg.add(key, _quick_result(specs[0]))
        assert not agg.add(key, _quick_result(specs[0]))
        assert not agg.add("nope", _quick_result(specs[0]))
        assert agg.landed == 1

    def test_aggregates_match_serial_aggregation(self):
        from repro.experiments.results import aggregate_runs

        specs = _specs(2)
        agg = IncrementalAggregator(specs)
        for spec in specs:
            agg.add(spec.cache_key(), _quick_result(spec))
        assert agg.aggregates() == aggregate_runs(
            [_quick_result(spec) for spec in specs]
        )


class TestDrainWorker:
    def test_single_worker_drains_the_sweep(self, tmp_path):
        root = str(tmp_path)
        sweep = SweepDir(root).ensure()
        specs = _specs(3)
        publish_sweep(sweep, specs)
        stats = drain_worker(
            root, worker_id="w0", lease=SAFE_LEASE, worker_fn=ok_worker,
        )
        assert stats.completed == 3 and stats.failed == 0
        assert stats.claimed == 3
        records = SweepJournal.replay(sweep.journal_path)
        assert len(records) == 3
        assert all(record.ok for record in records.values())
        assert all(
            record.worker == "w0" for record in records.values()
        )
        # No leases linger, the stats snapshot and telemetry landed.
        assert not any(
            name.endswith(".lease")
            for name in os.listdir(sweep.leases_dir)
        )
        saved = json.load(open(
            os.path.join(sweep.workers_dir, "w0.json"), encoding="utf-8"
        ))
        assert saved["completed"] == 3
        assert os.path.exists(
            os.path.join(sweep.telemetry_dir, "worker-w0.jsonl")
        )

    def test_cache_hit_journals_without_executing(self, tmp_path):
        root = str(tmp_path)
        sweep = SweepDir(root).ensure()
        [spec] = _specs(1)
        publish_sweep(sweep, [spec])
        key = spec.cache_key()
        cache_store(
            cache_shard_dir(sweep.cache_dir, key), spec,
            _quick_result(spec),
        )
        stats = drain_worker(
            root, worker_id="w0", lease=SAFE_LEASE,
            worker_fn=never_worker,  # a miss would blow up
        )
        assert stats.cache_hits == 1 and stats.completed == 0
        record = SweepJournal.replay(sweep.journal_path)[key]
        assert record.ok and record.cached
        assert record.to_run_result() == _quick_result(spec)

    def test_executed_results_populate_the_shared_cache(self, tmp_path):
        root = str(tmp_path)
        sweep = SweepDir(root).ensure()
        [spec] = _specs(1)
        publish_sweep(sweep, [spec])
        drain_worker(root, worker_id="w0", lease=SAFE_LEASE,
                     worker_fn=ok_worker)
        from repro.experiments.parallel import cache_load

        shard = cache_shard_dir(sweep.cache_dir, spec.cache_key())
        assert cache_load(shard, spec) == _quick_result(spec)

    def test_max_runs_bounds_the_drain(self, tmp_path):
        root = str(tmp_path)
        sweep = SweepDir(root).ensure()
        publish_sweep(sweep, _specs(3))
        stats = drain_worker(
            root, worker_id="w0", lease=SAFE_LEASE, worker_fn=ok_worker,
            max_runs=1,
        )
        assert stats.completed == 1
        assert len(SweepJournal.replay(sweep.journal_path)) == 1

    def test_missing_sweep_times_out_loudly(self, tmp_path):
        with pytest.raises(DistributedSweepError, match="no sweep"):
            drain_worker(
                str(tmp_path), worker_id="w0", lease=FAST_LEASE,
                wait_for_sweep_s=0.2,
            )

    def test_transient_failure_is_redispatched(self, tmp_path):
        """A MemoryError on attempt 0 journals a non-final failure; the
        same drain loop claims the run again and retries to success."""
        root = str(tmp_path)
        sweep = SweepDir(root).ensure()
        [spec] = _specs(1)
        publish_sweep(sweep, [spec])
        stats = drain_worker(
            root, worker_id="w0", lease=SAFE_LEASE,
            worker_fn=flaky_memory_worker, use_cache=False,
        )
        assert stats.failed == 1 and stats.completed == 1
        record = SweepJournal.replay(sweep.journal_path)[spec.cache_key()]
        assert record.ok and record.attempts == 2

    def test_deterministic_failure_quarantines(self, tmp_path):
        root = str(tmp_path)
        sweep = SweepDir(root).ensure()
        [spec] = _specs(1)
        publish_sweep(sweep, [spec])
        stats = drain_worker(
            root, worker_id="w0", lease=SAFE_LEASE,
            worker_fn=value_error_worker, use_cache=False,
        )
        # One dispatch, not max_retries+1: EXCEPTION never retries.
        assert stats.failed == 1 and stats.completed == 0
        record = SweepJournal.replay(sweep.journal_path)[spec.cache_key()]
        assert not record.ok and record.attempts == 1
        assert record.failure_kind == FailureKind.EXCEPTION.value
        assert record_is_final(record, SAFE_LEASE.max_retries)

    def test_worker_sets_provenance_env(self, tmp_path):
        root = str(tmp_path)
        sweep = SweepDir(root).ensure()
        publish_sweep(sweep, _specs(1))
        drain_worker(root, worker_id="w7", lease=SAFE_LEASE,
                     worker_fn=ok_worker)
        assert os.environ[WORKER_ID_ENV] == "w7"
        assert os.environ[BACKEND_ENV] == sweep.uri()


class TestMultiWorkerStress:
    def test_four_workers_execute_every_run_exactly_once(self, tmp_path):
        """Satellite: N workers scrambling over one queue must neither
        drop nor double-execute a run."""
        root = str(tmp_path / "shared")
        mark_dir = str(tmp_path / "marks")
        os.makedirs(mark_dir)
        sweep = SweepDir(root).ensure()
        specs = _specs(12)
        publish_sweep(sweep, specs)
        os.environ[MARK_DIR_ENV] = mark_dir
        ctx = multiprocessing.get_context()
        workers = [
            ctx.Process(target=_stress_worker_main,
                        args=(root, f"stress-w{number}"))
            for number in range(4)
        ]
        try:
            for proc in workers:
                proc.start()
            for proc in workers:
                proc.join(120.0)
        finally:
            os.environ.pop(MARK_DIR_ENV, None)
            for proc in workers:
                if proc.is_alive():
                    proc.kill()
                    proc.join(5.0)
        assert all(proc.exitcode == 0 for proc in workers)
        markers = sorted(os.listdir(mark_dir))
        dups = [name for name in markers if ".dup." in name]
        assert not dups, f"double-executed runs: {dups}"
        assert len(markers) == len(specs)
        records = SweepJournal.replay(sweep.journal_path)
        assert len(records) == len(specs)
        assert all(record.ok for record in records.values())
        assert not any(
            name.endswith(".lease")
            for name in os.listdir(sweep.leases_dir)
        )


class TestDirExecutor:
    def test_end_to_end_two_workers(self, tmp_path):
        root = str(tmp_path / "shared")
        specs = _specs(6)
        seen = []
        executor = DirExecutor(
            root, workers=2, lease=SAFE_LEASE, worker_fn=ok_worker,
            use_cache=False,
        )
        outcomes = executor.execute(
            specs,
            progress=lambda protocol, seed: seen.append(seed),
        )
        assert [o.spec for o in outcomes] == specs
        assert [o.result for o in outcomes] == [
            _quick_result(spec) for spec in specs
        ]
        assert sorted(seen) == [spec.seed for spec in specs]
        # Clean completion compacts the shared journal: one surviving
        # line per run.
        with open(SweepDir(root).journal_path, "rb") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == len(specs)

    def test_resume_replays_without_executing(self, tmp_path):
        root = str(tmp_path / "shared")
        specs = _specs(3)
        first = DirExecutor(
            root, workers=1, lease=SAFE_LEASE, worker_fn=ok_worker,
            use_cache=False,
        ).execute(specs)
        resumed = DirExecutor(
            root, workers=1, lease=SAFE_LEASE, worker_fn=never_worker,
            use_cache=False, resume=True,
        ).execute(specs)
        assert all(o.from_journal for o in resumed)
        assert [o.result for o in resumed] == [
            o.result for o in first
        ]

    def test_fresh_sweep_rotates_an_overlapping_journal(self, tmp_path):
        root = str(tmp_path / "shared")
        specs = _specs(2)
        DirExecutor(root, workers=1, lease=SAFE_LEASE,
                    worker_fn=ok_worker, use_cache=False).execute(specs)
        DirExecutor(root, workers=1, lease=SAFE_LEASE,
                    worker_fn=ok_worker, use_cache=False).execute(specs)
        journal = SweepDir(root).journal_path
        assert os.path.exists(f"{journal}.old1")
        assert len(SweepJournal.replay(journal)) == len(specs)

    def test_disjoint_journal_records_survive_a_fresh_sweep(
        self, tmp_path
    ):
        # Sibling sub-sweeps (e.g. per-mobility-model grids) share one
        # root sequentially; publishing the second must not rotate away
        # the first's records.
        root = str(tmp_path / "shared")
        DirExecutor(root, workers=1, lease=SAFE_LEASE,
                    worker_fn=ok_worker, use_cache=False).execute(
            _specs(2, protocol="odmrp"))
        DirExecutor(root, workers=1, lease=SAFE_LEASE,
                    worker_fn=ok_worker, use_cache=False).execute(
            _specs(2, protocol="spp"))
        journal = SweepDir(root).journal_path
        assert not os.path.exists(f"{journal}.old1")
        assert len(SweepJournal.replay(journal)) == 4

    def test_quarantined_failure_surfaces_in_outcomes(self, tmp_path):
        root = str(tmp_path / "shared")
        [spec] = _specs(1)
        [outcome] = DirExecutor(
            root, workers=1, lease=SAFE_LEASE,
            worker_fn=value_error_worker, use_cache=False,
        ).execute([spec])
        assert outcome.failure_kind is FailureKind.EXCEPTION
        assert outcome.attempts == 1
        assert "deterministic model bug" in outcome.result.error

    def test_all_workers_dead_fails_instead_of_hanging(self, tmp_path):
        root = str(tmp_path / "shared")
        executor = DirExecutor(
            root, workers=2, lease=FAST_LEASE, worker_fn=ok_worker,
        )
        executor.submit(_specs(2))
        # Corrupt the manifest schema after publication: every spawned
        # worker dies on load, and the coordinator must notice rather
        # than poll forever.
        sweep = SweepDir(root)
        with open(sweep.sweep_path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        data["schema"] = 999
        with open(sweep.sweep_path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        with pytest.raises(DistributedSweepError, match="exited"):
            executor.collect()
        executor.close()

    def test_submit_twice_is_an_error(self, tmp_path):
        executor = DirExecutor(str(tmp_path / "shared"), workers=1)
        executor.submit(_specs(1))
        with pytest.raises(RuntimeError, match="already"):
            executor.submit(_specs(1))

    def test_collect_before_submit_is_an_error(self, tmp_path):
        with pytest.raises(RuntimeError, match="before submit"):
            DirExecutor(str(tmp_path / "shared")).collect()


class TestDistributedRealRuns:
    """The dir:// backend must not perturb real simulation results."""

    TINY = SimulationScenarioConfig(
        num_nodes=6, area_width_m=400.0, area_height_m=400.0,
        num_groups=1, members_per_group=3, duration_s=4.0, warmup_s=1.0,
        topology_seed=1,
    )

    def test_distributed_matches_serial(self, tmp_path):
        from repro.experiments.parallel import execute_runs

        specs = [RunSpec("odmrp", self.TINY, 1)]
        serial = execute_runs(specs, jobs=1)
        outcomes = DirExecutor(
            str(tmp_path / "shared"), workers=1, lease=SAFE_LEASE,
        ).execute(specs)
        assert [o.result for o in outcomes] == serial
        assert outcomes[0].result.error is None
