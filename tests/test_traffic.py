"""Tests for CBR sources, sinks, and group scenario construction."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import Packet, PacketKind
from repro.odmrp.messages import DataPayload
from repro.sim.engine import Simulator
from repro.traffic.cbr import CbrSource
from repro.traffic.groups import GroupScenario, GroupSpec, build_group_scenario
from repro.traffic.sink import MulticastSink
from tests.conftest import link, make_loss_network
from tests.test_odmrp import build_routers


class TestCbrSource:
    def make_pair(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        deliveries = []
        routers = build_routers(network, deliveries=deliveries)
        routers[1].join_group(1)
        return network, routers, deliveries

    def test_rate_and_size(self):
        network, routers, deliveries = self.make_pair()
        source = CbrSource(
            network.sim, routers[0], group_id=1,
            rate_pps=20.0, packet_size_bytes=512,
        )
        source.start(at=1.0, stop_at=11.0)
        network.run(12.0)
        # 10 s at 20 pkt/s: ~200 packets (first fires one gap after start).
        assert 195 <= source.packets_sent <= 200
        assert len(deliveries) == source.packets_sent

    def test_stop_at_halts_traffic(self):
        network, routers, _ = self.make_pair()
        source = CbrSource(network.sim, routers[0], group_id=1, rate_pps=10.0)
        source.start(at=0.5, stop_at=2.5)
        network.run(10.0)
        sent_at_stop = source.packets_sent
        assert sent_at_stop <= 20
        network.run(15.0)
        assert source.packets_sent == sent_at_stop

    def test_start_marks_router_as_source(self):
        network, routers, _ = self.make_pair()
        source = CbrSource(network.sim, routers[0], group_id=7)
        source.start(at=0.1)
        network.run(1.0)
        assert network.nodes[0].counters.get("odmrp.query_originated") >= 1

    def test_validation(self):
        network, routers, _ = self.make_pair()
        with pytest.raises(ValueError):
            CbrSource(network.sim, routers[0], 1, rate_pps=0.0)
        with pytest.raises(ValueError):
            CbrSource(network.sim, routers[0], 1, packet_size_bytes=0)
        source = CbrSource(network.sim, routers[0], 1)
        with pytest.raises(ValueError):
            source.start(at=1.0, stop_at=0.5)


class TestMulticastSink:
    def deliver(self, sink, receiver, group, source, seq, created, now):
        sink.sim._now = now  # direct clock poke for unit-level testing
        packet = Packet(PacketKind.DATA, source, 512, created)
        sink.on_deliver(
            packet, DataPayload(group, source, seq), receiver
        )

    def test_flow_accounting(self):
        sink = MulticastSink(Simulator())
        self.deliver(sink, receiver=5, group=1, source=0, seq=1,
                     created=1.0, now=1.5)
        self.deliver(sink, receiver=5, group=1, source=0, seq=2,
                     created=2.0, now=2.25)
        self.deliver(sink, receiver=6, group=2, source=0, seq=1,
                     created=2.0, now=2.1)
        assert sink.total_packets == 3
        assert sink.total_bytes == 3 * 512
        assert sink.packets_for_receiver(5) == 2
        assert sink.packets_for_group(2) == 1
        record = sink.flows[(5, 1, 0)]
        assert record.delay.mean == pytest.approx((0.5 + 0.25) / 2)

    def test_mean_delay_and_throughput(self):
        sink = MulticastSink(Simulator())
        assert sink.mean_delay_s() is None
        self.deliver(sink, 5, 1, 0, 1, created=0.0, now=0.4)
        assert sink.mean_delay_s() == pytest.approx(0.4)
        assert sink.throughput_bps(10.0) == pytest.approx(512 * 8 / 10.0)
        with pytest.raises(ValueError):
            sink.throughput_bps(0.0)

    def test_delivery_ratio(self):
        sink = MulticastSink(Simulator())
        self.deliver(sink, 5, 1, 0, 1, created=0.0, now=0.1)
        assert sink.delivery_ratio(4) == pytest.approx(0.25)
        assert sink.delivery_ratio(0) == 0.0


class TestGroupScenario:
    def test_source_member_overlap_rejected(self):
        with pytest.raises(ValueError):
            GroupSpec(group_id=1, source_ids=(1,), member_ids=(1, 2))

    def test_build_shape(self):
        scenario = build_group_scenario(
            50, num_groups=2, members_per_group=10, sources_per_group=1,
            rng=random.Random(3),
        )
        assert len(scenario.groups) == 2
        for group in scenario.groups:
            assert len(group.member_ids) == 10
            assert len(group.source_ids) == 1
        assert len(scenario.all_members()) == 20
        assert len(scenario.all_sources()) == 2

    def test_expected_deliveries_per_packet(self):
        scenario = build_group_scenario(
            20, num_groups=1, members_per_group=7, rng=random.Random(1)
        )
        assert scenario.expected_deliveries_per_packet(1) == 7
        with pytest.raises(KeyError):
            scenario.expected_deliveries_per_packet(99)

    def test_too_small_population_rejected(self):
        with pytest.raises(ValueError):
            build_group_scenario(5, num_groups=1, members_per_group=10)

    @given(
        num_nodes=st.integers(min_value=12, max_value=60),
        groups=st.integers(min_value=1, max_value=3),
        sources=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_roles_distinct_within_group(self, num_nodes, groups, sources, seed):
        scenario = build_group_scenario(
            num_nodes,
            num_groups=groups,
            members_per_group=8,
            sources_per_group=sources,
            rng=random.Random(seed),
        )
        for group in scenario.groups:
            all_ids = group.source_ids + group.member_ids
            assert len(set(all_ids)) == len(all_ids)
            assert all(0 <= i < num_nodes for i in all_ids)

    def test_same_seed_same_assignment(self):
        a = build_group_scenario(30, rng=random.Random(9))
        b = build_group_scenario(30, rng=random.Random(9))
        assert a == b
