"""Resilient sweep execution: supervision, retries, and a durable journal.

The plain executor (:mod:`repro.experiments.parallel`) assumes every run
terminates and every worker survives.  At paper scale (hundreds of
50-node runs, hours of wall time) that assumption fails in practice: a
pathological topology can hang a run, the kernel OOM-killer can shoot a
worker, and a Ctrl-C used to throw away everything computed so far.
This module wraps the same picklable :class:`~repro.experiments.parallel.
RunSpec` workers in a *supervisor* that makes sweeps survivable:

* **Per-run wall-clock timeouts**, enforced from the parent.  Each run
  executes in its own child process; a run that exceeds
  ``ResilienceConfig.run_timeout_s`` is terminated (SIGTERM, then
  SIGKILL after a grace period) and the slot is re-dispatched -- the
  pool can never silently hang on one stuck simulation.
* **A structured failure taxonomy** (:class:`FailureKind`).  Every
  failure is classified -- ``TIMEOUT``, ``WORKER_CRASH`` (worker died
  with a signal / nonzero exit before reporting), ``OOM`` (SIGKILL or a
  ``MemoryError``), ``INVARIANT`` (a validation monitor fired), or
  ``EXCEPTION`` (any other in-run error) -- and the kind is recorded on
  the :class:`~repro.experiments.parallel.RunOutcome` and as a
  ``KIND:`` prefix on ``RunResult.error`` so it survives journaling and
  aggregation.
* **Bounded retry with exponential backoff + deterministic jitter**
  (:class:`RetryPolicy`) for *transient* kinds (``TIMEOUT``,
  ``WORKER_CRASH``, ``OOM``).  Deterministic model failures
  (``EXCEPTION``, ``INVARIANT``) are quarantined immediately: the
  simulation is seed-deterministic, so re-running them can only waste
  the sweep's time budget.  Because runs are seed-deterministic, a
  retried run that succeeds produces a bit-identical
  :class:`~repro.experiments.results.RunResult` -- the chaos harness
  (:mod:`repro.experiments.chaos`) asserts this.
* **A durable sweep journal** (:class:`SweepJournal`): append-only JSONL
  under the cache dir, one fsync'd record per finished (or quarantined)
  run keyed by ``RunSpec.cache_key()``.  ``repro run --resume`` replays
  completed runs from the journal and re-dispatches only the failures.
* **Graceful SIGINT/SIGTERM draining**: the first signal stops
  dispatching, terminates active children, and leaves the journal
  consistent (records are written atomically per line), then raises
  ``KeyboardInterrupt``.  Re-running with ``--resume`` picks up where
  the sweep left off.
* **Graceful degradation**: a run whose retry budget is exhausted is
  *quarantined* -- it comes back as an error-annotated result with its
  failure kind, and the sweep completes.  Aggregation and reporting
  (:mod:`repro.experiments.results` / ``report.py``) surface the
  quarantined runs per protocol instead of aborting.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import json
import multiprocessing
import os
import signal
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.experiments.parallel import (
    ProgressCallback,
    RunOutcome,
    RunSpec,
    _error_result,
    _execute_spec,
    cache_load,
    cache_store,
    resolve_cache_dir,
    sweep_stale_cache_tmps,
)
from repro.experiments.results import RunResult

#: Bump when the journal record shape changes incompatibly.
JOURNAL_SCHEMA_VERSION = 1

#: Set in every supervised worker: the run's 0-based attempt number.
#: Telemetry manifests record it (``extra["attempt"]``) and the chaos
#: harness keys attempt-gated faults off it.
ATTEMPT_ENV = "REPRO_RUN_ATTEMPT"

#: A supervised worker: takes a spec, returns ``(result, elapsed_s)``.
#: Exceptions it raises are converted to error-annotated results by the
#: child shim, so custom workers (tests, chaos probes) can just raise.
WorkerFn = Callable[[RunSpec], Tuple[RunResult, float]]


class FailureKind(Enum):
    """Why a run failed.  The taxonomy drives the retry policy."""

    #: Exceeded the per-run wall-clock budget; worker killed by the
    #: supervisor.  Transient (system load), so retryable.
    TIMEOUT = "timeout"
    #: Worker process died (signal or nonzero exit) before reporting a
    #: result -- segfault, interpreter abort, pool breakage.  Retryable.
    WORKER_CRASH = "worker_crash"
    #: Worker was SIGKILLed (the kernel OOM-killer's signature) or the
    #: run raised ``MemoryError``.  Retryable: memory pressure is a
    #: property of the host at that moment, not of the spec.
    OOM = "oom"
    #: A runtime invariant monitor fired (:mod:`repro.validation`).
    #: Deterministic -- never retried, always quarantined.
    INVARIANT = "invariant"
    #: Any other in-run exception.  Deterministic model failures repeat
    #: bit-for-bit, so retrying only burns the sweep's time budget.
    EXCEPTION = "exception"


#: Kinds the default policy considers transient.
TRANSIENT_KINDS = frozenset(
    {FailureKind.TIMEOUT, FailureKind.WORKER_CRASH, FailureKind.OOM}
)


def classify_failure(error: Optional[str]) -> Optional[FailureKind]:
    """Map a ``RunResult.error`` string to its :class:`FailureKind`.

    Supervisor-annotated errors carry a ``KIND:`` prefix and classify
    exactly.  Legacy errors (raw tracebacks from the plain executor) are
    sniffed: ``MemoryError`` means OOM, ``InvariantViolation`` means a
    validation monitor fired, a broken-pool message means the worker
    died, anything else is a plain exception.  ``None`` for a
    successful run.
    """
    if not error:
        return None
    head = error.split(":", 1)[0].strip()
    if head in FailureKind.__members__:
        return FailureKind[head]
    if "MemoryError" in error:
        return FailureKind.OOM
    if "InvariantViolation" in error:
        return FailureKind.INVARIANT
    if "BrokenProcessPool" in error or "process pool" in error:
        return FailureKind.WORKER_CRASH
    return FailureKind.EXCEPTION


def _prefixed_error(kind: FailureKind, detail: str) -> str:
    """Annotate an error string with its kind (idempotent)."""
    head = detail.split(":", 1)[0].strip()
    if head in FailureKind.__members__:
        return detail
    return f"{kind.name}: {detail}"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``max_retries`` counts *re*-dispatches: a run is attempted at most
    ``max_retries + 1`` times.  The backoff for attempt ``n`` (0-based,
    i.e. before re-dispatch ``n+1``) is
    ``min(backoff_max_s, backoff_base_s * 2**n)`` stretched by up to
    ``jitter_fraction``; the jitter is derived from a hash of the run's
    cache key and attempt number, so a replayed sweep waits the exact
    same amounts -- no wall-clock randomness leaks into scheduling.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.25
    backoff_max_s: float = 30.0
    jitter_fraction: float = 0.25
    retryable: frozenset = TRANSIENT_KINDS

    def should_retry(self, kind: FailureKind, attempt: int) -> bool:
        """May attempt ``attempt`` (0-based) be re-dispatched?"""
        return kind in self.retryable and attempt < self.max_retries

    def backoff_s(self, key: str, attempt: int) -> float:
        base = min(self.backoff_max_s, self.backoff_base_s * (2 ** attempt))
        digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "big") / float(2 ** 64)
        return base * (1.0 + self.jitter_fraction * unit)


@dataclass(frozen=True)
class ResilienceConfig:
    """Supervision knobs for one resilient sweep."""

    #: Per-run wall-clock budget; ``None`` disables the timeout (runs
    #: are still isolated in their own process and crash-contained).
    run_timeout_s: Optional[float] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Seconds between SIGTERM and SIGKILL when putting down a worker.
    kill_grace_s: float = 1.0
    #: Supervisor poll cadence; only affects timeout/backoff resolution.
    poll_interval_s: float = 0.05


# ----------------------------------------------------------------------
# The sweep journal


@dataclass
class JournalRecord:
    """One journaled run, replayable without re-simulation."""

    key: str
    protocol: str
    seed: int
    status: str  # "ok" | "failed"
    attempts: int
    elapsed_s: float
    failure_kind: Optional[str]
    result: Dict[str, Any]
    #: Id of the worker that journaled the record (``dir://`` backend);
    #: None for records written by the in-process supervisor.
    worker: Optional[str] = None
    #: True when the record replayed a shared-cache hit rather than an
    #: execution (``dir://`` workers journal cache hits so the shared
    #: journal is a complete completion ledger).
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_run_result(self) -> Optional[RunResult]:
        """Rebuild the RunResult, or None on schema drift."""
        try:
            return RunResult(**self.result)
        except TypeError:
            return None


class SweepJournal:
    """Append-only JSONL record of finished runs, keyed by cache key.

    Every record is a single ``os.write`` to an ``O_APPEND`` descriptor,
    fsync'd before the supervisor moves on.  On a local filesystem an
    O_APPEND write of one line is atomic, so concurrent writers (the
    ``dir://`` backend's worker fleet sharing one journal) never
    interleave bytes, and a sweep killed at any instant leaves at worst
    one truncated *trailing* line -- which :meth:`replay` skips.
    Records are append-only; on replay the last record per key wins, so
    a resumed sweep that re-runs a previously failed run simply appends
    the new outcome.  :meth:`compact` rewrites the file keeping only
    the surviving record per key.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fd: Optional[int] = os.open(
            path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )

    @staticmethod
    def default_path(cache_dir: Optional[str] = None) -> str:
        """The journal's home: ``<cache_dir>/journal.jsonl``."""
        return os.path.join(resolve_cache_dir(cache_dir), "journal.jsonl")

    @staticmethod
    def build_record(
        spec: RunSpec,
        result: RunResult,
        attempts: int,
        elapsed_s: float,
        failure_kind: Optional[FailureKind] = None,
        worker: Optional[str] = None,
        cached: bool = False,
    ) -> Dict[str, Any]:
        record = {
            "schema": JOURNAL_SCHEMA_VERSION,
            "key": spec.cache_key(),
            "protocol": spec.protocol.lower(),
            "seed": spec.seed,
            "status": "ok" if result.error is None else "failed",
            "attempts": attempts,
            "elapsed_s": elapsed_s,
            "failure_kind": (
                failure_kind.value if failure_kind is not None else None
            ),
            "written_unix": time.time(),
            "result": dataclasses.asdict(result),
        }
        if worker is not None:
            record["worker"] = worker
        if cached:
            record["cached"] = True
        return record

    @staticmethod
    def _encode(record: Dict[str, Any]) -> bytes:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        return (line + "\n").encode("utf-8")

    def record(
        self,
        spec: RunSpec,
        result: RunResult,
        attempts: int,
        elapsed_s: float,
        failure_kind: Optional[FailureKind] = None,
        worker: Optional[str] = None,
        cached: bool = False,
    ) -> None:
        if self._fd is None:
            raise ValueError("journal is closed")
        data = self._encode(self.build_record(
            spec, result, attempts, elapsed_s, failure_kind,
            worker=worker, cached=cached,
        ))
        os.write(self._fd, data)
        os.fsync(self._fd)

    @classmethod
    def append_record(cls, path: str, record: Dict[str, Any]) -> None:
        """Append one record with open-write-fsync-close semantics.

        The ``dir://`` workers use this instead of a long-lived handle:
        if another worker :meth:`compact`-replaces the journal inode
        between two of our appends, a fresh open always lands on the
        live file instead of the orphaned old inode.
        """
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, cls._encode(record))
            os.fsync(fd)
        finally:
            os.close(fd)

    @classmethod
    def compact(cls, path: str) -> int:
        """Atomically rewrite the journal keeping only surviving records.

        A long resilient sweep accretes one line per *attempt* (retries
        append, they don't replace) plus possibly one torn trailing
        line; replay cost and disk grow without bound.  Compaction
        keeps exactly the line that :meth:`replay` would surface for
        each key -- the last valid record, byte-for-byte -- and drops
        superseded attempts and damaged lines.  The rewrite goes
        through a temp file + fsync + ``os.replace``, so a crash
        mid-compaction leaves the original journal untouched.

        Returns the number of lines dropped.  Call only when no other
        process is appending (clean sweep completion).
        """
        try:
            with open(path, "rb") as handle:
                raw_lines = handle.readlines()
        except OSError:
            return 0
        survivors: Dict[str, bytes] = {}
        total = 0
        for raw in raw_lines:
            if not raw.strip():
                continue
            total += 1
            try:
                data = json.loads(raw)
            except ValueError:
                continue  # torn / garbled line: drop
            if not isinstance(data, dict):
                continue
            if data.get("schema") != JOURNAL_SCHEMA_VERSION:
                continue
            key = data.get("key")
            if not isinstance(key, str):
                continue
            # Preserve first-seen order; a retry overwrites in place.
            survivors[key] = raw if raw.endswith(b"\n") else raw + b"\n"
        dropped = total - len(survivors)
        if dropped <= 0:
            return 0
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                handle.writelines(survivors.values())
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return dropped

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @classmethod
    def replay(cls, path: str) -> Dict[str, JournalRecord]:
        """Read a journal back; last record per key wins.

        A truncated or garbled line (the signature of a sweep killed
        mid-write) is skipped rather than fatal -- by construction only
        the final line can be damaged, and its run simply re-executes.
        """
        records: Dict[str, JournalRecord] = {}
        try:
            handle = open(path, "r", encoding="utf-8")
        except OSError:
            return records
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except ValueError:
                    continue  # torn trailing write: re-run that spec
                if not isinstance(data, dict):
                    continue
                if data.get("schema") != JOURNAL_SCHEMA_VERSION:
                    continue
                try:
                    record = JournalRecord(
                        key=data["key"],
                        protocol=data["protocol"],
                        seed=data["seed"],
                        status=data["status"],
                        attempts=data["attempts"],
                        elapsed_s=data["elapsed_s"],
                        failure_kind=data.get("failure_kind"),
                        result=data["result"],
                        worker=data.get("worker"),
                        cached=bool(data.get("cached", False)),
                    )
                except KeyError:
                    continue
                records[record.key] = record
        return records


# ----------------------------------------------------------------------
# The supervised worker shim (runs in the child process)


def _child_main(
    conn: Any, spec: RunSpec, attempt: int, worker: WorkerFn
) -> None:
    """Child entry: run one spec, send ``(result, elapsed_s)`` back.

    Any exception the worker (or an injected chaos fault) raises is
    converted to an error-annotated result here; a child that dies
    before sending anything is classified by the parent from its exit
    code.
    """
    os.environ[ATTEMPT_ENV] = str(attempt)
    try:
        import faulthandler

        # A forked child inherits the parent's faulthandler (pytest
        # enables one); an injected crash would dump the whole parent
        # test session's stacks. The parent classifies us from the exit
        # signal, so the dump is pure noise.
        faulthandler.disable()
    except Exception:  # noqa: BLE001 - best-effort hygiene only
        pass
    try:
        from repro.experiments.chaos import maybe_inject_fault

        maybe_inject_fault(spec, attempt)
        payload = worker(spec)
    except BaseException:  # noqa: BLE001 - annotate anything, incl. chaos
        payload = (_error_result(spec, traceback.format_exc()), 0.0)
    try:
        conn.send(payload)
    except Exception:  # noqa: BLE001 - parent gone; nothing left to do
        pass
    finally:
        conn.close()


def _put_down(proc: Any, grace_s: float) -> None:
    """Terminate a worker: SIGTERM, wait ``grace_s``, then SIGKILL."""
    if proc.is_alive():
        proc.terminate()
        proc.join(grace_s)
    if proc.is_alive():
        proc.kill()
        proc.join(5.0)


@dataclass
class _Active:
    """Bookkeeping for one in-flight supervised worker."""

    proc: Any
    conn: Any
    index: int
    attempt: int
    started: float
    deadline: Optional[float]


def supervise_single_run(
    spec: RunSpec,
    attempt: int = 0,
    worker: WorkerFn = _execute_spec,
    run_timeout_s: Optional[float] = None,
    kill_grace_s: float = 1.0,
    poll_interval_s: float = 0.05,
    on_poll: Optional[Callable[[], None]] = None,
) -> Tuple[RunResult, float, Optional[FailureKind]]:
    """Run one spec in its own supervised child; classify any failure.

    The single-run core of :func:`execute_runs_resilient`'s supervision
    loop, reusable by executors that schedule one run at a time (the
    ``dir://`` backend's lease workers).  The child is the same
    :func:`_child_main` shim the pooled supervisor uses, so chaos
    injection, the ``ATTEMPT_ENV`` contract, and crash containment are
    identical.  ``on_poll`` is invoked once per poll tick while the run
    is in flight -- the lease-heartbeat hook; if it raises, the child is
    put down before the exception propagates.

    Returns ``(result, elapsed_s, failure_kind)`` where the kind is
    ``None`` on success; error results carry the usual ``KIND:``
    prefix.  Retry policy is the *caller's* job.
    """
    ctx = multiprocessing.get_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_child_main, args=(child_conn, spec, attempt, worker),
        daemon=True,
    )
    started = time.monotonic()
    proc.start()
    child_conn.close()
    deadline = (
        started + run_timeout_s if run_timeout_s is not None else None
    )
    payload = None
    timed_out = False
    try:
        while True:
            if parent_conn.poll(poll_interval_s):
                try:
                    payload = parent_conn.recv()
                except (EOFError, OSError):
                    payload = None  # died before reporting
                break
            if on_poll is not None:
                on_poll()
            if deadline is not None and time.monotonic() >= deadline:
                timed_out = True
                break
    finally:
        try:
            parent_conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if timed_out or payload is None:
            _put_down(proc, kill_grace_s)
        proc.join(5.0)
        if proc.is_alive():  # pragma: no cover - stuck post-send
            _put_down(proc, kill_grace_s)
    elapsed = time.monotonic() - started
    if timed_out:
        detail = (
            f"run exceeded the {run_timeout_s:.1f}s wall-clock budget; "
            "worker terminated by the supervisor"
        )
        kind = FailureKind.TIMEOUT
        return _error_result(spec, _prefixed_error(kind, detail)), \
            elapsed, kind
    if payload is None:
        code = proc.exitcode
        if code == -int(signal.SIGKILL):
            kind = FailureKind.OOM
            detail = (
                "worker killed by SIGKILL before reporting a result "
                "(likely the kernel OOM-killer)"
            )
        else:
            kind = FailureKind.WORKER_CRASH
            detail = (
                f"worker process exited with code {code} before "
                "reporting a result"
            )
        return _error_result(spec, _prefixed_error(kind, detail)), \
            elapsed, kind
    result, run_elapsed = payload
    if result.error is not None:
        kind = classify_failure(result.error) or FailureKind.EXCEPTION
        result = dataclasses.replace(
            result, error=_prefixed_error(kind, result.error)
        )
        return result, run_elapsed, kind
    return result, run_elapsed, None


# ----------------------------------------------------------------------
# The supervisor


def execute_runs_resilient(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = 1,
    use_cache: bool = False,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
    resilience: Optional[ResilienceConfig] = None,
    journal_path: Optional[str] = None,
    resume: bool = False,
    worker: WorkerFn = _execute_spec,
) -> List[RunOutcome]:
    """Execute run specs under supervision; returns ordered outcomes.

    The resilient counterpart of :func:`~repro.experiments.parallel.
    execute_runs_detailed`: every run gets its own child process (so a
    crash or hang is isolated to that run), a wall-clock timeout
    enforced from the parent, and bounded retry with backoff for
    transient failures.  Finished runs -- including quarantined
    failures -- are journaled; with ``resume=True`` previously
    completed runs replay from the journal and only failures (and
    never-started specs) are dispatched.

    On SIGINT/SIGTERM the supervisor drains: active children are
    terminated, the journal stays consistent, and ``KeyboardInterrupt``
    is raised -- re-invoke with ``resume=True`` to continue.

    ``worker`` exists for the chaos harness and tests: any picklable
    top-level function with the :data:`WorkerFn` contract can stand in
    for the real simulation worker.
    """
    if jobs is None or jobs <= 0:
        jobs = os.cpu_count() or 1
    config = resilience if resilience is not None else ResilienceConfig()
    directory = resolve_cache_dir(cache_dir)
    sweep_stale_cache_tmps(directory)
    path = journal_path or SweepJournal.default_path(directory)
    replayed = SweepJournal.replay(path) if resume else {}

    keys = [spec.cache_key() for spec in specs]
    outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
    pending: deque = deque()
    for index, spec in enumerate(specs):
        record = replayed.get(keys[index])
        if record is not None and record.ok:
            result = record.to_run_result()
            if result is not None:
                outcomes[index] = RunOutcome(
                    spec, result, record.elapsed_s, from_cache=False,
                    attempts=record.attempts, from_journal=True,
                )
                continue
        if use_cache:
            cached = cache_load(directory, spec)
            if cached is not None:
                outcomes[index] = RunOutcome(
                    spec, cached, 0.0, from_cache=True
                )
                continue
        pending.append((index, 0))

    if not pending:
        return [outcome for outcome in outcomes if outcome is not None]

    journal = SweepJournal(path)
    ctx = multiprocessing.get_context()
    active: List[_Active] = []
    delayed: List[Tuple[float, int, int]] = []  # (ready_at, index, attempt)
    stop: Dict[str, Optional[int]] = {"signal": None}

    def _request_stop(signum: int, frame: Any) -> None:
        stop["signal"] = signum

    # Signal handlers can only be installed from the main thread; a
    # supervisor running elsewhere still works, it just drains only on
    # exceptions.
    in_main = threading.current_thread() is threading.main_thread()
    previous_handlers = {}
    if in_main:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(signum, _request_stop)

    def _finalize(
        index: int,
        result: RunResult,
        attempts: int,
        elapsed: float,
        kind: Optional[FailureKind],
    ) -> None:
        spec = specs[index]
        outcomes[index] = RunOutcome(
            spec, result, elapsed, from_cache=False,
            attempts=attempts, failure_kind=kind,
        )
        journal.record(spec, result, attempts, elapsed, kind)
        if use_cache and result.error is None:
            cache_store(directory, spec, result)
        if progress is not None:
            progress(spec.protocol, spec.seed)

    def _fail(
        index: int, attempt: int, kind: FailureKind, detail: str,
        elapsed: float,
    ) -> None:
        """Retry a transient failure with backoff, else quarantine."""
        if config.retry.should_retry(kind, attempt):
            delay = config.retry.backoff_s(keys[index], attempt)
            heapq.heappush(
                delayed, (time.monotonic() + delay, index, attempt + 1)
            )
            return
        result = _error_result(specs[index], _prefixed_error(kind, detail))
        _finalize(index, result, attempt + 1, elapsed, kind)

    def _reap(entry: _Active) -> None:
        """Handle one worker whose pipe became readable (result or EOF)."""
        payload = None
        try:
            payload = entry.conn.recv()
        except (EOFError, OSError):
            payload = None  # died before reporting: classify from exit
        entry.conn.close()
        entry.proc.join(5.0)
        if entry.proc.is_alive():  # pragma: no cover - stuck post-send
            _put_down(entry.proc, config.kill_grace_s)
        elapsed = time.monotonic() - entry.started
        if payload is None:
            code = entry.proc.exitcode
            if code == -int(signal.SIGKILL):
                kind = FailureKind.OOM
                detail = (
                    "worker killed by SIGKILL before reporting a result "
                    "(likely the kernel OOM-killer)"
                )
            else:
                kind = FailureKind.WORKER_CRASH
                detail = (
                    f"worker process exited with code {code} before "
                    "reporting a result"
                )
            _fail(entry.index, entry.attempt, kind, detail, elapsed)
            return
        result, run_elapsed = payload
        if result.error is not None:
            kind = classify_failure(result.error) or FailureKind.EXCEPTION
            _fail(entry.index, entry.attempt, kind, result.error, run_elapsed)
            return
        _finalize(entry.index, result, entry.attempt + 1, run_elapsed, None)

    try:
        while (pending or delayed or active) and stop["signal"] is None:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, index, attempt = heapq.heappop(delayed)
                pending.append((index, attempt))
            while pending and len(active) < jobs:
                index, attempt = pending.popleft()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_child_main,
                    args=(child_conn, specs[index], attempt, worker),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                deadline = (
                    time.monotonic() + config.run_timeout_s
                    if config.run_timeout_s is not None else None
                )
                active.append(_Active(
                    proc=proc, conn=parent_conn, index=index,
                    attempt=attempt, started=time.monotonic(),
                    deadline=deadline,
                ))
            if not active:
                # Everything is waiting out a backoff: sleep until the
                # earliest becomes ready (in poll-sized slices so a
                # signal still drains promptly).
                if delayed:
                    time.sleep(min(
                        config.poll_interval_s,
                        max(0.0, delayed[0][0] - time.monotonic()),
                    ))
                continue
            ready = multiprocessing.connection.wait(
                [entry.conn for entry in active],
                timeout=config.poll_interval_s,
            )
            ready_set = set(ready)
            for entry in list(active):
                if entry.conn in ready_set:
                    active.remove(entry)
                    _reap(entry)
            now = time.monotonic()
            for entry in list(active):
                if entry.deadline is None or now < entry.deadline:
                    continue
                if entry.conn.poll():
                    continue  # result raced the deadline: reap next pass
                active.remove(entry)
                _put_down(entry.proc, config.kill_grace_s)
                entry.conn.close()
                _fail(
                    entry.index, entry.attempt, FailureKind.TIMEOUT,
                    (
                        f"run exceeded the {config.run_timeout_s:.1f}s "
                        "wall-clock budget; worker terminated by the "
                        "supervisor"
                    ),
                    now - entry.started,
                )
    finally:
        for entry in active:
            _put_down(entry.proc, config.kill_grace_s)
            try:
                entry.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if in_main:
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)
        journal.close()

    if stop["signal"] is not None:
        done = sum(1 for outcome in outcomes if outcome is not None)
        raise KeyboardInterrupt(
            f"sweep interrupted by signal {stop['signal']}: {done}/"
            f"{len(specs)} run(s) journaled to {path}; re-run with "
            "resume to continue"
        )
    # Clean completion: every spec has a surviving record, so superseded
    # retry lines (and any torn line inherited from a crashed ancestor
    # sweep) are dead weight -- drop them.
    SweepJournal.compact(path)
    return [outcome for outcome in outcomes if outcome is not None]
