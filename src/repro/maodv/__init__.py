"""Tree-based multicast (MAODV-like), the paper's Section 4.3 foil.

ODMRP's forwarding group is per *group* and long-lived, so multiple
sources build a redundant mesh that partially hides the baseline's bad
path choices.  Tree-based protocols such as MAODV keep per-source tree
state with no such redundancy, which is why the paper argues
high-throughput metrics "continue to be effective in multicast protocols
that are tree-based" even with many sources.

:class:`~repro.maodv.protocol.MaodvRouter` reuses ODMRP's flood/reply
machinery but replaces the forwarding rule: a node forwards data of
(group, source) only while it is on the *newest* reply tree for that
source, and a newer tree replaces the older one instead of accumulating.
"""

from repro.maodv.protocol import MaodvRouter

__all__ = ["MaodvRouter"]
