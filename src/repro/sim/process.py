"""Timer and periodic-task helpers on top of the raw event queue.

These wrap the common scheduling shapes used by the protocol stack:

* :class:`Timer` -- a restartable one-shot timer (ODMRP's delta/alpha
  windows, forwarding-group expiry).
* :class:`PeriodicTask` -- a fixed-interval recurring task with optional
  per-firing jitter (probe senders, CBR sources, JOIN QUERY refresh).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.events import EventHandle, EventPriority


class Timer:
    """Restartable one-shot timer.

    The callback fires once per ``start``; calling ``start`` while running
    restarts the countdown from now.
    """

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[[], Any],
        priority: int = EventPriority.DEFAULT,
    ) -> None:
        self._sim = sim
        self._callback = callback
        self._priority = priority
        self._handle: Optional[EventHandle] = None

    @property
    def running(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    @property
    def expires_at(self) -> Optional[float]:
        """Absolute expiry time, or None when the timer is idle."""
        return self._handle.time if self.running else None

    def start(self, delay: float) -> None:
        """(Re)start the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._handle = self._sim.schedule(
            delay, self._fire, priority=self._priority
        )

    def cancel(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()


class PeriodicTask:
    """A recurring task with a fixed interval and optional jitter.

    Jitter draws the actual gap uniformly from
    ``[interval * (1 - jitter), interval * (1 + jitter)]``, which is how
    probe senders avoid phase-locking with each other (the paper's probes
    are periodic per node but unsynchronized across nodes).
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
        priority: int = EventPriority.DEFAULT,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        if jitter > 0.0 and rng is None:
            raise ValueError("jitter requires an rng")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._jitter = jitter
        self._rng = rng
        self._priority = priority
        self._handle: Optional[EventHandle] = None
        self.firings = 0

    @property
    def running(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Start the task; first firing after ``initial_delay`` (default:
        one jittered interval)."""
        self.stop()
        delay = self._next_gap() if initial_delay is None else initial_delay
        self._handle = self._sim.schedule(
            delay, self._fire, priority=self._priority
        )

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def set_interval(self, interval: float) -> None:
        """Change the interval; takes effect from the next scheduling."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval

    def _next_gap(self) -> float:
        if self._jitter == 0.0:
            return self.interval
        assert self._rng is not None
        spread = self.interval * self._jitter
        return self._rng.uniform(self.interval - spread, self.interval + spread)

    def _fire(self) -> None:
        self.firings += 1
        # Reschedule before the callback so a callback that stops the task
        # (or changes the interval) sees consistent state.
        self._handle = self._sim.schedule(
            self._next_gap(), self._fire, priority=self._priority
        )
        self._callback()
