"""The ``dir://`` sweep backend: a lease-based work queue on a shared dir.

PR 5's resilient executor made one host's sweep survivable; this module
makes the sweep *shared*.  A coordinator publishes the run set into a
directory any number of worker processes can reach (an NFS/SMB mount
across hosts, a tmpdir in tests), and workers drain it cooperatively
with nothing but atomic filesystem primitives -- no broker, no sockets:

``<root>/sweep.json``
    The published run manifest: every ``(protocol, config, seed)`` of
    the sweep plus its content-hash key, written atomically
    (tmp + ``os.replace``).  Workers wait for it, then recompute each
    key locally -- a mismatch means the worker runs different code than
    the coordinator and aborts loudly instead of poisoning results.
``<root>/journal.jsonl``
    One shared :class:`~repro.experiments.resilience.SweepJournal`.
    Appends are single ``O_APPEND`` writes (atomic on local
    filesystems), so any number of workers journal into one file; the
    last record per key wins, exactly like a resumed local sweep.  The
    journal doubles as the *completion ledger*: a run is done when its
    surviving record is a success or a quarantined (non-retryable or
    budget-exhausted) failure.
``<root>/leases/<key>.lease``
    At-most-one-claimant lock per run.  Claiming is ``O_CREAT|O_EXCL``
    file creation; the holder re-writes the file (tmp + ``os.replace``,
    so it never vanishes mid-renewal) every ``heartbeat_interval_s``.
    A lease whose heartbeat is older than ``lease_timeout_s`` belongs
    to a dead worker: a claimant *reclaims* it by ``os.rename``-ing the
    carcass into ``leases/stale/`` (rename is atomic, so exactly one
    reclaimer wins) and claiming fresh.  A worker that discovers its
    own lease was reclaimed (it stalled past the timeout) kills the
    run and journals nothing -- the new holder owns the attempt.
``<root>/cache/<key[:2]>/<key>.json``
    The shared result cache, sharded by key prefix so a fleet-sized
    sweep never piles every entry into one directory.  Each shard is a
    plain cache directory with the existing atomic/self-healing store.
``<root>/workers/<id>.json`` and ``<root>/telemetry/``
    Per-worker counter snapshots (leases claimed / renewed / expired /
    reclaimed, runs completed / failed, queue depth) and telemetry
    traces readable by ``repro telemetry summarize``.

Determinism is untouched: runs are seed-deterministic, so *which*
worker executes a run -- or whether a killed worker's run is re-issued
to another -- cannot change its bytes.  The coordinator aggregates
incrementally as records land and returns outcomes in spec order,
bit-identical to the local backend (asserted by the perfsmoke matrix
and the chaos harness).

Caveats, stated rather than hidden: O_APPEND atomicity holds on local
and most kernel-NFS filesystems for sub-page lines like ours, but not
on every network filesystem; lease expiry compares *wall-clock* stamps
written by different hosts, so keep fleet clocks within a few seconds
(NTP-loose, not PTP-tight) and set ``lease_timeout_s`` accordingly.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.experiments.executors import SweepExecutor
from repro.experiments.parallel import (
    CACHE_SCHEMA_VERSION,
    ProgressCallback,
    RunOutcome,
    RunSpec,
    _error_result,
    _execute_spec,
    cache_load,
    cache_shard_dir,
    cache_store,
    sweep_stale_cache_tmps,
)
from repro.experiments.resilience import (
    TRANSIENT_KINDS,
    FailureKind,
    JournalRecord,
    SweepJournal,
    WorkerFn,
    classify_failure,
    supervise_single_run,
)
from repro.experiments.results import (
    AggregateResult,
    RunResult,
    aggregate_runs,
)

#: Bump when the sweep.json layout changes incompatibly.
SWEEP_MANIFEST_SCHEMA = 1

#: Set in every worker (and inherited by run children): the claiming
#: worker's id and the backend URI.  The telemetry exporter records
#: both in run manifests, so a trace pins which host produced it.
WORKER_ID_ENV = "REPRO_WORKER_ID"
BACKEND_ENV = "REPRO_SWEEP_BACKEND"


class DistributedSweepError(RuntimeError):
    """A shared sweep directory in a state that cannot be drained."""


class LeaseLostError(RuntimeError):
    """Raised mid-run when this worker's lease was reclaimed."""


@dataclass(frozen=True)
class LeaseConfig:
    """Work-queue knobs for one ``dir://`` sweep."""

    #: A lease whose heartbeat is older than this is presumed dead and
    #: may be reclaimed.  Must comfortably exceed the heartbeat
    #: interval plus worst-case scheduling stalls on any fleet host.
    lease_timeout_s: float = 15.0
    #: How often a holder re-stamps its lease.
    heartbeat_interval_s: float = 1.0
    #: Idle-worker poll cadence (journal scans, claim retries).
    poll_interval_s: float = 0.2
    #: Per-run wall-clock budget, enforced by each worker's supervisor;
    #: ``None`` disables the timeout.
    run_timeout_s: Optional[float] = None
    #: Transient-failure retry budget (same semantics as
    #: :class:`~repro.experiments.resilience.RetryPolicy.max_retries`):
    #: a run is dispatched at most ``max_retries + 1`` times fleet-wide.
    max_retries: int = 2
    #: SIGTERM-to-SIGKILL grace when putting down a run child.
    kill_grace_s: float = 1.0

    def __post_init__(self) -> None:
        if self.lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        if not (0 < self.heartbeat_interval_s < self.lease_timeout_s):
            raise ValueError(
                "heartbeat_interval_s must be positive and smaller than "
                "lease_timeout_s"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")


@dataclass(frozen=True)
class SweepDir:
    """Path layout of one shared sweep directory."""

    root: str

    @property
    def sweep_path(self) -> str:
        return os.path.join(self.root, "sweep.json")

    @property
    def journal_path(self) -> str:
        return os.path.join(self.root, "journal.jsonl")

    @property
    def leases_dir(self) -> str:
        return os.path.join(self.root, "leases")

    @property
    def stale_dir(self) -> str:
        return os.path.join(self.leases_dir, "stale")

    @property
    def cache_dir(self) -> str:
        return os.path.join(self.root, "cache")

    @property
    def workers_dir(self) -> str:
        return os.path.join(self.root, "workers")

    @property
    def telemetry_dir(self) -> str:
        return os.path.join(self.root, "telemetry")

    def uri(self) -> str:
        return f"dir://{self.root}"

    def lease_path(self, key: str) -> str:
        return os.path.join(self.leases_dir, f"{key}.lease")

    def ensure(self) -> "SweepDir":
        for path in (self.root, self.leases_dir, self.stale_dir,
                     self.cache_dir, self.workers_dir, self.telemetry_dir):
            os.makedirs(path, exist_ok=True)
        return self


def _atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def publish_sweep(sweep: SweepDir, specs: Sequence[RunSpec]) -> None:
    """Write (atomically replace) the sweep manifest workers drain."""
    from repro.experiments.spec import config_to_dict

    runs = []
    for spec in specs:
        runs.append({
            "protocol": spec.protocol.lower(),
            "seed": spec.seed,
            "key": spec.cache_key(),
            "config": config_to_dict(spec.config),
        })
    _atomic_write_json(sweep.sweep_path, {
        "schema": SWEEP_MANIFEST_SCHEMA,
        "cache_schema": CACHE_SCHEMA_VERSION,
        "published_unix": time.time(),
        "runs": runs,
    })


def load_sweep(sweep: SweepDir) -> Optional[List[RunSpec]]:
    """Read the published run set back, or None when not published yet.

    Version skew fails loudly: a worker whose code computes different
    cache keys (or speaks a different manifest/cache schema) than the
    publisher must not execute runs into the shared journal.
    """
    from repro.experiments.spec import config_from_dict

    try:
        with open(sweep.sweep_path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError:
        return None
    except ValueError as exc:
        raise DistributedSweepError(
            f"{sweep.sweep_path}: unreadable sweep manifest: {exc}"
        ) from exc
    if data.get("schema") != SWEEP_MANIFEST_SCHEMA:
        raise DistributedSweepError(
            f"{sweep.sweep_path}: sweep manifest schema "
            f"{data.get('schema')!r} not supported (this worker speaks "
            f"{SWEEP_MANIFEST_SCHEMA})"
        )
    if data.get("cache_schema") != CACHE_SCHEMA_VERSION:
        raise DistributedSweepError(
            f"{sweep.sweep_path}: sweep was published with cache schema "
            f"{data.get('cache_schema')!r} but this worker computes "
            f"schema {CACHE_SCHEMA_VERSION}; align code versions across "
            "the fleet"
        )
    specs: List[RunSpec] = []
    for index, run in enumerate(data.get("runs", [])):
        spec = RunSpec(
            protocol=run["protocol"],
            config=config_from_dict(run["config"]),
            seed=run["seed"],
        )
        if spec.cache_key() != run.get("key"):
            raise DistributedSweepError(
                f"{sweep.sweep_path}: run #{index} "
                f"({run['protocol']}/seed={run['seed']}) hashes to a "
                "different cache key on this worker than it did when "
                "published -- code version skew; align the fleet before "
                "draining"
            )
        specs.append(spec)
    return specs


# ----------------------------------------------------------------------
# Leases


@dataclass
class Lease:
    """One held claim: this worker owns attempt ``attempt`` of a run."""

    key: str
    path: str
    attempt: int
    index: int


@dataclass
class WorkerStats:
    """One worker's lifetime counters (snapshotted to ``workers/``)."""

    worker_id: str
    backend: str = ""
    claimed: int = 0
    renewed: int = 0
    expired: int = 0
    reclaimed: int = 0
    lost: int = 0
    completed: int = 0
    failed: int = 0
    cache_hits: int = 0
    queue_depth_last: int = 0
    wall_time_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        import dataclasses

        return dataclasses.asdict(self)

    def save(self, path: str) -> None:
        _atomic_write_json(path, self.to_dict())


class LeaseQueue:
    """Claim/renew/release machinery over ``<root>/leases``."""

    def __init__(
        self,
        sweep: SweepDir,
        config: LeaseConfig,
        worker_id: str,
        stats: Optional[WorkerStats] = None,
    ) -> None:
        self.sweep = sweep
        self.config = config
        self.worker_id = worker_id
        self.stats = stats if stats is not None else WorkerStats(worker_id)
        self._reclaim_serial = 0

    def _payload(self, attempt: int) -> Dict[str, Any]:
        return {
            "worker": self.worker_id,
            "attempt": attempt,
            "heartbeat_unix": time.time(),
        }

    def _read(self, path: str) -> Optional[Dict[str, Any]]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    def _expired(self, path: str) -> bool:
        """Is the lease at ``path`` older than the timeout?

        The embedded heartbeat stamp is authoritative; an unreadable
        lease (a claimant killed between O_EXCL create and the first
        write) falls back to file mtime so it cannot wedge the queue.
        """
        data = self._read(path)
        if data is not None and isinstance(
            data.get("heartbeat_unix"), (int, float)
        ):
            stamp = float(data["heartbeat_unix"])
        else:
            try:
                stamp = os.stat(path).st_mtime
            except OSError:
                return False  # vanished: released or already reclaimed
        return (time.time() - stamp) > self.config.lease_timeout_s

    def _reclaim(self, path: str) -> bool:
        """Move an expired lease carcass aside; True if *we* won."""
        self._reclaim_serial += 1
        dest = os.path.join(
            self.sweep.stale_dir,
            f"{os.path.basename(path)}."
            f"{self.worker_id}.{self._reclaim_serial}",
        )
        try:
            os.rename(path, dest)
        except OSError:
            return False  # another claimant renamed it first
        self.stats.reclaimed += 1
        return True

    def try_claim(self, key: str, attempt: int, index: int) -> Optional[Lease]:
        """Claim one run: O_EXCL create, reclaiming an expired holder."""
        path = self.sweep.lease_path(key)
        for _ in range(2):  # second pass only after a won reclaim
            try:
                fd = os.open(
                    path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
                )
            except FileExistsError:
                if not self._expired(path):
                    return None  # live holder
                self.stats.expired += 1
                if not self._reclaim(path):
                    return None  # lost the reclaim race
                continue
            try:
                data = json.dumps(
                    self._payload(attempt), sort_keys=True
                ).encode("utf-8")
                os.write(fd, data)
                os.fsync(fd)
            finally:
                os.close(fd)
            self.stats.claimed += 1
            return Lease(key=key, path=path, attempt=attempt, index=index)
        return None

    def renew(self, lease: Lease) -> bool:
        """Re-stamp a held lease; False if it is no longer ours.

        The rewrite goes through tmp + ``os.replace`` so the lease file
        never disappears mid-renewal (an O_EXCL claimant can never
        sneak in).  If the current file names a *different* worker, our
        lease was reclaimed while we stalled: the caller must abandon
        the run without journaling.
        """
        data = self._read(lease.path)
        if data is None or data.get("worker") != self.worker_id:
            return False
        tmp = f"{lease.path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(
                    self._payload(lease.attempt), handle, sort_keys=True
                )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, lease.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self.stats.renewed += 1
        return True

    def release(self, lease: Lease) -> None:
        try:
            os.unlink(lease.path)
        except OSError:
            pass  # reclaimed from under us; the new holder owns it


# ----------------------------------------------------------------------
# Completion ledger semantics


def record_is_final(record: JournalRecord, max_retries: int) -> bool:
    """Does this journal record settle its run, or is a retry owed?

    Mirrors the resilient executor's policy: successes and
    deterministic (non-transient) failures are final; transient
    failures are final only once the fleet-wide dispatch count exceeds
    the retry budget.
    """
    if record.ok:
        return True
    kind: Optional[FailureKind] = None
    if record.failure_kind:
        try:
            kind = FailureKind(record.failure_kind)
        except ValueError:
            kind = None
    if kind is None:
        error = (record.result or {}).get("error")
        kind = classify_failure(error) or FailureKind.EXCEPTION
    if kind not in TRANSIENT_KINDS:
        return True
    return record.attempts > max_retries


def _default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


# ----------------------------------------------------------------------
# The worker


def drain_worker(
    root: str,
    worker_id: Optional[str] = None,
    lease: Optional[LeaseConfig] = None,
    worker_fn: WorkerFn = _execute_spec,
    use_cache: bool = True,
    wait_for_sweep_s: float = 30.0,
    max_runs: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
) -> WorkerStats:
    """Drain one shared sweep until no claimable work remains.

    The loop: scan the journal for non-final runs, claim one lease
    (reclaiming expired holders), serve it from the sharded cache or
    execute it under single-run supervision (heartbeating the lease
    from the poll hook), journal the outcome, release, repeat.  Exits
    when every run is final -- or after ``max_runs`` executions, for
    bounded smoke jobs.  On exit the worker snapshots its counters to
    ``workers/<id>.json`` and writes a telemetry trace.
    """
    config = lease if lease is not None else LeaseConfig()
    sweep = SweepDir(os.path.abspath(root)).ensure()
    wid = worker_id or _default_worker_id()
    stats = WorkerStats(worker_id=wid, backend=sweep.uri())
    queue = LeaseQueue(sweep, config, wid, stats)
    os.environ[WORKER_ID_ENV] = wid
    os.environ[BACKEND_ENV] = sweep.uri()
    started = time.monotonic()

    def say(message: str) -> None:
        if log is not None:
            log(f"[{wid}] {message}")

    specs: Optional[List[RunSpec]] = None
    deadline = time.monotonic() + wait_for_sweep_s
    while specs is None:
        specs = load_sweep(sweep)
        if specs is None:
            if time.monotonic() >= deadline:
                raise DistributedSweepError(
                    f"no sweep manifest appeared at {sweep.sweep_path} "
                    f"within {wait_for_sweep_s:.0f}s"
                )
            time.sleep(config.poll_interval_s)
    keys = [spec.cache_key() for spec in specs]
    say(f"joined sweep: {len(specs)} run(s)")

    executed = 0
    try:
        while True:
            records = SweepJournal.replay(sweep.journal_path)
            open_items = [
                (index, key) for index, key in enumerate(keys)
                if key not in records
                or not record_is_final(records[key], config.max_retries)
            ]
            stats.queue_depth_last = len(open_items)
            if not open_items:
                say("sweep drained")
                break
            held: Optional[Lease] = None
            for index, key in open_items:
                prior = records.get(key)
                attempt = prior.attempts if prior is not None else 0
                held = queue.try_claim(key, attempt, index)
                if held is not None:
                    break
            if held is None:
                # Everything open is leased to live workers (or we lost
                # every race this pass): wait for the field to move.
                time.sleep(config.poll_interval_s)
                continue
            spec = specs[held.index]
            if use_cache:
                shard = cache_shard_dir(sweep.cache_dir, held.key)
                cached = cache_load(shard, spec)
                if cached is not None:
                    SweepJournal.append_record(
                        sweep.journal_path,
                        SweepJournal.build_record(
                            spec, cached, held.attempt, 0.0,
                            worker=wid, cached=True,
                        ),
                    )
                    queue.release(held)
                    stats.cache_hits += 1
                    say(f"cache hit {spec.protocol}/seed={spec.seed}")
                    continue
            last_beat = time.monotonic()

            def heartbeat() -> None:
                nonlocal last_beat
                now = time.monotonic()
                if now - last_beat < config.heartbeat_interval_s:
                    return
                last_beat = now
                if not queue.renew(held):
                    raise LeaseLostError(held.key)

            say(
                f"run {spec.protocol}/seed={spec.seed} "
                f"attempt={held.attempt}"
            )
            try:
                result, elapsed, kind = supervise_single_run(
                    spec,
                    attempt=held.attempt,
                    worker=worker_fn,
                    run_timeout_s=config.run_timeout_s,
                    kill_grace_s=config.kill_grace_s,
                    poll_interval_s=min(
                        0.05, config.heartbeat_interval_s
                    ),
                    on_poll=heartbeat,
                )
            except LeaseLostError:
                # We stalled past the lease timeout and another worker
                # took the run.  It owns the attempt now; journaling
                # ours could double-count the dispatch budget.
                stats.lost += 1
                say(f"lease lost on {spec.protocol}/seed={spec.seed}")
                continue
            executed += 1
            SweepJournal.append_record(
                sweep.journal_path,
                SweepJournal.build_record(
                    spec, result, held.attempt + 1, elapsed, kind,
                    worker=wid,
                ),
            )
            if result.error is None:
                stats.completed += 1
                if use_cache:
                    cache_store(
                        cache_shard_dir(sweep.cache_dir, held.key),
                        spec, result,
                    )
            else:
                stats.failed += 1
            queue.release(held)
            if max_runs is not None and executed >= max_runs:
                say(f"stopping after {executed} run(s) (max-runs)")
                break
    finally:
        stats.wall_time_s = time.monotonic() - started
        try:
            stats.save(os.path.join(sweep.workers_dir, f"{wid}.json"))
            _export_worker_telemetry(sweep, stats)
        except OSError:  # pragma: no cover - stats are best-effort
            pass
    return stats


def _export_worker_telemetry(sweep: SweepDir, stats: WorkerStats) -> str:
    """Write one worker's counters as a telemetry trace.

    The trace is a normal ``repro telemetry`` artifact (manifest +
    instruments), so ``repro telemetry summarize
    <root>/telemetry/worker-<id>.jsonl`` works out of the box.
    """
    from repro.telemetry.export import write_trace
    from repro.telemetry.hub import TelemetryConfig, TelemetryHub
    from repro.telemetry.manifest import build_manifest

    hub = TelemetryHub(TelemetryConfig(enabled=True))
    counters = {
        "worker.leases.claimed": stats.claimed,
        "worker.leases.renewed": stats.renewed,
        "worker.leases.expired": stats.expired,
        "worker.leases.reclaimed": stats.reclaimed,
        "worker.leases.lost": stats.lost,
        "worker.runs.completed": stats.completed,
        "worker.runs.failed": stats.failed,
        "worker.runs.cache_hits": stats.cache_hits,
    }
    for name, value in counters.items():
        hub.counter(name, "distributed worker counter").inc(value)
    hub.gauge(
        "worker.queue.depth", "open runs at last journal scan"
    ).set(stats.queue_depth_last)
    manifest = build_manifest(
        protocol="worker",
        config={"worker_id": stats.worker_id, "backend": stats.backend},
        seed=0,
        wall_time_s=stats.wall_time_s,
        extra={
            "worker_id": stats.worker_id,
            "backend": stats.backend,
            **{key.split(".", 1)[1]: value
               for key, value in counters.items()},
        },
    )
    path = os.path.join(
        sweep.telemetry_dir, f"worker-{stats.worker_id}.jsonl"
    )
    return write_trace(path, hub, manifest)


def _worker_process_main(
    root: str,
    worker_id: str,
    lease: LeaseConfig,
    worker_fn: WorkerFn,
    use_cache: bool,
) -> None:
    """Entry point for coordinator-spawned worker processes."""
    drain_worker(
        root, worker_id=worker_id, lease=lease, worker_fn=worker_fn,
        use_cache=use_cache, wait_for_sweep_s=60.0,
    )


# ----------------------------------------------------------------------
# Incremental aggregation


class IncrementalAggregator:
    """``AggregateResult`` built as journal records land.

    Results are slotted into spec order as they arrive, so any
    snapshot -- including the final one -- equals
    :func:`~repro.experiments.results.aggregate_runs` over the landed
    results *in spec order*: the coordinator's report is bit-identical
    to a serial sweep's no matter the completion order.
    """

    def __init__(self, specs: Sequence[RunSpec]) -> None:
        self._index: Dict[str, int] = {}
        for position, spec in enumerate(specs):
            self._index.setdefault(spec.cache_key(), position)
        self._results: List[Optional[RunResult]] = [None] * len(specs)
        self.landed = 0

    @property
    def total(self) -> int:
        return len(self._results)

    @property
    def done(self) -> bool:
        return self.landed == self.total

    def add(self, key: str, result: RunResult) -> bool:
        """Slot one landed result; False for unknown/duplicate keys."""
        position = self._index.get(key)
        if position is None or self._results[position] is not None:
            return False
        self._results[position] = result
        self.landed += 1
        return True

    def results(self) -> List[RunResult]:
        """Landed results in spec order."""
        return [result for result in self._results if result is not None]

    def aggregates(self) -> List[AggregateResult]:
        return aggregate_runs(self.results())


# ----------------------------------------------------------------------
# The coordinator


class DirExecutor(SweepExecutor):
    """Coordinator side of the ``dir://`` backend.

    ``submit`` publishes the sweep into the shared directory;
    ``collect`` spawns ``workers`` local worker processes (zero is
    valid -- then only external ``repro worker`` processes drain),
    tails the shared journal, feeds an :class:`IncrementalAggregator`
    and the progress callback as records land, and returns outcomes in
    spec order.  On clean completion the journal is compacted.
    """

    def __init__(
        self,
        root: str,
        workers: int = 1,
        lease: Optional[LeaseConfig] = None,
        use_cache: bool = True,
        resume: bool = False,
        worker_fn: WorkerFn = _execute_spec,
    ) -> None:
        self.sweep = SweepDir(os.path.abspath(root))
        self.workers = max(0, workers)
        self.lease = lease if lease is not None else LeaseConfig()
        self.use_cache = use_cache
        self.resume = resume
        self.worker_fn = worker_fn
        self.aggregator: Optional[IncrementalAggregator] = None
        self._specs: Optional[List[RunSpec]] = None
        self._keys: List[str] = []
        self._replayed: Dict[str, JournalRecord] = {}
        self._procs: List[Any] = []

    def submit(self, specs: Sequence[RunSpec]) -> None:
        if self._specs is not None:
            raise RuntimeError("executor already has a submitted sweep")
        self._specs = list(specs)
        self._keys = [spec.cache_key() for spec in self._specs]
        self.sweep.ensure()
        if self.use_cache:
            for name in sorted(os.listdir(self.sweep.cache_dir)):
                shard = os.path.join(self.sweep.cache_dir, name)
                if os.path.isdir(shard):
                    sweep_stale_cache_tmps(shard)
        journal_path = self.sweep.journal_path
        if self.resume:
            replayed = SweepJournal.replay(journal_path)
            self._replayed = {
                key: record for key, record in replayed.items()
                if record_is_final(record, self.lease.max_retries)
            }
        elif os.path.exists(journal_path):
            # A fresh (non-resume) sweep must not inherit records for
            # its own runs -- the journal is the completion ledger, so
            # stale records would make them "already done".  Rotate the
            # old journal aside (never silently truncate) but only when
            # it actually overlaps: disjoint records (another sub-sweep
            # of the same experiment, e.g. a different mobility model)
            # are harmless and rotation would orphan them mid-flight.
            stale = SweepJournal.replay(journal_path)
            if any(key in stale for key in self._keys):
                suffix = 1
                while os.path.exists(f"{journal_path}.old{suffix}"):
                    suffix += 1
                os.replace(journal_path, f"{journal_path}.old{suffix}")
        publish_sweep(self.sweep, self._specs)
        self.aggregator = IncrementalAggregator(self._specs)

    def collect(
        self, progress: Optional[ProgressCallback] = None
    ) -> List[RunOutcome]:
        if self._specs is None or self.aggregator is None:
            raise RuntimeError("collect() before submit()")
        ctx = multiprocessing.get_context()
        for number in range(min(self.workers, len(self._specs))):
            proc = ctx.Process(
                target=_worker_process_main,
                args=(
                    self.sweep.root,
                    f"coord{os.getpid()}-w{number}",
                    self.lease,
                    self.worker_fn,
                    self.use_cache,
                ),
            )
            proc.start()
            self._procs.append(proc)

        final: Dict[str, JournalRecord] = {}
        wanted = set(self._keys)
        try:
            while True:
                records = SweepJournal.replay(self.sweep.journal_path)
                for key, record in records.items():
                    if key not in wanted or key in final:
                        continue
                    if not record_is_final(record, self.lease.max_retries):
                        continue
                    final[key] = record
                    result = record.to_run_result()
                    if result is not None:
                        self.aggregator.add(key, result)
                    if progress is not None:
                        progress(record.protocol, record.seed)
                if len(final) == len(wanted):
                    break
                if self._procs and all(
                    proc.exitcode is not None for proc in self._procs
                ):
                    codes = sorted(
                        {proc.exitcode for proc in self._procs}
                    )
                    raise DistributedSweepError(
                        f"all {len(self._procs)} spawned worker(s) "
                        f"exited (codes {codes}) with "
                        f"{len(wanted) - len(final)} run(s) unfinished; "
                        f"journal: {self.sweep.journal_path} -- re-run "
                        "with resume to continue"
                    )
                time.sleep(self.lease.poll_interval_s)
        except KeyboardInterrupt:
            self.abort()
            raise KeyboardInterrupt(
                f"distributed sweep interrupted: {len(final)}/"
                f"{len(wanted)} run(s) final in "
                f"{self.sweep.journal_path}; re-run with resume to "
                "continue"
            ) from None
        finally:
            self._join_workers()

        SweepJournal.compact(self.sweep.journal_path)
        outcomes: List[RunOutcome] = []
        for index, spec in enumerate(self._specs):
            record = final[self._keys[index]]
            result = record.to_run_result()
            if result is None:  # pragma: no cover - schema drift
                result = _error_result(
                    spec,
                    "EXCEPTION: journal record does not match the "
                    "current RunResult schema",
                )
            kind: Optional[FailureKind] = None
            if record.failure_kind:
                try:
                    kind = FailureKind(record.failure_kind)
                except ValueError:
                    kind = None
            outcomes.append(RunOutcome(
                spec,
                result,
                record.elapsed_s,
                from_cache=record.cached,
                attempts=max(1, record.attempts),
                failure_kind=kind,
                from_journal=self._keys[index] in self._replayed,
            ))
        return outcomes

    def _join_workers(self) -> None:
        for proc in self._procs:
            proc.join(10.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.kill()
                proc.join(2.0)

    def abort(self) -> None:
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        self._join_workers()

    def close(self) -> None:
        self.abort()
