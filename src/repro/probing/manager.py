"""Probing orchestration and the rate knobs of the overhead experiments.

``prober_kind_for_metric`` encodes the paper's pairing: ETX, METX and SPP
need only the loss-ratio probes (one small broadcast probe / 5 s), while
PP and ETT need packet pairs (small+large / 10 s).  Hop count (original
ODMRP) probes nothing.

``ProbingConfig.rate_multiplier`` scales the probe *frequency*: the paper
evaluates 5x higher ("Throughput-high overhead", Figure 2) and 10x lower
(Section 4.2.2 text) probing rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.core.metrics import RouteMetric
from repro.net.network import Network
from repro.probing.broadcast_probe import BroadcastProbeAgent
from repro.probing.neighbor_table import NeighborTable
from repro.probing.packet_pair import PacketPairAgent


@dataclass
class ProbingConfig:
    """Probe timing and sizing.

    Probe sizes are calibrated so the *relative* per-metric overheads
    reproduce Table 1's ordering: the packet-pair metrics (ETT, PP) cost
    roughly 4-5x the single-probe metrics (ETX, METX, SPP).  ETT's probes
    are slightly larger than PP's (they additionally carry loss-ratio and
    bandwidth report fields); SPP's are the leanest (a bare sequence
    number), then METX, then ETX -- matching the small spread the paper
    measured (0.53 / 0.61 / 0.66 %).
    """

    broadcast_interval_s: float = 5.0
    pair_interval_s: float = 10.0
    rate_multiplier: float = 1.0
    #: Use the congestion-responsive adaptive prober (future-work
    #: extension) for the broadcast-probe metrics (ETX/METX/SPP).
    adaptive: bool = False
    window_intervals: int = 10
    ewma_history_weight: float = 0.9
    loss_penalty_factor: float = 1.2
    probe_size_bytes: Dict[str, int] = None  # type: ignore[assignment]
    pair_small_bytes: Dict[str, int] = None  # type: ignore[assignment]
    pair_large_bytes: Dict[str, int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.rate_multiplier <= 0:
            raise ValueError("rate multiplier must be positive")
        # Absolute sizes are calibrated so Table 1's overhead percentages
        # (probe bytes / data bytes received) land on the paper's values
        # at full scale; the paper itself does not give probe sizes.
        if self.probe_size_bytes is None:
            self.probe_size_bytes = {"etx": 61, "metx": 57, "spp": 49}
        # WCETT's link measurement *is* forward-only ETT (see
        # repro.multichannel.wcett), so it probes with ETT-sized pairs.
        if self.pair_small_bytes is None:
            self.pair_small_bytes = {"pp": 106, "ett": 129, "wcett": 129}
        if self.pair_large_bytes is None:
            self.pair_large_bytes = {"pp": 372, "ett": 441, "wcett": 441}

    @property
    def effective_broadcast_interval_s(self) -> float:
        return self.broadcast_interval_s / self.rate_multiplier

    @property
    def effective_pair_interval_s(self) -> float:
        return self.pair_interval_s / self.rate_multiplier


def prober_kind_for_metric(metric_name: str) -> Optional[str]:
    """Which prober a metric needs: "broadcast", "pair", or None."""
    name = metric_name.lower()
    if name in ("etx", "metx", "spp"):
        return "broadcast"
    if name in ("pp", "ett", "wcett"):
        return "pair"
    if name == "hopcount":
        return None
    raise ValueError(f"unknown metric {metric_name!r}")


class ProbingManager:
    """Attaches neighbor tables and probers for one metric to a network."""

    def __init__(
        self,
        network: Network,
        metric: RouteMetric,
        config: Optional[ProbingConfig] = None,
    ) -> None:
        self.network = network
        self.metric = metric
        self.config = config or ProbingConfig()
        self.tables: Dict[int, NeighborTable] = {}
        self.agents: List[Union[BroadcastProbeAgent, PacketPairAgent]] = []
        self._build()

    def _build(self) -> None:
        config = self.config
        prober = prober_kind_for_metric(self.metric.name)
        for node in self.network.nodes:
            self.tables[node.node_id] = NeighborTable(
                self.network.sim,
                node,
                window_intervals=config.window_intervals,
                ewma_history_weight=config.ewma_history_weight,
                loss_penalty_factor=config.loss_penalty_factor,
            )
            if prober == "broadcast":
                if config.adaptive:
                    from repro.probing.adaptive import (
                        AdaptiveProbeAgent,
                        AdaptiveProbingConfig,
                    )

                    self.agents.append(
                        AdaptiveProbeAgent(
                            self.network.sim,
                            node,
                            AdaptiveProbingConfig(
                                base_interval_s=(
                                    config.effective_broadcast_interval_s
                                ),
                            ),
                            probe_size_bytes=(
                                config.probe_size_bytes[self.metric.name]
                            ),
                        )
                    )
                else:
                    self.agents.append(
                        BroadcastProbeAgent(
                            self.network.sim,
                            node,
                            interval_s=config.effective_broadcast_interval_s,
                            probe_size_bytes=config.probe_size_bytes[self.metric.name],
                        )
                    )
            elif prober == "pair":
                self.agents.append(
                    PacketPairAgent(
                        self.network.sim,
                        node,
                        interval_s=config.effective_pair_interval_s,
                        small_size_bytes=config.pair_small_bytes[self.metric.name],
                        large_size_bytes=config.pair_large_bytes[self.metric.name],
                    )
                )

    def start(self) -> None:
        for agent in self.agents:
            agent.start()

    def stop(self) -> None:
        for agent in self.agents:
            agent.stop()

    def table(self, node_id: int) -> NeighborTable:
        return self.tables[node_id]

    def probe_bytes_sent(self) -> float:
        """Total probe bytes put on the air (Table 1 numerator)."""
        return (
            self.network.total_counter("tx.probe.bytes")
            + self.network.total_counter("tx.probe_pair_small.bytes")
            + self.network.total_counter("tx.probe_pair_large.bytes")
        )
