"""Tests for the testbed emulation: floor map, link model, ping, emulator."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.rng import RngRegistry
from repro.testbed.emulator import (
    DEFAULT_GROUPS,
    TestbedScenarioConfig,
    build_testbed_scenario,
)
from repro.testbed.floormap import (
    TESTBED_NODE_IDS,
    lossy_link_keys,
    low_loss_link_keys,
    testbed_links,
    testbed_positions,
)
from repro.testbed.linkmodel import (
    LOSS_POWER_MW,
    STRONG_POWER_MW,
    WEAK_POWER_MW,
    LinkProfile,
    TimeVaryingLoss,
    testbed_radio_params as make_testbed_params,
)
from repro.testbed.ping import classify_links_by_ping, symmetric_classification


class TestFloorMap:
    def test_eight_nodes_with_paper_labels(self):
        assert TESTBED_NODE_IDS == (1, 2, 3, 4, 5, 7, 9, 10)
        assert set(testbed_positions()) == set(TESTBED_NODE_IDS)

    def test_links_reference_real_nodes(self):
        nodes = set(TESTBED_NODE_IDS)
        for link_def in testbed_links():
            assert link_def.node_a in nodes
            assert link_def.node_b in nodes
            assert link_def.node_a != link_def.node_b

    def test_narrative_links_present(self):
        """The links the Section 5.3 narrative depends on."""
        lossy = set(lossy_link_keys())
        low = set(low_loss_link_keys())
        # One-hop lossy shortcuts:
        assert frozenset((2, 5)) in lossy
        assert frozenset((4, 7)) in lossy
        assert frozenset((1, 3)) in lossy
        assert frozenset((9, 3)) in lossy
        # Their two-hop low-loss alternatives:
        assert frozenset((2, 10)) in low and frozenset((10, 5)) in low
        assert frozenset((4, 9)) in low and frozenset((9, 7)) in low

    def test_no_link_both_classes(self):
        assert not set(lossy_link_keys()) & set(low_loss_link_keys())

    def test_graph_is_connected(self):
        adjacency = {}
        for link_def in testbed_links():
            adjacency.setdefault(link_def.node_a, set()).add(link_def.node_b)
            adjacency.setdefault(link_def.node_b, set()).add(link_def.node_a)
        seen = set()
        stack = [TESTBED_NODE_IDS[0]]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency.get(node, ()))
        assert seen == set(TESTBED_NODE_IDS)


class TestTimeVaryingLoss:
    @given(
        low=st.floats(min_value=0.0, max_value=0.5),
        spread=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=99),
        probes=st.lists(
            st.floats(min_value=0.0, max_value=2000.0),
            min_size=1, max_size=20,
        ),
    )
    @settings(max_examples=50)
    def test_stays_in_band(self, low, spread, seed, probes):
        process = TimeVaryingLoss(low, low + spread, random.Random(seed))
        for t in sorted(probes):
            assert low <= process.loss_at(t) <= low + spread

    def test_walk_actually_moves(self):
        process = TimeVaryingLoss(0.4, 0.6, random.Random(7),
                                  update_interval_s=5.0)
        values = {round(process.loss_at(t), 6) for t in range(0, 500, 5)}
        assert len(values) > 10

    def test_deterministic_given_rng(self):
        a = TimeVaryingLoss(0.4, 0.6, random.Random(3))
        b = TimeVaryingLoss(0.4, 0.6, random.Random(3))
        assert [a.loss_at(t) for t in (0, 50, 100)] == [
            b.loss_at(t) for t in (0, 50, 100)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeVaryingLoss(0.8, 0.2, random.Random(0))
        with pytest.raises(ValueError):
            TimeVaryingLoss(0.0, 1.5, random.Random(0))
        with pytest.raises(ValueError):
            TimeVaryingLoss(0.1, 0.2, random.Random(0), update_interval_s=0.0)


class TestLinkProfile:
    def test_power_levels_satisfy_capture_design(self):
        """Strong frames must capture over weak ones; equal frames must
        collide (10 dB SINR rule)."""
        params = make_testbed_params()
        assert STRONG_POWER_MW / WEAK_POWER_MW >= params.sinr_threshold_linear
        assert WEAK_POWER_MW >= params.rx_threshold_mw
        assert LOSS_POWER_MW < params.rx_threshold_mw
        assert LOSS_POWER_MW >= params.carrier_sense_threshold_mw

    def test_rejects_sub_loss_power(self):
        with pytest.raises(ValueError):
            LinkProfile(
                loss=TimeVaryingLoss(0.0, 0.1, random.Random(0)),
                power_mw=LOSS_POWER_MW / 2,
            )


class TestPingClassification:
    def test_recovers_figure4_classes(self):
        """Ping probing over the emulated testbed reproduces the Figure 4
        solid/dashed classification."""
        scenario = build_testbed_scenario(
            "odmrp", TestbedScenarioConfig(run_seed=2)
        )
        directed = classify_links_by_ping(
            scenario.network, pings_per_node=150, lossy_threshold=0.25
        )
        merged = symmetric_classification(directed)
        verdict_by_label = {
            frozenset(
                scenario.index_to_label[i] for i in key
            ): verdict.lossy
            for key, verdict in merged.items()
        }
        for key in lossy_link_keys():
            assert verdict_by_label[key] is True, f"{set(key)} should be lossy"
        for key in low_loss_link_keys():
            assert verdict_by_label[key] is False, (
                f"{set(key)} should be low-loss"
            )

    def test_validation(self):
        scenario = build_testbed_scenario("odmrp")
        with pytest.raises(ValueError):
            classify_links_by_ping(scenario.network, pings_per_node=0)


class TestEmulator:
    def test_group_setup_matches_paper(self):
        scenario = build_testbed_scenario("odmrp")
        assert DEFAULT_GROUPS == ((2, (3, 5)), (4, (1, 7)))
        sources = {
            (g, scenario.index_to_label[s])
            for g, s in scenario.groups.all_sources()
        }
        assert sources == {(1, 2), (2, 4)}
        members = {
            (g, scenario.index_to_label[m])
            for g, m in scenario.groups.all_members()
        }
        assert members == {(1, 3), (1, 5), (2, 1), (2, 7)}

    def test_end_to_end_delivery(self):
        config = TestbedScenarioConfig(duration_s=60.0, warmup_s=10.0)
        scenario = build_testbed_scenario("spp", config)
        scenario.run()
        assert scenario.sink.total_packets > 0
        assert scenario.offered_packets() > 0
        assert scenario.expected_deliveries() == 2 * scenario.offered_packets()

    def test_same_seed_same_loss_environment_across_protocols(self):
        config = TestbedScenarioConfig(run_seed=5)
        a = build_testbed_scenario("odmrp", config)
        b = build_testbed_scenario("spp", config)
        rates_a = a.network.channel.current_loss_rates()
        rates_b = b.network.channel.current_loss_rates()
        assert rates_a == rates_b

    def test_unknown_protocol_rejected(self):
        # ("wcett" used to be the canary here, but it is a registered
        # protocol now and runs over the testbed like any other entry.)
        with pytest.raises(ValueError):
            build_testbed_scenario("dsdv")

    def test_heavily_used_links_structure(self):
        config = TestbedScenarioConfig(duration_s=60.0, warmup_s=10.0)
        scenario = build_testbed_scenario("pp", config)
        scenario.run()
        links = scenario.heavily_used_links(min_share=0.05)
        assert links, "some links must carry data"
        labels = set(TESTBED_NODE_IDS)
        for src, dst, share in links:
            assert src in labels and dst in labels
            assert 0.05 <= share <= 1.0
        shares = [share for _s, _d, share in links]
        assert shares == sorted(shares, reverse=True)
