"""Evaluation harness: scenario builders, sweep runner, figure reproductions.

* :mod:`repro.experiments.scenarios` -- build a ready-to-run protocol
  stack (network + probing + routers + traffic) for one protocol variant.
* :mod:`repro.experiments.runner` -- run variants across topologies and
  collect :class:`~repro.experiments.results.RunResult` rows.
* :mod:`repro.experiments.results` -- aggregation and normalization.
* :mod:`repro.experiments.spec` -- declarative, serializable
  :class:`~repro.experiments.spec.ExperimentSpec` sweeps (TOML/JSON).
* :mod:`repro.experiments.figures` -- one entry point per paper table or
  figure (the benchmark suite calls these).
* :mod:`repro.experiments.resilience` -- supervised sweep execution:
  per-run timeouts, retry with backoff, a failure taxonomy, and a
  durable journal enabling ``repro run --resume``.
* :mod:`repro.experiments.chaos` -- fault injection harness asserting
  the supervisor recovers (``repro chaos`` / ``pytest -m chaos``).
* :mod:`repro.experiments.adaptive` -- sequential seed allocation with
  CI-driven stopping and paired common-random-number comparisons
  (``repro run --adaptive``).
"""

from repro.experiments.adaptive import (
    AdaptiveConfig,
    AdaptiveResult,
    run_adaptive_experiment,
)
from repro.experiments.faults import (
    FailureInjector,
    FaultPlan,
    FlappingSpec,
    OutageWindow,
)
from repro.experiments.report import render_report
from repro.experiments.resilience import (
    FailureKind,
    ResilienceConfig,
    RetryPolicy,
    SweepJournal,
    classify_failure,
    execute_runs_resilient,
)
from repro.experiments.results import (
    AggregateResult,
    RunResult,
    aggregate_runs,
    normalized_metric_table,
)
from repro.experiments.runner import (
    compare_protocols,
    run_experiment,
    run_protocol,
)
from repro.experiments.scenarios import (
    PROTOCOL_NAMES,
    SimulationScenario,
    SimulationScenarioConfig,
    build_simulation_scenario,
)
from repro.experiments.spec import (
    ExperimentSpec,
    SpecError,
    load_experiment_spec,
)

__all__ = [
    "AdaptiveConfig",
    "AdaptiveResult",
    "run_adaptive_experiment",
    "SimulationScenarioConfig",
    "SimulationScenario",
    "build_simulation_scenario",
    "PROTOCOL_NAMES",
    "ExperimentSpec",
    "SpecError",
    "load_experiment_spec",
    "run_experiment",
    "run_protocol",
    "compare_protocols",
    "RunResult",
    "AggregateResult",
    "aggregate_runs",
    "normalized_metric_table",
    "render_report",
    "FailureKind",
    "ResilienceConfig",
    "RetryPolicy",
    "SweepJournal",
    "classify_failure",
    "execute_runs_resilient",
    "FailureInjector",
    "FaultPlan",
    "FlappingSpec",
    "OutageWindow",
]
