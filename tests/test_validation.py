"""The repro.validation subsystem: invariant monitors + fuzz oracle.

Three layers of evidence:

1. Clean runs of every paper protocol pass the full monitor suite, and
   attaching the suite does not change a run's measured results.
2. Deliberately injected bugs (power leaks, a broken metric algebra,
   immortal forwarding state, a double-counting sink, shared RNG
   streams, an upstream cycle) are each caught by the matching monitor,
   with a replayable violation report.
3. The differential fuzz oracle (``pytest -m fuzz``) holds randomly
   generated scenarios to bit-identical results across the serial,
   pooled, cached, and telemetry-enabled execution paths.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.runner import run_protocol
from repro.experiments.scenarios import (
    PROTOCOL_NAMES,
    SimulationScenarioConfig,
    build_simulation_scenario,
)
from repro.experiments.spec import ExperimentSpec
from repro.net.node import Node
from repro.odmrp.state import ForwardingGroupState, QueryRoundState
from repro.traffic.sink import MulticastSink
from repro.validation.fuzzing import (
    default_validation_spec,
    differential_check,
    random_spec,
    run_with_invariants,
    write_replay_spec,
)
from repro.validation.invariants import (
    InvariantViolation,
    ValidationConfig,
    build_suite,
    monitor_names,
)
from repro.validation.monitors import _find_cycle


def mini_config(**overrides) -> SimulationScenarioConfig:
    defaults = dict(
        num_nodes=10,
        area_width_m=500.0,
        area_height_m=500.0,
        num_groups=1,
        members_per_group=3,
        duration_s=10.0,
        warmup_s=3.0,
        topology_seed=2,
        validation=ValidationConfig(enabled=True, check_interval_s=1.0),
    )
    defaults.update(overrides)
    return SimulationScenarioConfig(**defaults)


def run_validated(protocol: str, **overrides):
    scenario = build_simulation_scenario(protocol, mini_config(**overrides))
    scenario.run()
    return scenario


class TestSuitePlumbing:
    def test_all_builtin_monitors_registered(self):
        assert set(monitor_names()) >= {
            "channel-conservation",
            "data-provenance",
            "metric-accumulation",
            "forwarding-state",
            "rng-isolation",
        }

    def test_unknown_monitor_name_rejected(self):
        scenario = build_simulation_scenario(
            "odmrp", mini_config(validation=ValidationConfig())
        )
        with pytest.raises(ValueError, match="unknown invariant monitor"):
            build_suite(
                ValidationConfig(enabled=True, monitors=("no-such",)),
                scenario,
            )

    def test_check_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            ValidationConfig(enabled=True, check_interval_s=0.0)

    def test_disabled_config_builds_no_suite(self):
        scenario = build_simulation_scenario(
            "odmrp", mini_config(validation=ValidationConfig())
        )
        assert scenario.validation is None

    def test_violation_report_carries_replay_triple(self):
        violation = InvariantViolation(
            "channel-conservation",
            "leaked 3 mW",
            time=12.5,
            node_id=4,
            protocol="spp",
            seed=7,
            config=SimulationScenarioConfig(),
        )
        assert violation.replay[0] == "spp"
        assert violation.replay[2] == 7
        text = violation.report()
        assert "[channel-conservation]" in text
        assert "t=12.5" in text
        assert "node=4" in text
        assert "protocol='spp'" in text
        assert "topology_seed=7" in text


class TestCleanRunsPassMonitors:
    @pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
    def test_paper_protocol_passes_full_suite(self, protocol):
        scenario = run_validated(protocol)
        assert scenario.validation is not None
        # Interval checks plus the closing sweep all ran violation-free.
        assert scenario.validation.checks_run >= 10

    def test_maodv_tree_state_passes(self):
        scenario = run_validated("maodv-etx")
        assert scenario.validation.checks_run >= 10

    def test_monitored_run_measures_identically(self):
        """Attaching the suite must not change the physics or results."""
        protocol = "spp"
        baseline = run_protocol(
            protocol, mini_config(validation=ValidationConfig())
        )
        monitored = run_protocol(protocol, mini_config())
        assert baseline == monitored

    def test_monitors_pass_under_faults(self):
        from repro.experiments.faults import FaultPlan, OutageWindow

        scenario = run_validated(
            "odmrp",
            faults=FaultPlan(outages=(OutageWindow(1, 4.0, 6.0),)),
        )
        assert scenario.validation.checks_run >= 10


class TestInjectedBugsAreCaught:
    def test_power_leak_caught_by_channel_conservation(self, monkeypatch):
        """Dropping every 3rd power removal leaves an audible ghost."""
        original = Node.phy_remove_power
        calls = {"n": 0}

        def leaky(self, transmission):
            calls["n"] += 1
            if calls["n"] % 3 == 0:
                return  # "forget" to remove this contribution
            original(self, transmission)

        monkeypatch.setattr(Node, "phy_remove_power", leaky)
        with pytest.raises(InvariantViolation) as excinfo:
            run_validated("odmrp")
        violation = excinfo.value
        assert violation.invariant == "channel-conservation"
        assert violation.protocol == "odmrp"
        assert violation.seed == 2
        assert violation.config is not None

    def test_power_leak_violation_replays(self, monkeypatch, tmp_path):
        """The violation's (protocol, config, seed) triple reproduces it."""
        original = Node.phy_remove_power
        calls = {"n": 0}

        def leaky(self, transmission):
            calls["n"] += 1
            if calls["n"] % 3 == 0:
                return
            original(self, transmission)

        monkeypatch.setattr(Node, "phy_remove_power", leaky)
        with pytest.raises(InvariantViolation) as excinfo:
            run_validated("odmrp")
        first = excinfo.value

        spec_path = str(tmp_path / "replay.json")
        write_replay_spec(first, spec_path)
        replay_spec = ExperimentSpec.load(spec_path)
        assert replay_spec.protocols == (first.protocol,)
        assert replay_spec.seeds == (first.seed,)

        # Re-running the replay spec (bug still injected) re-raises the
        # same violation at the same simulated time.
        calls["n"] = 0
        with pytest.raises(InvariantViolation) as again:
            run_with_invariants(replay_spec)
        assert again.value.invariant == first.invariant
        assert again.value.time == first.time
        assert again.value.node_id == first.node_id

    def test_broken_metric_algebra_caught(self, monkeypatch):
        """SPP that accumulates additively contradicts its declaration."""
        from repro.core.metrics import SppMetric

        monkeypatch.setattr(
            SppMetric, "combine", lambda self, path, link: path + link
        )
        with pytest.raises(InvariantViolation) as excinfo:
            run_validated("spp")
        assert excinfo.value.invariant == "metric-accumulation"

    def test_immortal_forwarding_group_caught(self, monkeypatch):
        """FG entries refreshed far beyond FG_TIMEOUT violate soft state."""
        original = ForwardingGroupState.refresh

        def immortal(self, group_id, until):
            original(self, group_id, until + 30.0)

        monkeypatch.setattr(ForwardingGroupState, "refresh", immortal)
        with pytest.raises(InvariantViolation) as excinfo:
            run_validated("odmrp")
        assert excinfo.value.invariant == "forwarding-state"

    def test_double_counting_sink_caught(self, monkeypatch):
        """A sink that books each delivery twice breaks conservation."""
        original = MulticastSink.on_deliver

        def double(self, packet, payload, receiver_id):
            original(self, packet, payload, receiver_id)
            self.total_packets += 1

        monkeypatch.setattr(MulticastSink, "on_deliver", double)
        with pytest.raises(InvariantViolation) as excinfo:
            run_validated("odmrp")
        assert excinfo.value.invariant == "data-provenance"

    def test_upstream_cycle_caught(self):
        """A fabricated A->B->A upstream round trips the acyclicity check."""
        scenario = build_simulation_scenario("odmrp", mini_config())

        def fake_round(upstream):
            return QueryRoundState(
                group_id=1, source_id=0, sequence=1, first_rx_time=0.0,
                best_cost=1.0, best_upstream=upstream, best_hop_count=1,
                alpha_deadline=0.0,
            )

        scenario.routers[1]._rounds[(1, 0, 1)] = fake_round(upstream=2)
        scenario.routers[2]._rounds[(1, 0, 1)] = fake_round(upstream=1)
        with pytest.raises(InvariantViolation) as excinfo:
            scenario.validation.check()
        assert excinfo.value.invariant == "forwarding-state"
        assert "cycle" in excinfo.value.message

    def test_shared_rng_stream_caught(self):
        """A stream object leaked between two live runs is flagged."""
        a = build_simulation_scenario("odmrp", mini_config(topology_seed=2))
        b = build_simulation_scenario("odmrp", mini_config(topology_seed=3))
        a.validation.check()
        b.validation.check()
        # Splice one of run A's stream objects into run B's registry.
        b.network.sim.rng._streams["mac.backoff"] = (
            a.network.sim.rng.stream("mac.backoff")
        )
        a.validation.check()  # refresh A's view of its own streams
        with pytest.raises(InvariantViolation) as excinfo:
            b.validation.check()
        assert excinfo.value.invariant == "rng-isolation"
        assert "shared" in excinfo.value.message

    def test_foreign_stream_name_caught(self):
        scenario = build_simulation_scenario("odmrp", mini_config())
        scenario.network.sim.rng.stream("definitely.not.a.subsystem")
        with pytest.raises(InvariantViolation) as excinfo:
            scenario.validation.check()
        assert excinfo.value.invariant == "rng-isolation"

    def test_find_cycle_helper(self):
        assert _find_cycle({1: 2, 2: 3}) is None
        cycle = _find_cycle({1: 2, 2: 3, 3: 1, 4: 1})
        assert cycle is not None and set(cycle) == {1, 2, 3}
        self_loop = _find_cycle({5: 5})
        assert self_loop == [5]


class TestDifferentialOracle:
    def test_default_spec_is_runnable(self):
        spec = default_validation_spec()
        spec.validate()
        assert spec.total_runs == 3

    def test_random_specs_are_deterministic_and_distinct(self):
        a = random_spec(0)
        b = random_spec(0)
        assert a == b
        assert random_spec(1, master_seed=9) != random_spec(1, master_seed=8)
        for index in range(8):
            random_spec(index).validate()

    def test_differential_check_flags_a_divergent_result(self, tmp_path):
        """The oracle actually bites: a post-hoc result edit is reported."""
        import repro.validation.fuzzing as fuzzing

        spec = dataclasses.replace(
            random_spec(0), protocols=("odmrp",), seeds=(1,)
        )
        real_first_difference = fuzzing._first_difference
        tampered = {"done": False}

        def tamper(label, baseline, candidate):
            if not tampered["done"] and candidate:
                tampered["done"] = True
                candidate = [
                    dataclasses.replace(
                        candidate[0],
                        delivered_packets=candidate[0].delivered_packets + 1,
                    )
                ] + list(candidate[1:])
            return real_first_difference(label, baseline, candidate)

        fuzzing._first_difference = tamper
        try:
            errors = differential_check(spec, jobs=2, work_dir=str(tmp_path))
        finally:
            fuzzing._first_difference = real_first_difference
        assert errors and "delivered_packets" in errors[0]


@pytest.mark.fuzz
class TestFuzzTier:
    """Bounded differential + invariant fuzzing (run with ``-m fuzz``)."""

    @pytest.mark.parametrize("index", range(3))
    def test_differential_paths_agree(self, index, tmp_path):
        spec = random_spec(index)
        errors = differential_check(spec, jobs=2, work_dir=str(tmp_path))
        assert errors == [], "\n".join(errors)

    @pytest.mark.parametrize("index", range(3, 5))
    def test_random_scenarios_pass_invariants(self, index):
        results = run_with_invariants(random_spec(index))
        assert len(results) == random_spec(index).total_runs

    def test_paper_mini_sweep_passes_invariants(self):
        results = run_with_invariants(default_validation_spec())
        assert all(result.error is None for result in results)
