"""The per-run telemetry registry and sampling engine.

A :class:`TelemetryHub` owns every instrument of one run plus a bounded
structured event log (a :class:`~repro.sim.trace.TraceRecorder`).  Probes
-- zero-argument callables returning either a float or a ``{suffix:
float}`` mapping -- are registered once at scenario build time and
sampled into :class:`~repro.telemetry.instruments.TimeSeries` at a fixed
virtual-time interval.

The sampling *driver* lives with whoever owns the run loop: the scenario
runner advances the simulator in ``sample_interval_s`` chunks and calls
:meth:`TelemetryHub.sample` between chunks.  Driving from outside the
event queue (rather than scheduling sampler events inside it) means the
engine's batched ``events_executed`` counter is always flushed and exact
when a probe reads it, and the event heap never contains telemetry
events.

Zero cost when disabled: a run without telemetry never constructs a hub
and runs the simulator in one uninterrupted ``run(until=...)`` call, so
the simulator, MAC, channel, and protocol hot paths execute exactly the
seed instruction stream.  Sampling itself is read-only -- probes only
*look at* model state and draw from no RNG stream -- so even an enabled
run produces bit-identical ``CounterSet`` totals to a disabled one
(asserted in ``tests/test_telemetry.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder
from repro.telemetry.instruments import (
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    Instrument,
    TimeSeries,
)

ProbeValue = Union[float, Mapping[str, float], None]
Probe = Callable[[], ProbeValue]


@dataclass
class TelemetryConfig:
    """Per-run observability knobs (picklable; part of the run config).

    ``enabled=False`` (the default) keeps the hot path untouched: no hub
    is built and no sampler events are scheduled.  ``per_link`` expands
    the probing probes from aggregate df/cost statistics to one series
    per heard link -- detailed but voluminous on 50-node meshes, so it is
    opt-in.  ``export_dir`` overrides where the runner writes the JSONL
    artifact (default: ``telemetry/`` under the result cache directory).
    """

    enabled: bool = False
    sample_interval_s: float = 1.0
    per_link: bool = False
    max_trace_entries: int = 100_000
    export_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")


class TelemetryHub:
    """Instrument registry + probe sampler for one run."""

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config or TelemetryConfig(enabled=True)
        self._instruments: Dict[str, Instrument] = {}
        self._probes: List[tuple] = []  # (name, probe, unit)
        self.samples_taken = 0
        self.recorder = TraceRecorder(
            enabled=True, max_entries=self.config.max_trace_entries
        )

    # ------------------------------------------------------------------
    # Instrument registry

    def _register(self, name: str, factory: Callable[[], Instrument],
                  expected: type) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, expected):
            raise TypeError(
                f"instrument {name!r} already registered as "
                f"{type(instrument).__name__}, not {expected.__name__}"
            )
        return instrument

    def counter(self, name: str, description: str = "",
                unit: str = "") -> Counter:
        return self._register(
            name, lambda: Counter(name, description, unit), Counter
        )

    def gauge(self, name: str, description: str = "", unit: str = "") -> Gauge:
        return self._register(
            name, lambda: Gauge(name, description, unit), Gauge
        )

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_BOUNDS,
        description: str = "",
        unit: str = "",
    ) -> Histogram:
        return self._register(
            name, lambda: Histogram(name, bounds, description, unit), Histogram
        )

    def time_series(
        self,
        name: str,
        interval_s: Optional[float] = None,
        description: str = "",
        unit: str = "",
    ) -> TimeSeries:
        interval = interval_s or self.config.sample_interval_s
        return self._register(
            name, lambda: TimeSeries(name, interval, description, unit),
            TimeSeries,
        )

    def instruments(self) -> List[Instrument]:
        """Instruments in name order (the export order)."""
        return [self._instruments[name] for name in sorted(self._instruments)]

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    # ------------------------------------------------------------------
    # Structured events

    def record_event(self, time: float, tag: str, **data: Any) -> None:
        """Log one structured event (bounded; drops are counted)."""
        self.recorder.record(time, tag, **data)

    # ------------------------------------------------------------------
    # Probes and sampling

    def add_probe(self, name: str, probe: Probe, unit: str = "") -> None:
        """Register a probe sampled into ``name`` every tick.

        A probe returning a float feeds the series ``name``; one
        returning a mapping feeds ``name.<key>`` per entry (used for
        per-link and per-group breakdowns whose key set is only known at
        run time); returning ``None`` skips the tick.
        """
        self._probes.append((name, probe, unit))

    def sample(self, now: float) -> None:
        """Evaluate every probe once at virtual time ``now``."""
        self.samples_taken += 1
        for name, probe, unit in self._probes:
            value = probe()
            if value is None:
                continue
            if isinstance(value, Mapping):
                for key, sub_value in value.items():
                    self.time_series(f"{name}.{key}", unit=unit).append(
                        now, sub_value
                    )
            else:
                self.time_series(name, unit=unit).append(now, value)

    def drive(self, sim: Simulator, until: float) -> None:
        """Advance ``sim`` to ``until``, sampling every interval.

        Chunks the run into ``sample_interval_s`` slices of virtual time
        and samples at each boundary.  Slicing ``run(until=...)`` calls
        is behavior-preserving (the bound is half-open, so event order is
        untouched); it exists so probes observe the engine's batched
        counters in a flushed state.  The closing sample at ``until``
        itself is taken by :meth:`finalize`, not here.
        """
        interval = self.config.sample_interval_s
        boundary = sim.now + interval
        while boundary < until:
            sim.run(until=boundary)
            self.sample(sim.now)
            boundary += interval
        sim.run(until=until)

    def finalize(self, sim: Simulator) -> None:
        """Take a closing sample and publish recorder health gauges."""
        self.sample(sim.now)
        self.gauge(
            "trace.entries", "structured events recorded"
        ).set(len(self.recorder.entries))
        self.gauge(
            "trace.dropped", "structured events dropped at the bound"
        ).set(self.recorder.dropped)
