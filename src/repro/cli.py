"""Command-line interface for the reproduction experiments.

Run as ``python -m repro.cli <command>`` (or the ``repro`` console script
when installed).  Every command prints paper-vs-measured tables built by
:mod:`repro.experiments.figures`.

Commands::

    fig1        Figure 1 (METX vs SPP, analytic -- instant)
    fig3        Figure 3 (ETX vs SPP, analytic -- instant)
    fig2-sim    Figure 2 throughput + delay columns (simulation sweep)
    table1      Table 1 probing overhead (simulation sweep)
    testbed     Figure 2 testbed column (Section 5 emulation)
    fig4        Figure 4 ping-based link classification
    fig5        Figure 5 tree edges, ODMRP vs ODMRP_PP
    run         Execute a declarative experiment spec (TOML/JSON)
    validate    Invariant-monitored runs + differential scenario fuzzing
    chaos       Fault-injection suite for the resilient sweep executor
    protocols   List the registered router x metric combinations
    telemetry   Inspect exported run telemetry (summarize / diff)

``repro run --spec examples/paper_spec.toml`` executes a serialized
:class:`~repro.experiments.spec.ExperimentSpec`; ``--protocols``/
``--seeds`` narrow it, ``--dry-run`` prints the resolved plan without
simulating.  ``--run-timeout``/``--max-retries`` put the sweep under
the resilient supervisor (per-run timeouts, retry with backoff, a
durable journal); ``--resume`` replays a previously interrupted sweep
from that journal.  Protocol names everywhere resolve through the registry
(:mod:`repro.protocols`), so MAODV and WCETT variants sweep through the
same pipeline as the paper's six.

Simulation commands accept ``--telemetry-dir DIR`` to capture one JSONL
trace per run (see :mod:`repro.telemetry`); ``repro telemetry summarize``
renders them.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.tables import render_comparison, render_table
from repro.experiments import figures
from repro.experiments.results import aggregate_runs, normalized_metric_table
from repro.experiments.scenarios import (
    PROTOCOL_NAMES,
    SimulationScenarioConfig,
)
from repro.protocols import REGISTRY, UnknownProtocolError
from repro.telemetry import TelemetryConfig, package_version
from repro.testbed.emulator import TestbedScenarioConfig


def _simulation_config(args: argparse.Namespace) -> SimulationScenarioConfig:
    telemetry = TelemetryConfig()
    if getattr(args, "telemetry_dir", None):
        telemetry = TelemetryConfig(
            enabled=True, export_dir=args.telemetry_dir
        )
    return SimulationScenarioConfig(
        num_nodes=args.nodes,
        duration_s=args.duration,
        warmup_s=min(30.0, args.duration / 4),
        telemetry=telemetry,
    )


def _seeds(args: argparse.Namespace) -> tuple:
    return tuple(range(1, args.topologies + 1))


def _warn_failed_runs(runs) -> bool:
    """Surface error-annotated runs (parallel sweeps don't raise).

    Returns True when at least one run succeeded, so callers can bail
    out before aggregating an empty sweep.
    """
    failed = [run for run in runs if run.error is not None]
    if not failed:
        return True
    from repro.experiments.resilience import classify_failure

    print(
        f"WARNING: {len(failed)} run(s) failed and are excluded "
        "from the averages:"
    )
    for run in failed:
        reason = run.error.strip().splitlines()[-1]
        kind = classify_failure(run.error)
        tag = f" [{kind.value}]" if kind is not None else ""
        print(f"  {run.protocol} seed={run.topology_seed}{tag}: {reason}")
    if len(failed) == len(list(runs)):
        print("ERROR: every run failed; nothing to aggregate.")
        return False
    return True


def cmd_fig1(args: argparse.Namespace) -> int:
    result = figures.figure1_metx_vs_spp()
    print(render_comparison(
        result.measured, result.paper, value_label="path cost",
        title="Figure 1: METX vs 1/SPP",
    ))
    print(result.notes)
    return 0


def cmd_fig3(args: argparse.Namespace) -> int:
    result = figures.figure3_etx_vs_spp()
    print(render_comparison(
        result.measured, result.paper, value_label="path cost",
        title="Figure 3: ETX vs SPP",
    ))
    print(result.notes)
    return 0


def cmd_fig2_sim(args: argparse.Namespace) -> int:
    config = _simulation_config(args)
    seeds = _seeds(args)
    print(
        f"running {len(PROTOCOL_NAMES)} protocols x {len(seeds)} topologies "
        f"({config.num_nodes} nodes, {config.duration_s:.0f} s each, "
        f"jobs={args.jobs}) ..."
    )
    runs = figures.simulation_sweep(
        config, seeds, jobs=args.jobs, use_cache=not args.no_cache
    )
    if not _warn_failed_runs(runs):
        return 1
    aggregates = aggregate_runs(runs)
    throughput = normalized_metric_table(aggregates, "throughput")
    print()
    print(render_comparison(
        throughput,
        figures.PAPER_THROUGHPUT_SIMULATIONS,
        title="Figure 2 / Throughput-simulations",
    ))
    print()
    from repro.analysis.charts import render_bar_chart

    print(render_bar_chart(
        throughput, baseline=1.0,
        title="normalized throughput (| marks the ODMRP baseline)",
    ))
    print()
    print(render_comparison(
        normalized_metric_table(aggregates, "delay"),
        figures.PAPER_DELAY,
        title="Figure 2 / Delay (paper values approximate)",
    ))
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    config = _simulation_config(args)
    result = figures.table1_probing_overhead(
        config, _seeds(args), jobs=args.jobs, use_cache=not args.no_cache
    )
    if not _warn_failed_runs(result.runs):
        return 1
    print(render_comparison(
        result.measured, result.paper, value_label="overhead %",
        title="Table 1 / probing overhead",
    ))
    return 0


def cmd_testbed(args: argparse.Namespace) -> int:
    config = TestbedScenarioConfig(
        duration_s=args.duration, warmup_s=min(30.0, args.duration / 4)
    )
    seeds = tuple(range(1, args.runs + 1))
    print(
        f"running {len(PROTOCOL_NAMES)} protocols x {len(seeds)} "
        "testbed runs ..."
    )
    result = figures.figure2_throughput_testbed(config, seeds)
    print()
    print(render_comparison(
        result.measured, result.paper,
        title="Figure 2 / Throughput-testbed",
    ))
    return 0


def cmd_fig4(args: argparse.Namespace) -> int:
    from repro.testbed.emulator import build_testbed_scenario
    from repro.testbed.floormap import testbed_links
    from repro.testbed.ping import (
        classify_links_by_ping,
        symmetric_classification,
    )

    scenario = build_testbed_scenario(
        "odmrp", TestbedScenarioConfig(run_seed=args.seed)
    )
    directed = classify_links_by_ping(scenario.network, pings_per_node=150)
    merged = symmetric_classification(directed)
    truth = {link.key: link.lossy for link in testbed_links()}
    rows = []
    for key, verdict in sorted(merged.items(), key=lambda kv: sorted(kv[0])):
        a, b = sorted(scenario.index_to_label[i] for i in key)
        rows.append((
            f"{a}-{b}",
            f"{verdict.loss_rate:.0%}",
            "lossy" if verdict.lossy else "low-loss",
            "lossy" if truth[frozenset((a, b))] else "low-loss",
        ))
    print(render_table(
        ("link", "ping loss", "classified", "figure 4"), rows,
        title="Figure 4: link classification by ping",
    ))
    return 0


def cmd_fig5(args: argparse.Namespace) -> int:
    config = TestbedScenarioConfig(
        duration_s=args.duration, warmup_s=min(30.0, args.duration / 4),
        run_seed=args.seed,
    )
    trees = figures.figure5_tree_edges(config, ("odmrp", "pp"))
    from repro.testbed.floormap import lossy_link_keys

    lossy = set(lossy_link_keys())
    for protocol, tree in trees.items():
        rows = [
            (
                f"{src}->{dst}", f"{share:.2f}",
                "lossy" if frozenset((src, dst)) in lossy else "low-loss",
            )
            for src, dst, share in tree[:10]
        ]
        print()
        print(render_table(
            ("link", "data share", "class"), rows,
            title=f"Figure 5: heavily used links under {protocol}",
        ))
        print(
            "lossy-link share: "
            f"{figures.lossy_link_data_share(tree):.1%}"
        )
    return 0


def _parse_csv(text: Optional[str]) -> Optional[list]:
    if text is None:
        return None
    return [item.strip() for item in text.split(",") if item.strip()]


def cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_report
    from repro.experiments.runner import run_experiment
    from repro.experiments.spec import ExperimentSpec, SpecError

    if args.spec:
        try:
            spec = ExperimentSpec.load(args.spec)
        except (OSError, SpecError) as exc:
            print(f"ERROR: {args.spec}: {exc}", file=sys.stderr)
            return 1
    else:
        spec = ExperimentSpec(name="paper-baseline-defaults")

    seeds = None
    if args.seeds:
        try:
            seeds = [int(seed) for seed in _parse_csv(args.seeds)]
        except ValueError:
            print(f"ERROR: --seeds must be integers: {args.seeds!r}",
                  file=sys.stderr)
            return 1
    spec = spec.with_overrides(
        protocols=_parse_csv(args.protocols),
        seeds=seeds,
        jobs=args.jobs,
        use_cache=False if args.no_cache else None,
        run_timeout_s=args.run_timeout,
        max_retries=args.max_retries,
        mobility_models=_parse_csv(args.mobility_models),
        backend=args.backend,
    )
    if getattr(args, "adaptive", False) and spec.adaptive is None:
        from dataclasses import replace

        from repro.experiments.adaptive import AdaptiveConfig

        spec = replace(spec, adaptive=AdaptiveConfig())
    if getattr(args, "campaign", False) and spec.campaign is None:
        from dataclasses import replace

        from repro.experiments.campaigns import CampaignConfig

        spec = replace(spec, campaign=CampaignConfig())
    if getattr(args, "telemetry_dir", None):
        from dataclasses import replace

        spec.config = replace(
            spec.config,
            telemetry=TelemetryConfig(
                enabled=True, export_dir=args.telemetry_dir
            ),
        )

    try:
        spec.validate()
    except (UnknownProtocolError, SpecError) as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    print(spec.describe())
    if args.dry_run:
        print("\ndry run: spec is valid; no simulations executed.")
        return 0

    print()
    plan = None
    campaign = None
    try:
        if spec.campaign is not None:
            from repro.experiments.campaigns import run_campaign_experiment

            campaign = run_campaign_experiment(
                spec,
                progress=lambda protocol, seed: print(
                    f"  running {protocol} seed={seed} ...", flush=True
                ),
                resume=args.resume,
                workers=args.workers,
            )
            runs = campaign.runs
        elif spec.adaptive is not None:
            from repro.experiments.adaptive import run_adaptive_experiment

            plan = run_adaptive_experiment(
                spec,
                progress=lambda protocol, seed: print(
                    f"  running {protocol} seed={seed} ...", flush=True
                ),
                resume=args.resume,
                workers=args.workers,
            )
            runs = plan.runs
        else:
            runs = run_experiment(
                spec,
                progress=lambda protocol, seed: print(
                    f"  running {protocol} seed={seed} ...", flush=True
                ),
                resume=args.resume,
                workers=args.workers,
            )
    except KeyboardInterrupt as interrupt:
        # The resilient executor drains and journals before raising, so
        # tell the user how to pick the sweep back up.
        detail = str(interrupt)
        print(f"\ninterrupted: {detail}" if detail else "\ninterrupted",
              file=sys.stderr)
        print("re-run the same command with --resume to continue",
              file=sys.stderr)
        return 130
    if not _warn_failed_runs(runs):
        return 1
    # Campaign reports: the standard paper-comparison sections render
    # the fault-free CRN baseline (averaging across fault severities
    # would mean nothing); the Robustness section carries the faults.
    report_runs = campaign.baseline_runs if campaign is not None else runs
    report = render_report(
        report_runs, title=spec.name, adaptive=plan, campaign=campaign
    )
    print()
    print(report)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"report written to {args.report}")
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.experiments.distributed import (
        DistributedSweepError,
        LeaseConfig,
        drain_worker,
    )
    from repro.experiments.executors import BackendError, parse_backend

    try:
        backend = parse_backend(args.backend)
    except BackendError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    if backend.kind != "dir":
        print(
            "ERROR: 'repro worker' only drains dir:// backends "
            f"(got {args.backend!r})",
            file=sys.stderr,
        )
        return 1
    lease_kwargs = {}
    if args.lease_timeout is not None:
        lease_kwargs["lease_timeout_s"] = args.lease_timeout
    if args.run_timeout is not None:
        lease_kwargs["run_timeout_s"] = args.run_timeout
    if args.max_retries is not None:
        lease_kwargs["max_retries"] = args.max_retries
    try:
        stats = drain_worker(
            backend.root,
            worker_id=args.worker_id,
            lease=LeaseConfig(**lease_kwargs),
            use_cache=not args.no_cache,
            wait_for_sweep_s=args.wait,
            max_runs=args.max_runs,
            log=print,
        )
    except DistributedSweepError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("\nworker interrupted; unfinished leases will expire and "
              "be reclaimed by other workers", file=sys.stderr)
        return 130
    print(
        f"worker {stats.worker_id}: {stats.completed} completed, "
        f"{stats.cache_hits} cache hit(s), {stats.failed} failed, "
        f"{stats.reclaimed} lease(s) reclaimed, "
        f"{stats.wall_time_s:.1f}s wall"
    )
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    import tempfile

    from repro.experiments.spec import ExperimentSpec, SpecError
    from repro.validation.fuzzing import (
        default_validation_spec,
        differential_check,
        moving_validation_spec,
        random_spec,
        run_with_invariants,
        write_replay_spec,
    )
    from repro.validation.invariants import InvariantViolation, monitor_names

    monitors: tuple = ()
    run_invariants = True
    if args.invariants and args.invariants.lower() == "none":
        run_invariants = False
    elif args.invariants and args.invariants.lower() != "all":
        monitors = tuple(_parse_csv(args.invariants))
        unknown = set(monitors) - set(monitor_names())
        if unknown:
            print(
                f"ERROR: unknown monitor(s) {sorted(unknown)}; known: "
                + ", ".join(monitor_names()),
                file=sys.stderr,
            )
            return 1

    specs = []
    if args.spec:
        try:
            specs.append(ExperimentSpec.load(args.spec))
        except (OSError, SpecError) as exc:
            print(f"ERROR: {args.spec}: {exc}", file=sys.stderr)
            return 1
    elif not args.fuzz:
        specs.append(default_validation_spec())
        specs.append(moving_validation_spec())
    specs += [
        random_spec(index, master_seed=args.fuzz_seed)
        for index in range(args.fuzz)
    ]

    failures = 0
    for spec in specs:
        print(f"== {spec.name}: {spec.total_runs} run(s), "
              f"protocols {', '.join(spec.protocols)}")
        if run_invariants:
            try:
                run_with_invariants(
                    spec, monitors=monitors,
                    check_interval_s=args.check_interval,
                )
                print("   invariants: ok")
            except InvariantViolation as violation:
                failures += 1
                print("   invariants: VIOLATION")
                print(violation.report())
                replay_path = f"replay-{spec.name}.json"
                write_replay_spec(violation, replay_path)
                print(f"   replay spec written to {replay_path}")
                continue
        if not args.skip_differential:
            with tempfile.TemporaryDirectory() as work_dir:
                errors = differential_check(
                    spec, jobs=args.jobs, work_dir=work_dir
                )
            if errors:
                failures += 1
                print("   differential: DIVERGED")
                for error in errors:
                    print(f"     {error}")
            else:
                print("   differential: ok")

    total = len(specs)
    print(f"\n{total - failures}/{total} spec(s) clean")
    return 1 if failures else 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments.chaos import run_chaos

    print(
        "chaos: injecting worker faults (hangs, crashes, OOM kills, "
        "cache corruption, SIGINT) into supervised sweeps ..."
    )
    report = run_chaos(
        quick=args.quick, jobs=args.jobs,
        log=print if args.verbose else None,
    )
    print(report.render())
    return 0 if report.ok else 1


def cmd_protocols(args: argparse.Namespace) -> int:
    rows = [
        (
            spec.name,
            spec.family,
            spec.metric or "min-hop",
            spec.router.__name__,
            spec.description,
        )
        for spec in REGISTRY
    ]
    print(render_table(
        ("name", "family", "metric", "router", "description"), rows,
        title=f"{len(REGISTRY)} registered protocols",
    ))
    return 0


def cmd_telemetry_summarize(args: argparse.Namespace) -> int:
    from repro.telemetry import TraceFormatError, read_trace, summarize_trace

    status = 0
    for index, path in enumerate(args.paths):
        if index:
            print()
        try:
            trace = read_trace(path)
        except (OSError, TraceFormatError) as exc:
            print(f"ERROR: {path}: {exc}", file=sys.stderr)
            status = 1
            continue
        print(f"== {path}")
        print(summarize_trace(trace))
    return status


def cmd_telemetry_diff(args: argparse.Namespace) -> int:
    from repro.telemetry import TraceFormatError, diff_traces, read_trace

    try:
        trace_a = read_trace(args.a)
        trace_b = read_trace(args.b)
    except (OSError, TraceFormatError) as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    print(diff_traces(trace_a, trace_b))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce tables and figures from 'High-Throughput Multicast "
            "Routing Metrics in Wireless Mesh Networks' (ICDCS 2006)."
        ),
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {package_version()}",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add(name, handler, help_text, *, sim=False, testbed=False):
        sub = subparsers.add_parser(name, help=help_text)
        sub.set_defaults(handler=handler)
        if sim:
            sub.add_argument("--nodes", type=int, default=50,
                             help="network size (paper: 50)")
            sub.add_argument("--duration", type=float, default=150.0,
                             help="seconds of simulated time (paper: 400)")
            sub.add_argument("--topologies", type=int, default=1,
                             help="random topologies (paper: 10)")
            sub.add_argument("--jobs", type=int, default=1,
                             help="parallel worker processes "
                                  "(0 = one per CPU; default 1, serial)")
            sub.add_argument("--no-cache", action="store_true",
                             help="recompute every run instead of reusing "
                                  "the on-disk result cache (.repro_cache/)")
            sub.add_argument("--telemetry-dir", metavar="DIR", default=None,
                             help="capture per-run telemetry traces (JSONL) "
                                  "into DIR; disabled when omitted")
        if testbed:
            sub.add_argument("--duration", type=float, default=400.0,
                             help="seconds of simulated time (paper: 400)")
            sub.add_argument("--runs", type=int, default=2,
                             help="repetitions (paper: 5)")
            sub.add_argument("--seed", type=int, default=1)
        return sub

    add("fig1", cmd_fig1, "Figure 1: METX vs SPP (analytic)")
    add("fig3", cmd_fig3, "Figure 3: ETX vs SPP (analytic)")
    add("fig2-sim", cmd_fig2_sim,
        "Figure 2 simulation columns (throughput + delay)", sim=True)
    add("table1", cmd_table1, "Table 1 probing overhead", sim=True)
    add("testbed", cmd_testbed, "Figure 2 testbed column", testbed=True)
    add("fig4", cmd_fig4, "Figure 4 link classification", testbed=True)
    add("fig5", cmd_fig5, "Figure 5 tree edges", testbed=True)

    run = subparsers.add_parser(
        "run", help="execute a declarative experiment spec (TOML/JSON)"
    )
    run.set_defaults(handler=cmd_run)
    run.add_argument("--spec", metavar="PATH", default=None,
                     help="spec file (.toml or .json); omitted = the "
                          "paper baseline at default scale")
    run.add_argument("--protocols", metavar="A,B,...", default=None,
                     help="override the spec's protocol list (registry "
                          "names, e.g. maodv,maodv-etx,maodv-spp)")
    run.add_argument("--seeds", metavar="1,2,...", default=None,
                     help="override the spec's topology seeds")
    run.add_argument("--mobility-models", metavar="A,B,...", default=None,
                     help="override the spec's mobility axis (model names "
                          "from the mobility registry, e.g. "
                          "static,random-waypoint,gauss-markov); each "
                          "model reruns the whole grid, results are "
                          "labeled protocol@model")
    run.add_argument("--jobs", type=int, default=None,
                     help="override the spec's worker-process count "
                          "(0 = one per CPU)")
    run.add_argument("--no-cache", action="store_true",
                     help="force recomputation even if the spec enables "
                          "the result cache")
    run.add_argument("--dry-run", action="store_true",
                     help="validate and print the resolved run plan "
                          "without simulating")
    run.add_argument("--telemetry-dir", metavar="DIR", default=None,
                     help="capture per-run telemetry traces (JSONL) "
                          "into DIR")
    run.add_argument("--report", metavar="PATH", default=None,
                     help="also write the markdown report to PATH")
    run.add_argument("--run-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="per-run wall-clock budget; a run exceeding it "
                          "is killed and retried (enables the resilient "
                          "supervisor)")
    run.add_argument("--max-retries", type=int, default=None, metavar="N",
                     help="retry budget for transient failures -- "
                          "timeouts, worker crashes, OOM kills (enables "
                          "the resilient supervisor)")
    run.add_argument("--adaptive", action="store_true",
                     help="run under the sequential planner: seeds in "
                          "batches, CI-driven stopping per protocol, "
                          "paired common-random-number comparisons "
                          "(defaults apply unless the spec has an "
                          "[adaptive] section)")
    run.add_argument("--campaign", action="store_true",
                     help="run as a fault campaign: sample fault plans "
                          "under an importance proposal biased toward "
                          "severe schedules, pair every draw with a "
                          "fault-free CRN baseline, and report "
                          "importance-weighted robustness estimates "
                          "(defaults apply unless the spec has a "
                          "[campaign] section)")
    run.add_argument("--resume", action="store_true",
                     help="replay completed runs from the sweep journal "
                          "(.repro_cache/runs/journal.jsonl) and execute "
                          "only the rest")
    run.add_argument("--backend", metavar="URI", default=None,
                     help="sweep execution backend: 'local-pool' "
                          "(default) or 'dir://<shared-dir>' to publish "
                          "the sweep into a shared directory drained by "
                          "worker processes (see 'repro worker')")
    run.add_argument("--workers", type=int, default=None, metavar="N",
                     help="dir:// backend only: worker processes to "
                          "spawn locally (default: the spec's jobs; 0 = "
                          "rely entirely on external 'repro worker' "
                          "processes)")

    worker = subparsers.add_parser(
        "worker",
        help="drain a dir:// sweep as one worker process (run on each "
             "host sharing the sweep directory)",
    )
    worker.set_defaults(handler=cmd_worker)
    worker.add_argument("--backend", metavar="URI", required=True,
                        help="the shared sweep to join: dir://<shared-dir>")
    worker.add_argument("--worker-id", metavar="ID", default=None,
                        help="stable worker identity (default: "
                             "<hostname>-<pid>)")
    worker.add_argument("--lease-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="heartbeat age after which another worker "
                             "may reclaim this worker's leases "
                             "(default 15)")
    worker.add_argument("--run-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-run wall-clock budget enforced by this "
                             "worker's supervisor")
    worker.add_argument("--max-retries", type=int, default=None,
                        metavar="N",
                        help="fleet-wide transient-failure retry budget "
                             "(must match the coordinator's; default 2)")
    worker.add_argument("--max-runs", type=int, default=None, metavar="N",
                        help="exit after executing N runs (bounded smoke "
                             "jobs)")
    worker.add_argument("--wait", type=float, default=30.0,
                        metavar="SECONDS",
                        help="how long to wait for the sweep manifest to "
                             "appear before giving up")
    worker.add_argument("--no-cache", action="store_true",
                        help="skip the shared result cache")

    validate = subparsers.add_parser(
        "validate",
        help="run invariant monitors + differential fuzzing over specs",
    )
    validate.set_defaults(handler=cmd_validate)
    validate.add_argument("--spec", metavar="PATH", default=None,
                          help="validate this spec file (.toml or .json); "
                               "omitted = a built-in paper-protocol "
                               "mini-sweep (unless --fuzz is given)")
    validate.add_argument("--fuzz", type=int, default=0, metavar="N",
                          help="also validate N randomly generated specs "
                               "(deterministic per --fuzz-seed)")
    validate.add_argument("--fuzz-seed", type=int, default=0,
                          help="master seed for the fuzz-case generator")
    validate.add_argument("--jobs", type=int, default=2,
                          help="pool size for the differential jobs=N pass")
    validate.add_argument("--invariants", metavar="A,B,... | all | none",
                          default="all",
                          help="invariant monitors to attach ('all' = every "
                               "registered monitor, 'none' = skip the "
                               "monitored pass)")
    validate.add_argument("--check-interval", type=float, default=1.0,
                          help="simulated seconds between invariant sweeps")
    validate.add_argument("--skip-differential", action="store_true",
                          help="only run the invariant-monitored pass")

    chaos = subparsers.add_parser(
        "chaos",
        help="fault-injection suite for the resilient sweep executor",
    )
    chaos.set_defaults(handler=cmd_chaos)
    chaos.add_argument("--quick", action="store_true",
                       help="smaller scenario and fewer faults (CI smoke)")
    chaos.add_argument("--jobs", type=int, default=2,
                       help="supervised worker processes per sweep")
    chaos.add_argument("--verbose", action="store_true",
                       help="narrate each chaos phase as it runs")

    protocols_cmd = subparsers.add_parser(
        "protocols", help="list the registered router x metric combinations"
    )
    protocols_cmd.set_defaults(handler=cmd_protocols)

    telemetry = subparsers.add_parser(
        "telemetry", help="inspect exported run telemetry traces"
    )
    telemetry_sub = telemetry.add_subparsers(
        dest="telemetry_command", required=True
    )
    summarize = telemetry_sub.add_parser(
        "summarize", help="render manifest + instrument summary per trace"
    )
    summarize.add_argument("paths", nargs="+", metavar="TRACE.jsonl")
    summarize.set_defaults(handler=cmd_telemetry_summarize)
    diff = telemetry_sub.add_parser(
        "diff", help="instrument-by-instrument comparison of two traces"
    )
    diff.add_argument("a", metavar="A.jsonl")
    diff.add_argument("b", metavar="B.jsonl")
    diff.set_defaults(handler=cmd_telemetry_diff)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
