"""Workload: CBR multicast sources, delivery sinks, group scenarios.

The paper's workload is CBR traffic of 512-byte packets at 20 packets per
second from each source, with two multicast groups of ten members each in
the 50-node simulations, and two groups of two receivers each on the
testbed.
"""

from repro.traffic.cbr import CbrSource
from repro.traffic.groups import GroupScenario, GroupSpec, build_group_scenario
from repro.traffic.sink import DeliveryRecord, MulticastSink

__all__ = [
    "CbrSource",
    "MulticastSink",
    "DeliveryRecord",
    "GroupSpec",
    "GroupScenario",
    "build_group_scenario",
]
