"""The discrete-event simulation engine.

A :class:`Simulator` owns the virtual clock and a binary-heap event queue.
Everything in the reproduction -- radio transmissions, MAC backoffs, probe
timers, ODMRP refresh floods, CBR sources -- is expressed as callbacks
scheduled on one simulator instance.

The engine is deliberately callback-based rather than coroutine-based:
profiling showed plain callbacks are 3-4x faster than generator-based
processes for the packet-level workloads in this project, and the protocol
state machines map naturally onto explicit callbacks.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.sim.events import Event, EventHandle, EventPriority
from repro.sim.rng import RngRegistry


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the simulator's RNG registry.  Two simulators
        constructed with the same seed and driven by the same model code
        produce bit-identical event sequences.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(2.5, fired.append, "hello")
    >>> sim.run(until=10.0)
    >>> (fired, sim.now)
    (['hello'], 10.0)
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue: list[Event] = []
        self._now = 0.0
        self._running = False
        self._stopped = False
        self.events_executed = 0
        self.rng = RngRegistry(seed)
        self.seed = seed

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def queue_depth(self) -> int:
        """Raw event-queue length, including lazily cancelled events.

        O(1) -- the telemetry sampler polls this every tick.  Use
        :meth:`pending_events` when the exact live count matters.
        """
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.DEFAULT,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        # Inlined schedule_at: this is the hottest scheduling entry point
        # (every frame, timer and protocol tick goes through it), and
        # delay >= 0 already implies time >= now.
        event = Event(self._now + delay, callback, args, priority)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.DEFAULT,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        event = Event(time, callback, args, priority)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run events in order until the queue drains or ``until`` is reached.

        When ``until`` is given, the clock is advanced to exactly ``until``
        on return even if the queue drained earlier, so post-run statistics
        can divide by a well-defined duration.  Events scheduled exactly at
        ``until`` are *not* executed (half-open interval).

        ``events_executed`` is updated once on return, not per event --
        this loop is the hottest frame in every sweep, and batching the
        counter (plus binding the heap pop locally) buys a measurable
        fraction of the engine microbenchmark.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        queue = self._queue
        pop = heapq.heappop
        executed = 0
        try:
            if until is None:
                while queue:
                    event = pop(queue)
                    if event.cancelled:
                        continue
                    self._now = event.time
                    executed += 1
                    event.callback(*event.args)
                    if self._stopped:
                        break
            else:
                while queue:
                    event = queue[0]
                    if event.time >= until:
                        break
                    pop(queue)
                    if event.cancelled:
                        continue
                    self._now = event.time
                    executed += 1
                    event.callback(*event.args)
                    if self._stopped:
                        break
                if not self._stopped and self._now < until:
                    self._now = until
        finally:
            self._running = False
            self.events_executed += executed

    def step(self, until: Optional[float] = None) -> bool:
        """Execute the single next non-cancelled event.

        Returns True if an event ran, False if the queue is empty -- or,
        when ``until`` is given, if the next event lies at or beyond
        ``until``.  The bound is half-open exactly like :meth:`run`'s: an
        event scheduled at precisely ``until`` is left queued, so
        stepping after ``run(until=T)`` cannot execute a time-``T`` event
        that a subsequent ``run(until=T2)`` is entitled to see first.
        Useful in tests that walk a protocol one transition at a time.
        """
        queue = self._queue
        while queue:
            event = queue[0]
            if until is not None and event.time >= until:
                return False
            heapq.heappop(queue)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_executed += 1
            event.callback(*event.args)
            return True
        return False

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def pending_events(self) -> int:
        """Number of non-cancelled events still queued (O(n); for tests)."""
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def quiescent(self) -> bool:
        """True when no live (non-cancelled) event remains queued.

        A quiescent simulator cannot advance further; the invariant
        monitors use this to decide when drain conditions (empty channel
        ledgers, no pending receptions) must hold exactly.
        """
        return self.peek_time() is None
