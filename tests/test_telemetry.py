"""Tests for the telemetry subsystem: instruments, hub, export, wiring.

The two load-bearing properties pinned here:

* **Zero interference** -- a run with telemetry enabled produces results
  bit-identical to the same run with telemetry disabled (sampling is
  read-only and draws no RNG).
* **Lossless artifacts** -- ``read_trace(write_trace(...))`` reproduces
  the manifest, event log, and every instrument exactly.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments.parallel import RunSpec
from repro.experiments.runner import run_protocol
from repro.experiments.scenarios import SimulationScenarioConfig
from repro.sim.engine import Simulator
from repro.telemetry import (
    TRACE_FORMAT_VERSION,
    Counter,
    Gauge,
    Histogram,
    RunManifest,
    TelemetryConfig,
    TelemetryHub,
    TimeSeries,
    TraceFormatError,
    build_manifest,
    canonicalize,
    config_digest,
    diff_traces,
    read_trace,
    summarize_trace,
    trace_filename,
    write_trace,
)

TINY = SimulationScenarioConfig(
    num_nodes=10,
    area_width_m=500.0,
    area_height_m=500.0,
    num_groups=1,
    members_per_group=3,
    duration_s=15.0,
    warmup_s=5.0,
)


def tiny_config(**overrides) -> SimulationScenarioConfig:
    return dataclasses.replace(TINY, **overrides)


# ----------------------------------------------------------------------
# Instruments


class TestInstruments:
    def test_counter_accumulates_and_rejects_decrease(self):
        counter = Counter("frames", unit="frames")
        counter.inc()
        counter.inc(4.5)
        assert counter.value == 5.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_is_none_until_set(self):
        gauge = Gauge("depth")
        assert gauge.value is None
        gauge.set(3)
        assert gauge.value == 3.0

    def test_series_rejects_time_going_backwards(self):
        series = TimeSeries("fg", interval_s=1.0)
        series.append(1.0, 5.0)
        series.append(1.0, 6.0)  # equal times are fine (closing sample)
        with pytest.raises(ValueError):
            series.append(0.5, 7.0)

    def test_series_statistics(self):
        series = TimeSeries("fg", interval_s=1.0)
        for t, v in ((1.0, 2.0), (2.0, 4.0), (3.0, 9.0)):
            series.append(t, v)
        assert series.last == 9.0
        assert series.mean() == pytest.approx(5.0)
        assert series.minimum() == 2.0
        assert series.maximum() == 9.0
        assert len(series) == 3

    def test_histogram_buckets_are_inclusive_upper_edges(self):
        histogram = Histogram("df", bounds=(0.5, 1.0))
        for value in (0.5, 0.9, 1.0, 7.0):
            histogram.observe(value)
        assert histogram.counts == [1, 2, 1]  # <=0.5, <=1.0, overflow
        assert histogram.count == 4
        assert histogram.min == 0.5 and histogram.max == 7.0

    def test_histogram_rejects_bad_bounds(self):
        Histogram("ok", bounds=(1.0, 2.0, 3.0))  # increasing: accepted
        with pytest.raises(ValueError):
            Histogram("bad", bounds=())
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(2.0, 1.0))

    @pytest.mark.parametrize("make", [
        lambda: Counter("c", "d", "u"),
        lambda: Gauge("g"),
        lambda: TimeSeries("s", interval_s=0.5, unit="pkts"),
        lambda: Histogram("h", bounds=(1.0, 2.0)),
    ])
    def test_record_round_trip(self, make):
        instrument = make()
        if isinstance(instrument, Counter):
            instrument.inc(7)
        elif isinstance(instrument, Gauge):
            instrument.set(1.25)
        elif isinstance(instrument, TimeSeries):
            instrument.append(0.5, 1.0)
            instrument.append(1.0, 2.0)
        else:
            instrument.observe(1.5)
        record = json.loads(json.dumps(instrument.to_record()))
        restored = type(instrument).from_record(record)
        assert restored == instrument
        assert restored.to_record() == instrument.to_record()


# ----------------------------------------------------------------------
# Hub


class TestHub:
    def test_get_or_create_and_kind_conflict(self):
        hub = TelemetryHub()
        counter = hub.counter("x")
        assert hub.counter("x") is counter
        with pytest.raises(TypeError):
            hub.gauge("x")

    def test_mapping_probe_feeds_suffixed_series(self):
        hub = TelemetryHub()
        hub.add_probe("fg", lambda: {"group1": 3.0, "group2": 5.0})
        hub.sample(now=1.0)
        hub.sample(now=2.0)
        assert hub.get("fg.group1").values == [3.0, 3.0]
        assert hub.get("fg.group2").values == [5.0, 5.0]

    def test_none_probe_value_skips_tick(self):
        hub = TelemetryHub()
        ticks = iter([None, 4.0])
        hub.add_probe("rate", lambda: next(ticks))
        hub.sample(now=1.0)
        hub.sample(now=2.0)
        assert hub.get("rate").values == [4.0]

    def test_drive_samples_once_per_interval(self):
        sim = Simulator()
        hub = TelemetryHub(TelemetryConfig(enabled=True, sample_interval_s=1.0))
        hub.add_probe("depth", lambda: float(sim.queue_depth))
        hub.drive(sim, until=5.0)
        hub.finalize(sim)
        # 4 in-run boundaries (1..4 s) + the closing sample at finalize.
        assert hub.samples_taken == 5
        assert sim.now == 5.0

    def test_finalize_publishes_recorder_health(self):
        sim = Simulator()
        hub = TelemetryHub(TelemetryConfig(enabled=True, max_trace_entries=1))
        hub.record_event(0.0, "a")
        hub.record_event(0.1, "b")  # over the bound: dropped
        hub.finalize(sim)
        assert hub.get("trace.entries").value == 1
        assert hub.get("trace.dropped").value == 1

    def test_config_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            TelemetryConfig(sample_interval_s=0.0)


# ----------------------------------------------------------------------
# Manifest + export


def small_populated_hub() -> TelemetryHub:
    hub = TelemetryHub(TelemetryConfig(enabled=True))
    hub.counter("frames", unit="frames").inc(10)
    hub.gauge("depth").set(2)
    series = hub.time_series("fg", unit="nodes")
    series.append(1.0, 3.0)
    series.append(2.0, 4.0)
    hub.histogram("df", bounds=(0.5, 1.0)).observe(0.7)
    hub.record_event(0.5, "fg_size", group=1, size=3)
    return hub


class TestExport:
    def test_round_trip_is_lossless(self, tmp_path):
        hub = small_populated_hub()
        manifest = build_manifest(
            "spp", TINY, seed=3, wall_time_s=1.5, sim_duration_s=15.0,
            events_executed=1234, extra={"num_nodes": 10},
        )
        path = tmp_path / trace_filename(manifest)
        write_trace(str(path), hub, manifest)

        trace = read_trace(str(path))
        assert trace.manifest == manifest
        assert trace.manifest.extra == {"num_nodes": 10}
        assert trace.instruments == hub.instruments()
        assert [e.tag for e in trace.events] == ["fg_size"]
        assert trace.events[0].data == {"group": 1, "size": 3}
        assert trace.events_dropped == 0
        assert trace.label == "spp/seed=3"

    def test_dropped_events_reach_the_export(self, tmp_path):
        hub = TelemetryHub(TelemetryConfig(enabled=True, max_trace_entries=1))
        hub.record_event(0.0, "a")
        hub.record_event(0.1, "b")
        manifest = build_manifest("odmrp", TINY, seed=1)
        path = tmp_path / "t.jsonl"
        write_trace(str(path), hub, manifest)
        trace = read_trace(str(path))
        assert trace.events_dropped == 1
        assert len(trace.events) == 1

    def test_reader_rejects_non_manifest_head(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "event", "time": 0.0}) + "\n")
        with pytest.raises(TraceFormatError):
            read_trace(str(path))

    def test_reader_rejects_unknown_format_version(self, tmp_path):
        manifest = build_manifest("spp", TINY, seed=1)
        record = manifest.to_record()
        record["format"] = TRACE_FORMAT_VERSION + 1
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(TraceFormatError):
            read_trace(str(path))

    def test_reader_rejects_unknown_record_type(self, tmp_path):
        manifest = build_manifest("spp", TINY, seed=1)
        record = manifest.to_record()
        record["format"] = TRACE_FORMAT_VERSION
        path = tmp_path / "odd.jsonl"
        path.write_text(
            json.dumps(record) + "\n" + json.dumps({"type": "mystery"}) + "\n"
        )
        with pytest.raises(TraceFormatError):
            read_trace(str(path))

    def test_manifest_config_hash_tracks_config_changes(self):
        base = build_manifest("spp", TINY, seed=1)
        changed = build_manifest(
            "spp", tiny_config(duration_s=16.0), seed=1
        )
        assert base.config_hash != changed.config_hash
        assert base.config_hash == config_digest(TINY)

    def test_canonicalize_is_shared_with_the_cache_key(self):
        # The cache key and the manifest hash must reduce configs the
        # same way, so a config edit invalidates both in lockstep.
        spec = RunSpec("spp", TINY, 1)
        key_a = spec.cache_key()
        assert canonicalize(TINY) == canonicalize(tiny_config())
        spec_b = RunSpec("spp", tiny_config(
            telemetry=TelemetryConfig(enabled=True)), 1)
        assert spec_b.cache_key() != key_a


# ----------------------------------------------------------------------
# End-to-end wiring


@pytest.fixture(scope="module")
def telemetry_run(tmp_path_factory):
    export_dir = str(tmp_path_factory.mktemp("traces"))
    config = tiny_config(
        telemetry=TelemetryConfig(enabled=True, export_dir=export_dir)
    )
    return run_protocol("spp", config)


class TestEndToEnd:
    def test_disabled_run_matches_seed_exactly(self, telemetry_run):
        baseline = run_protocol("spp", tiny_config())
        assert baseline.telemetry_path is None
        # Everything except the artifact path must be bit-identical.
        assert dataclasses.replace(telemetry_run, telemetry_path=None) \
            == baseline
        assert telemetry_run.counters == baseline.counters

    def test_artifact_is_emitted_and_summarizable(self, telemetry_run):
        assert telemetry_run.telemetry_path is not None
        trace = read_trace(telemetry_run.telemetry_path)
        assert trace.manifest.protocol == "spp"
        assert trace.manifest.extra["num_nodes"] == 10
        assert trace.manifest.events_executed > 0
        assert trace.manifest.wall_time_s > 0
        delivered = trace.instrument("sink.delivered_packets")
        assert delivered.value == telemetry_run.delivered_packets
        series = trace.instrument("engine.event_rate")
        assert len(series) > 0

        text = summarize_trace(trace)
        assert "spp seed=1" in text
        assert "engine.event_rate" in text
        assert "sink.delivered_packets" in text

    def test_diff_of_a_trace_with_itself_is_flat(self, telemetry_run):
        trace = read_trace(telemetry_run.telemetry_path)
        text = diff_traces(trace, trace)
        assert "configs differ" not in text
        assert "only in" not in text

    def test_default_telemetry_is_off(self):
        config = SimulationScenarioConfig()
        assert config.telemetry.enabled is False


# ----------------------------------------------------------------------
# CLI


class TestCli:
    def test_version_flag(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_telemetry_dir_flag_parsed(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["fig2-sim", "--telemetry-dir", "/tmp/traces"]
        )
        assert args.telemetry_dir == "/tmp/traces"

    def test_summarize_and_diff_commands(self, telemetry_run, capsys):
        from repro.cli import main

        path = telemetry_run.telemetry_path
        assert main(["telemetry", "summarize", path]) == 0
        out = capsys.readouterr().out
        assert "engine.event_rate" in out

        assert main(["telemetry", "diff", path, path]) == 0
        out = capsys.readouterr().out
        assert "instrument" in out

    def test_summarize_reports_bad_files(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.jsonl"
        bad.write_text("{}\n")
        assert main(["telemetry", "summarize", str(bad)]) == 1
        assert "ERROR" in capsys.readouterr().err
