"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import Event, EventPriority


class TestScheduling:
    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_in_scheduling_order(self, sim):
        order = []
        for tag in range(10):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == list(range(10))

    def test_priority_breaks_same_time_ties(self, sim):
        order = []
        sim.schedule(1.0, order.append, "late", priority=EventPriority.STATS)
        sim.schedule(1.0, order.append, "early", priority=EventPriority.PHY)
        sim.run()
        assert order == ["early", "late"]

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_nested_scheduling_from_callback(self, sim):
        order = []

        def outer():
            order.append("outer")
            sim.schedule(1.0, order.append, "inner")

        sim.schedule(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]
        assert sim.now == 2.0


class TestRunUntil:
    def test_until_is_exclusive(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, "x")
        sim.run(until=5.0)
        assert fired == []
        assert sim.now == 5.0

    def test_clock_set_to_until_even_if_queue_drains(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_remaining_events_survive_for_next_run(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 2)
        sim.run(until=5.0)
        assert fired == [1]
        sim.run(until=20.0)
        assert fired == [1, 2]

    def test_stop_halts_the_loop(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, sim.stop)
        sim.schedule(3.0, fired.append, 3)
        sim.run()
        assert fired == [1]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        assert handle.cancel()
        sim.run()
        assert fired == []

    def test_double_cancel_returns_false(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        assert handle.cancel() is True
        assert handle.cancel() is False

    def test_pending_events_skips_cancelled(self, sim):
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending_events() == 1
        assert not keep.cancelled

    def test_peek_time_skips_cancelled(self, sim):
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0


class TestStep:
    def test_step_runs_exactly_one_event(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step() is True
        assert fired == [1]

    def test_step_on_empty_queue_returns_false(self, sim):
        assert sim.step() is False

    def test_step_until_is_half_open_like_run(self, sim):
        """step(until=T) must not execute an event scheduled exactly at T."""
        fired = []
        sim.schedule(5.0, fired.append, "at-bound")
        assert sim.step(until=5.0) is False
        assert fired == []
        assert sim.pending_events() == 1  # still queued, not consumed

    def test_step_after_run_until_respects_bound(self, sim):
        """Regression: after run(until=T), a bounded step must not pull a
        time-T event forward out of order -- a later run(until=T2) is
        entitled to execute it interleaved with anything scheduled in
        [T, T2) at higher priority."""
        order = []
        sim.schedule(5.0, order.append, "exactly-at-T")
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert order == []
        assert sim.step(until=5.0) is False
        assert order == []
        # The event is executed in order once the window opens.
        sim.schedule_at(
            5.0, order.append, "same-time-higher-prio",
            priority=EventPriority.PHY,
        )
        sim.run(until=6.0)
        assert order == ["same-time-higher-prio", "exactly-at-T"]

    def test_step_until_executes_events_before_bound(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        assert sim.step(until=1.5) is True
        assert fired == ["a"]
        assert sim.step(until=1.5) is False
        assert fired == ["a"]

    def test_step_until_skips_cancelled_up_to_bound(self, sim):
        fired = []
        dropped = sim.schedule(1.0, fired.append, "cancelled")
        sim.schedule(3.0, fired.append, "beyond")
        dropped.cancel()
        assert sim.step(until=2.0) is False
        assert fired == []
        assert sim.step() is True
        assert fired == ["beyond"]


class TestDeterminism:
    def test_same_seed_same_rng_draws(self):
        def draws(seed):
            simulator = Simulator(seed=seed)
            rng = simulator.rng.stream("test")
            return [rng.random() for _ in range(20)]

        assert draws(42) == draws(42)
        assert draws(42) != draws(43)

    def test_event_counter_counts_executed_only(self, sim):
        sim.schedule(1.0, lambda: None)
        cancelled = sim.schedule(2.0, lambda: None)
        cancelled.cancel()
        sim.run()
        assert sim.events_executed == 1


class TestEventOrdering:
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=50,
        )
    )
    def test_execution_order_is_sorted_by_time(self, times):
        simulator = Simulator()
        executed = []
        for t in times:
            simulator.schedule(t, executed.append, t)
        simulator.run()
        assert executed == sorted(executed)

    def test_event_lt_uses_time_then_priority_then_seq(self):
        early = Event(1.0, lambda: None, priority=5)
        late = Event(2.0, lambda: None, priority=0)
        assert early < late
        high = Event(1.0, lambda: None, priority=0)
        assert high < early
