"""ODMRP edge cases: multiple groups, membership churn, odd inputs."""

from __future__ import annotations

import pytest

from repro.core.metrics import SppMetric
from repro.odmrp.config import OdmrpConfig
from repro.sim.process import PeriodicTask
from tests.conftest import link, make_loss_network
from tests.test_odmrp import build_routers


class TestMultipleGroups:
    def test_two_groups_share_forwarders_independently(self):
        """A node forwards for the groups whose replies named it, and
        data of each group reaches only that group's members."""
        losses = {link(0, 1): 0.0, link(1, 2): 0.0, link(1, 3): 0.0}
        network = make_loss_network(4, losses)
        deliveries = []
        routers = build_routers(network, deliveries=deliveries)
        routers[2].join_group(1)
        routers[3].join_group(2)
        routers[0].start_source(1)
        routers[0].start_source(2)
        network.run(2.0)
        assert routers[1].is_forwarder(1)
        assert routers[1].is_forwarder(2)
        routers[0].send_data(1)
        routers[0].send_data(2)
        network.run(4.0)
        by_receiver = {}
        for receiver, source, seq in deliveries:
            by_receiver.setdefault(receiver, 0)
            by_receiver[receiver] += 1
        assert by_receiver == {2: 1, 3: 1}

    def test_node_in_two_groups_delivers_both(self):
        losses = {link(0, 1): 0.0, link(2, 1): 0.0}
        network = make_loss_network(3, losses)
        deliveries = []
        routers = build_routers(network, deliveries=deliveries)
        routers[1].join_group(1)
        routers[1].join_group(2)
        routers[0].start_source(1)
        routers[2].start_source(2)
        network.run(2.0)
        # Stagger the sends: the two sources are hidden terminals, and
        # simultaneous data frames would simply collide at the member.
        routers[0].send_data(1)
        network.sim.schedule(0.1, lambda: routers[2].send_data(2))
        network.run(4.0)
        sources_seen = {source for _r, source, _q in deliveries}
        assert sources_seen == {0, 2}


class TestMembershipChurn:
    def test_leave_group_stops_delivery(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        deliveries = []
        routers = build_routers(network, deliveries=deliveries)
        routers[1].join_group(1)
        routers[0].start_source(1)
        network.run(1.0)
        routers[0].send_data(1)
        network.run(2.0)
        assert len(deliveries) == 1
        routers[1].leave_group(1)
        routers[0].send_data(1)
        network.run(4.0)
        assert len(deliveries) == 1  # no delivery after leaving

    def test_late_join_picks_up_next_refresh(self):
        network = make_loss_network(3, {link(0, 1): 0.0, link(1, 2): 0.0})
        deliveries = []
        config = OdmrpConfig(refresh_interval_s=1.0, fg_timeout_s=3.0)
        routers = build_routers(network, config=config,
                                deliveries=deliveries)
        routers[0].start_source(1)
        network.run(2.0)
        # Nobody listening yet; now node 2 joins mid-run.
        routers[2].join_group(1)
        network.run(4.0)  # one more refresh round passes
        task = PeriodicTask(network.sim, 0.1, lambda: routers[0].send_data(1))
        task.start()
        network.run(8.0)
        task.stop()
        assert len(deliveries) > 20

    def test_leave_is_idempotent(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        routers = build_routers(network)
        routers[1].leave_group(99)  # never joined: no error
        routers[1].join_group(1)
        routers[1].leave_group(1)
        routers[1].leave_group(1)
        assert 1 not in routers[1].member_groups


class TestSourceLifecycle:
    def test_stop_source_is_idempotent(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        routers = build_routers(network)
        routers[0].start_source(1)
        routers[0].stop_source(1)
        routers[0].stop_source(1)
        network.run(10.0)
        first_burst = network.nodes[0].counters.get("odmrp.query_originated")
        network.run(20.0)
        assert network.nodes[0].counters.get(
            "odmrp.query_originated"
        ) == first_burst

    def test_start_source_twice_keeps_one_refresh_task(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        config = OdmrpConfig(refresh_interval_s=1.0, fg_timeout_s=3.0)
        routers = build_routers(network, config=config)
        routers[0].start_source(1)
        routers[0].start_source(1)
        network.run(10.3)
        queries = network.nodes[0].counters.get("odmrp.query_originated")
        # One task at ~1 Hz for 10 s, not two.
        assert queries <= 12

    def test_source_can_also_be_member_of_other_group(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        deliveries = []
        routers = build_routers(network, deliveries=deliveries)
        routers[0].start_source(1)
        routers[0].join_group(2)
        routers[1].join_group(1)
        routers[1].start_source(2)
        network.run(2.0)
        routers[0].send_data(1)
        routers[1].send_data(2)
        network.run(4.0)
        receivers = {receiver for receiver, _s, _q in deliveries}
        assert receivers == {0, 1}


class TestQueryRoundHousekeeping:
    def test_old_rounds_pruned(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        config = OdmrpConfig(refresh_interval_s=0.5, fg_timeout_s=1.5)
        routers = build_routers(network, config=config)
        routers[1].join_group(1)
        routers[0].start_source(1)
        network.run(30.0)  # ~60 refresh rounds
        # The receiver keeps only a handful of recent rounds.
        assert len(routers[1]._rounds) <= 6

    def test_metric_router_survives_unknown_neighbor_query(self):
        """A query from a neighbor never probed costs worst-case, not a
        crash (fresh node, estimator not warmed up)."""
        network = make_loss_network(2, {link(0, 1): 0.0})
        routers = build_routers(network, metric=SppMetric())
        routers[1].join_group(1)
        # Source starts immediately -- no probe warmup at all.
        routers[0].start_source(1)
        network.run(1.0)
        # The query was processed (round state exists), with zero-df cost.
        assert routers[1].current_upstream(0) == 0
