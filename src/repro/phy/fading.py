"""Per-packet multiplicative power fading.

The paper uses Rayleigh fading ("appropriate for environments with many
large reflectors ... where the sender and the receiver are not in
Line-of-Sight"), and its central mechanism -- long links become lossy,
min-hop ODMRP picks long links, metrics route around them -- depends on it.

Fading is sampled once per (transmission, receiver) pair: the channel is
assumed coherent over one packet but independent across packets, the
standard block-fading abstraction used by GloMoSim at 2 Mbps packet
durations.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod


class FadingModel(ABC):
    """Draws a multiplicative power gain (mean 1.0) per packet."""

    @abstractmethod
    def sample_power_gain(self, rng: random.Random) -> float:
        """A non-negative power gain with unit mean."""

    def sample_link_gain(
        self, link_key: tuple, now: float, rng: random.Random
    ) -> float:
        """Per-link, time-aware gain; defaults to the i.i.d. sample.

        Models with channel memory (see
        :class:`CorrelatedRayleighFading`) override this to keep one
        fading process per directed link.
        """
        return self.sample_power_gain(rng)


class NoFading(FadingModel):
    """Deterministic channel; every packet sees the mean path gain."""

    def sample_power_gain(self, rng: random.Random) -> float:
        return 1.0


class RayleighFading(FadingModel):
    """Rayleigh fading: amplitude Rayleigh, power exponential(mean=1).

    The power gain of a Rayleigh-faded channel is exponentially
    distributed; with unit mean, ``P(gain < g) = 1 - exp(-g)``.  Deep
    fades (gain << 1) are common, which is what degrades long links whose
    mean power sits near the receive threshold.
    """

    def sample_power_gain(self, rng: random.Random) -> float:
        return rng.expovariate(1.0)


class RicianFading(FadingModel):
    """Rician fading with K-factor (line-of-sight component).

    ``K`` is the ratio of LoS power to scattered power.  ``K = 0`` reduces
    to Rayleigh.  Included for the testbed emulation, where some links have
    partial line of sight.
    """

    def __init__(self, k_factor: float = 3.0) -> None:
        if k_factor < 0:
            raise ValueError(f"K-factor must be non-negative, got {k_factor}")
        self.k_factor = k_factor
        # Complex gain h = los + scatter, normalized to E[|h|^2] = 1.
        self._los_amplitude = math.sqrt(k_factor / (k_factor + 1.0))
        self._scatter_sigma = math.sqrt(1.0 / (2.0 * (k_factor + 1.0)))

    def sample_power_gain(self, rng: random.Random) -> float:
        real = self._los_amplitude + rng.gauss(0.0, self._scatter_sigma)
        imag = rng.gauss(0.0, self._scatter_sigma)
        return real * real + imag * imag


class CorrelatedRayleighFading(FadingModel):
    """Rayleigh fading with temporal correlation per link (Gauss-Markov).

    The complex channel gain of each directed link evolves as an AR(1)
    process: ``h' = rho h + sqrt(1 - rho^2) w`` with ``w ~ CN(0, 1)`` and
    ``rho = exp(-dt / coherence_time)``.  Marginally the power gain stays
    exponential with unit mean (exact Rayleigh), but a link in a deep
    fade stays faded for about one coherence time -- matching the
    block-correlated fading traces GloMoSim replays, where a static
    node's channel changes over seconds, not per packet.

    The correlation is what lets min-hop ODMRP extract some service from
    long links (they work for whole bursts when the channel is up); with
    i.i.d. per-packet fading the same links fail memorylessly and the
    baseline collapses, exaggerating the metrics' relative gains.
    """

    def __init__(self, coherence_time_s: float = 1.0) -> None:
        if coherence_time_s <= 0:
            raise ValueError(
                f"coherence time must be positive, got {coherence_time_s}"
            )
        self.coherence_time_s = coherence_time_s
        # link_key -> [last_update_time, h_real, h_imag]; a mutable list
        # updated in place, so the per-packet hot path allocates nothing
        # and writes the dict only on a link's first sample.
        self._state: dict = {}
        self._sigma = math.sqrt(0.5)  # per-component: E[|h|^2] = 1

    def sample_power_gain(self, rng: random.Random) -> float:
        """Marginal draw (used when no link identity is available)."""
        return rng.expovariate(1.0)

    def sample_link_gain(
        self, link_key: tuple, now: float, rng: random.Random
    ) -> float:
        state = self._state.get(link_key)
        if state is None:
            sigma = self._sigma
            gauss = rng.gauss
            real = gauss(0.0, sigma)
            imag = gauss(0.0, sigma)
            self._state[link_key] = [now, real, imag]
        else:
            dt = now - state[0]
            rho = math.exp(-dt / self.coherence_time_s)
            innovation = self._sigma * math.sqrt(max(0.0, 1.0 - rho * rho))
            real = state[1]
            imag = state[2]
            if innovation:
                gauss = rng.gauss
                real = rho * real + gauss(0.0, innovation)
                imag = rho * imag + gauss(0.0, innovation)
            else:
                real = rho * real
                imag = rho * imag
            state[0] = now
            state[1] = real
            state[2] = imag
        return real * real + imag * imag


def rayleigh_outage_probability(mean_snr_linear: float, threshold_linear: float) -> float:
    """Analytic packet-loss probability under Rayleigh block fading.

    With exponential power gain of unit mean, the instantaneous SNR is
    ``gain * mean_snr`` and the packet is lost when it falls below the
    threshold: ``P(loss) = 1 - exp(-threshold / mean_snr)``.

    Used by tests to validate the sampled reception model against theory,
    and by the analytic link-quality predictor in the experiment harness.
    """
    if mean_snr_linear <= 0:
        return 1.0
    return 1.0 - math.exp(-threshold_linear / mean_snr_linear)
