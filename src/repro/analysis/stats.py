"""Small statistics helpers (no heavy dependencies).

The experiment harness needs means, sample standard deviations, and
normal-approximation confidence intervals over per-topology replications.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return math.fsum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1); zero for fewer than two samples."""
    n = len(values)
    if n < 2:
        return 0.0
    center = mean(values)
    variance = math.fsum((v - center) ** 2 for v in values) / (n - 1)
    return math.sqrt(variance)


def confidence_interval_95(values: Sequence[float]) -> Tuple[float, float]:
    """Normal-approximation 95 % CI for the mean of ``values``."""
    center = mean(values)
    if len(values) < 2:
        return (center, center)
    half_width = 1.96 * stddev(values) / math.sqrt(len(values))
    return (center - half_width, center + half_width)


def relative_gain_pct(value: float, baseline: float) -> float:
    """Percentage improvement of ``value`` over ``baseline``."""
    if baseline == 0:
        raise ValueError("baseline is zero")
    return 100.0 * (value - baseline) / baseline
