"""Tests for the per-figure reproduction entry points."""

from __future__ import annotations

import pytest

from repro.experiments.figures import (
    FigureResult,
    PAPER_DELAY,
    PAPER_THROUGHPUT_HIGH_OVERHEAD,
    PAPER_THROUGHPUT_SIMULATIONS,
    PAPER_THROUGHPUT_TESTBED,
    figure2_delay,
    figure2_throughput_simulations,
    figure2_throughput_testbed,
    multi_source_gain_reduction,
    probing_rate_sensitivity,
    table1_probing_overhead,
)
from repro.experiments.results import RunResult
from repro.experiments.scenarios import SimulationScenarioConfig
from repro.testbed.emulator import TestbedScenarioConfig

TINY = SimulationScenarioConfig(
    num_nodes=14,
    area_width_m=600.0,
    area_height_m=600.0,
    members_per_group=3,
    num_groups=1,
    duration_s=40.0,
    warmup_s=12.0,
)


def fake_run(protocol, delivered, delay=0.01, probe_bytes=100.0, seed=1):
    return RunResult(
        protocol=protocol,
        topology_seed=seed,
        duration_s=10.0,
        offered_packets=1000,
        expected_deliveries=3000,
        delivered_packets=delivered,
        delivered_bytes=delivered * 512,
        mean_delay_s=delay,
        probe_bytes=probe_bytes,
    )


class TestPaperConstants:
    def test_throughput_orderings(self):
        """The reference series encode the paper's claims."""
        p = PAPER_THROUGHPUT_SIMULATIONS
        assert p["spp"] == max(p.values())
        assert p["odmrp"] == 1.0
        assert p["ett"] == min(v for k, v in p.items() if k != "odmrp")
        testbed = PAPER_THROUGHPUT_TESTBED
        assert testbed["pp"] == max(testbed.values())
        high = PAPER_THROUGHPUT_HIGH_OVERHEAD
        for name in ("ett", "etx", "metx", "pp", "spp"):
            assert high[name] < p[name]  # 5x probing drops every gain

    def test_delay_reference_has_all_protocols(self):
        assert set(PAPER_DELAY) == {
            "odmrp", "ett", "etx", "metx", "pp", "spp"
        }


class TestFigureResult:
    def test_gain_pct(self):
        result = FigureResult(
            name="x",
            measured={"odmrp": 1.0, "spp": 1.18},
            paper={},
        )
        assert result.gain_pct("spp") == pytest.approx(18.0)


class TestEntryPointsWithInjectedRuns:
    def runs(self):
        return [
            fake_run("odmrp", 1000, delay=0.010, probe_bytes=0.0),
            fake_run("ett", 1130, delay=0.012, probe_bytes=15000.0),
            fake_run("etx", 1150, delay=0.011, probe_bytes=3300.0),
            fake_run("metx", 1160, delay=0.012, probe_bytes=3100.0),
            fake_run("pp", 1180, delay=0.012, probe_bytes=13000.0),
            fake_run("spp", 1180, delay=0.011, probe_bytes=2700.0),
        ]

    def test_throughput_normalization(self):
        result = figure2_throughput_simulations(runs=self.runs())
        assert result.measured["odmrp"] == 1.0
        assert result.measured["spp"] == pytest.approx(1.18)
        assert result.paper == PAPER_THROUGHPUT_SIMULATIONS

    def test_delay_normalization(self):
        result = figure2_delay(runs=self.runs())
        assert result.measured["ett"] == pytest.approx(1.2)

    def test_table1_excludes_baseline(self):
        result = table1_probing_overhead(runs=self.runs())
        assert "odmrp" not in result.measured
        assert result.measured["ett"] == pytest.approx(
            100 * 15000.0 / (1130 * 512)
        )


class TestLiveTinyRuns:
    def test_probing_rate_sensitivity_tiny(self):
        results = probing_rate_sensitivity(
            TINY,
            seeds=(1,),
            multipliers=(1.0, 5.0),
            protocols=("odmrp", "spp"),
        )
        assert set(results) == {1.0, 5.0}
        for figure in results.values():
            assert "spp" in figure.measured
            assert figure.measured["odmrp"] == 1.0

    def test_multi_source_tiny(self):
        results = multi_source_gain_reduction(
            TINY,
            seeds=(1,),
            source_counts=(1, 2),
            protocols=("odmrp", "spp"),
        )
        assert set(results) == {1, 2}
        for count, figure in results.items():
            assert figure.measured["odmrp"] == 1.0
            # Both sources actually sent: their runs have offered load.
            offered = {run.protocol: run.offered_packets for run in figure.runs}
            assert offered["odmrp"] > 0

    def test_testbed_figure_tiny(self):
        config = TestbedScenarioConfig(duration_s=50.0, warmup_s=10.0)
        result = figure2_throughput_testbed(config, run_seeds=(1,))
        assert set(result.measured) == {
            "odmrp", "ett", "etx", "metx", "pp", "spp"
        }
        assert result.measured["odmrp"] == 1.0
        assert all(value > 0 for value in result.measured.values())
