"""Standard probe set: wires a simulation scenario into a TelemetryHub.

Everything here is *pull-based*: probes read state the engine, MAC,
channel, probing layer, and routers already maintain (via the small
``telemetry_snapshot()`` / accessor hooks on those classes) and are
evaluated only from the hub's sampling chain.  No model code calls into
telemetry, so a run without a hub executes the exact seed instruction
stream.

Installed series (per sample interval, virtual time):

* ``engine.queue_depth``, ``engine.event_rate`` -- event-queue backlog
  and events executed per virtual second.
* ``mac.queue_depth``, ``mac.frame_rate``, ``mac.retransmission_rate``,
  ``phy.collision_rate`` -- aggregated over all nodes.
* ``probing.df.mean``, ``probing.cost.mean`` (+ the ``probing.df``
  histogram; per-link ``probing.df.link.*`` series when
  ``TelemetryConfig.per_link``).
* ``odmrp.fg_size.group<g>`` and ``odmrp.query_fanout`` -- forwarding
  group size per multicast group and JOIN QUERY rebroadcasts per tick.
* ``maodv.tree_nodes``, ``maodv.tree_churn`` -- when the scenario runs
  the tree-based router.
* ``mobility.speed_mean``, ``mobility.update_rate`` -- when a mobility
  driver is attached; ``energy.remaining_j``, ``energy.alive_nodes`` --
  when battery accounting is enabled.

Forwarding-group size *changes* are additionally logged as structured
events (tag ``fg_size``), which is what makes tree churn legible in the
exported trace without diffing series by hand.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.maodv.protocol import MaodvRouter
from repro.telemetry.hub import TelemetryHub

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (scenarios -> here)
    from repro.experiments.scenarios import SimulationScenario


def _delta(fn: Callable[[], float]) -> Callable[[], Optional[float]]:
    """Turn a cumulative reader into a per-tick increment probe.

    The first tick primes the baseline and reports nothing, so rate
    series always describe a full interval.
    """
    last: list = [None]

    def probe() -> Optional[float]:
        current = fn()
        previous, last[0] = last[0], current
        return None if previous is None else current - previous

    return probe


def install_scenario_probes(hub: TelemetryHub, scenario: "SimulationScenario") -> None:
    """Register the standard probe set for one built scenario."""
    sim = scenario.network.sim
    nodes = scenario.network.nodes
    interval = hub.config.sample_interval_s

    # ---- engine --------------------------------------------------------
    hub.add_probe("engine.queue_depth", lambda: float(sim.queue_depth))
    hub.add_probe(
        "engine.event_rate",
        _delta(lambda: float(sim.events_executed) / interval),
        unit="events/s",
    )

    # ---- MAC / PHY -----------------------------------------------------
    def mac_total(key: str) -> float:
        return float(sum(node.mac.telemetry_snapshot()[key] for node in nodes))

    hub.add_probe("mac.queue_depth",
                  lambda: mac_total("queue_length"))
    hub.add_probe("mac.frame_rate",
                  _delta(lambda: mac_total("frames_sent") / interval),
                  unit="frames/s")
    hub.add_probe(
        "mac.retransmission_rate",
        _delta(lambda: mac_total("retransmissions") / interval),
        unit="frames/s",
    )
    hub.add_probe(
        "mac.backoff_rate",
        _delta(lambda: mac_total("backoffs") / interval),
        unit="backoffs/s",
    )
    hub.add_probe(
        "phy.collision_rate",
        _delta(lambda: sum(
            node.counters.get("phy.rx_failed_collision") for node in nodes
        ) / interval),
        unit="losses/s",
    )

    # ---- probing / link quality ---------------------------------------
    if scenario.probing is not None:
        probing = scenario.probing
        metric = scenario.metric
        df_histogram = hub.histogram(
            "probing.df",
            bounds=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
            description="per-link delivery fraction samples",
        )

        def sample_links() -> Optional[Dict[str, float]]:
            total_df = 0.0
            total_cost = 0.0
            links = 0
            per_link: Dict[str, float] = {}
            for node_id, table in probing.tables.items():
                for neighbor_id, quality in table.link_qualities().items():
                    df_histogram.observe(quality.forward_delivery_ratio)
                    total_df += quality.forward_delivery_ratio
                    if metric is not None:
                        total_cost += metric.link_cost(quality)
                    links += 1
                    if hub.config.per_link:
                        per_link[f"link.{neighbor_id}->{node_id}"] = (
                            quality.forward_delivery_ratio
                        )
            if links == 0:
                return None
            summary = {"df.mean": total_df / links,
                       "links_heard": float(links)}
            if metric is not None:
                summary["cost.mean"] = total_cost / links
            summary.update(per_link)
            return summary

        hub.add_probe("probing", sample_links)

    # ---- ODMRP / MAODV -------------------------------------------------
    routers = scenario.routers
    group_ids = [group.group_id for group in scenario.groups.groups]
    last_fg_size: Dict[int, int] = {}

    def fg_sizes() -> Dict[str, float]:
        now = sim.now
        sizes: Dict[str, float] = {}
        for group_id in group_ids:
            size = sum(
                1 for router in routers.values()
                if router.forwarding_groups.is_active(group_id, now)
            )
            sizes[f"group{group_id}"] = float(size)
            if last_fg_size.get(group_id) != size:
                hub.record_event(now, "fg_size", group=group_id, size=size)
                last_fg_size[group_id] = size
        return sizes

    hub.add_probe("odmrp.fg_size", fg_sizes)
    hub.add_probe(
        "odmrp.query_fanout",
        _delta(lambda: sum(
            router.node.counters.get("odmrp.query_forwarded")
            for router in routers.values()
        )),
        unit="rebroadcasts/tick",
    )

    # ---- mobility / energy ---------------------------------------------
    # Pull-based like everything else: the driver/accountant maintain
    # these totals for their own bookkeeping; sampling them cannot
    # perturb the run.
    if scenario.mobility is not None:
        mobility = scenario.mobility
        hub.add_probe(
            "mobility.speed_mean",
            _delta(
                lambda: mobility.total_distance_m
                / (interval * len(nodes))
            ),
            unit="m/s",
        )
        hub.add_probe(
            "mobility.update_rate",
            _delta(lambda: float(mobility.updates) / interval),
            unit="ticks/s",
        )
    if scenario.energy is not None:
        energy = scenario.energy
        hub.add_probe(
            "energy.remaining_j",
            lambda: energy.total_remaining_j(),
            unit="J",
        )
        hub.add_probe(
            "energy.alive_nodes",
            lambda: float(energy.alive_count()),
        )

    # Tree probes apply when the registry spec resolved a tree-based
    # router (any MaodvRouter subclass); hand-assembled scenarios without
    # a spec fall back to inspecting the router instances directly.
    spec = scenario.spec
    runs_tree_router = (
        issubclass(spec.router, MaodvRouter) if spec is not None
        else any(isinstance(router, MaodvRouter) for router in routers.values())
    )
    if runs_tree_router:
        hub.add_probe(
            "maodv.tree_nodes",
            lambda: float(sum(
                router.active_tree_count() > 0
                for router in routers.values()
                if isinstance(router, MaodvRouter)
            )),
        )
        hub.add_probe(
            "maodv.tree_churn",
            _delta(lambda: sum(
                router.node.counters.get("maodv.tree_joined")
                for router in routers.values()
            )),
            unit="joins/tick",
        )


def finalize_scenario(hub: TelemetryHub, scenario: "SimulationScenario") -> None:
    """Publish end-of-run totals as counters/gauges and close sampling."""
    nodes = scenario.network.nodes
    totals: Dict[str, float] = {}
    for node in nodes:
        for key, value in node.mac.telemetry_snapshot().items():
            if key != "queue_length":
                totals[key] = totals.get(key, 0.0) + value
    for key, value in totals.items():
        hub.counter(f"mac.{key}").inc(value)
    for name, value in scenario.network.channel.telemetry_snapshot().items():
        if not name.startswith("channel."):
            name = f"channel.{name}"
        hub.counter(name).inc(value)
    hub.counter("phy.collisions").inc(
        scenario.network.total_counter("phy.rx_failed_collision")
    )
    hub.counter("sink.delivered_packets").inc(scenario.sink.total_packets)
    hub.counter("sink.delivered_bytes", unit="bytes").inc(
        scenario.sink.total_bytes
    )
    hub.gauge("engine.events_executed").set(scenario.network.sim.events_executed)
    hub.finalize(scenario.network.sim)
