"""Benchmark E13 (ablation): PP's loss penalty and EWMA memory.

Section 4.2.1 and 5.3 attribute PP's strength to two design choices: the
20% penalty per lost probe pair (which compounds exponentially on lossy
links) and the long EWMA history (which keeps blown-up costs high so
lossy paths are "never chosen in the future").  This ablation removes
each ingredient on the testbed, where those properties earned PP its
best-in-class +17.5%.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.tables import render_table
from repro.experiments.runner import collect_result
from repro.probing.manager import ProbingConfig
from repro.testbed.emulator import build_testbed_scenario
from benchmarks.conftest import testbed_config, testbed_seeds

VARIANTS = (
    ("paper (1.2 penalty, 0.9 history)", 1.2, 0.9),
    ("no penalty", 1.0, 0.9),
    ("short memory", 1.2, 0.5),
)


def run_sweep():
    base = testbed_config()
    results = {}
    for label, penalty, history in VARIANTS:
        probing = ProbingConfig(
            loss_penalty_factor=penalty, ewma_history_weight=history
        )
        delivered = 0
        for seed in testbed_seeds():
            config = replace(
                base.with_run_seed(seed), probing=probing
            )
            scenario = build_testbed_scenario("pp", config)
            scenario.run()
            delivered += collect_result(scenario).delivered_packets
        results[label] = delivered
    return results


def bench_ablation_pp_penalty(benchmark):
    results = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    paper_value = results[VARIANTS[0][0]]
    rows = [
        (label, str(count), f"{count / paper_value:.3f}")
        for label, count in results.items()
    ]
    print()
    print(render_table(
        ("PP variant", "delivered packets", "vs paper settings"),
        rows,
        title="Ablation: PP's loss penalty and EWMA memory (testbed)",
    ))
    benchmark.extra_info["results"] = results
    # Removing the penalty removes PP's only loss signal -- it must not
    # outperform the paper's configuration.
    assert results["no penalty"] <= paper_value * 1.05, results
