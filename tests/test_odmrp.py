"""Tests for ODMRP state, the original protocol, and the metric variants."""

from __future__ import annotations

import pytest

from repro.core.metrics import EtxMetric, MetxMetric, SppMetric
from repro.odmrp.config import OdmrpConfig
from repro.odmrp.messages import JoinQueryPayload
from repro.odmrp.protocol import OdmrpRouter
from repro.odmrp.state import DuplicateCache, ForwardingGroupState
from repro.probing.broadcast_probe import BroadcastProbeAgent
from repro.probing.neighbor_table import NeighborTable
from tests.conftest import link, make_chain_network, make_loss_network


class TestDuplicateCache:
    def test_first_is_new_second_is_duplicate(self):
        cache = DuplicateCache()
        assert cache.check_and_add(("a", 1))
        assert not cache.check_and_add(("a", 1))

    def test_fifo_eviction(self):
        cache = DuplicateCache(max_entries=2)
        cache.check_and_add(1)
        cache.check_and_add(2)
        cache.check_and_add(3)  # evicts 1
        assert 1 not in cache
        assert 2 in cache and 3 in cache
        assert len(cache) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            DuplicateCache(max_entries=0)


class TestForwardingGroupState:
    def test_refresh_and_expiry(self):
        fg = ForwardingGroupState()
        fg.refresh(1, until=10.0)
        assert fg.is_active(1, 5.0)
        assert not fg.is_active(1, 10.0)
        assert not fg.is_active(2, 5.0)

    def test_refresh_never_shortens(self):
        fg = ForwardingGroupState()
        fg.refresh(1, until=10.0)
        fg.refresh(1, until=7.0)
        assert fg.expiry_of(1) == 10.0

    def test_active_groups(self):
        fg = ForwardingGroupState()
        fg.refresh(2, until=10.0)
        fg.refresh(1, until=10.0)
        fg.refresh(3, until=1.0)
        assert fg.active_groups(5.0) == [1, 2]


class TestOdmrpConfig:
    def test_alpha_must_be_below_delta(self):
        with pytest.raises(ValueError):
            OdmrpConfig(delta_s=0.02, alpha_s=0.03)
        with pytest.raises(ValueError):
            OdmrpConfig(delta_s=0.02, alpha_s=0.02)

    def test_fg_timeout_must_cover_refresh(self):
        with pytest.raises(ValueError):
            OdmrpConfig(refresh_interval_s=3.0, fg_timeout_s=2.0)

    def test_reply_size_grows_with_entries(self):
        config = OdmrpConfig()
        assert config.reply_size_bytes(2) == (
            config.reply_base_size_bytes + 2 * config.reply_entry_size_bytes
        )


def build_routers(network, metric=None, config=None, deliveries=None):
    """Attach ODMRP (and probing when a metric is used) to every node."""
    config = config or OdmrpConfig()
    routers = {}
    tables = {}
    agents = []
    if metric is not None:
        for node in network.nodes:
            tables[node.node_id] = NeighborTable(
                network.sim, node, window_intervals=20
            )
            agent = BroadcastProbeAgent(network.sim, node, interval_s=2.0)
            agent.start()
            agents.append(agent)

    def on_deliver(packet, payload, receiver_id):
        if deliveries is not None:
            deliveries.append((receiver_id, payload.source_id, payload.sequence))

    for node in network.nodes:
        routers[node.node_id] = OdmrpRouter(
            network.sim,
            node,
            config=config,
            metric=metric,
            neighbor_table=tables.get(node.node_id),
            on_deliver=on_deliver,
        )
    return routers


class TestOriginalOdmrp:
    def test_chain_delivery_end_to_end(self):
        """Query floods down a clean 4-hop chain, the reply builds the
        forwarding group, and data flows to the member."""
        network = make_loss_network(
            5,
            {link(i, i + 1): 0.0 for i in range(4)},
        )
        deliveries = []
        routers = build_routers(network, deliveries=deliveries)
        routers[4].join_group(1)
        routers[0].start_source(1)
        network.run(2.0)  # let a query round and replies finish
        # Pace packets so the multi-hop broadcast pipeline can drain:
        # back-to-back broadcasts on a chain self-collide (hidden
        # terminals two hops apart), which is real behaviour, not a bug.
        for i in range(50):
            network.sim.schedule(
                i * 0.025, lambda: routers[0].send_data(1)
            )
        network.run(6.0)
        received = [seq for (r, s, seq) in deliveries if r == 4]
        assert len(received) >= 45
        # Intermediate nodes became forwarders; the member did not need to.
        for hop in (1, 2, 3):
            assert routers[hop].is_forwarder(1)

    def test_source_is_not_its_own_receiver(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        deliveries = []
        routers = build_routers(network, deliveries=deliveries)
        routers[1].join_group(1)
        routers[0].start_source(1)
        network.run(1.0)
        routers[0].send_data(1)
        network.run(2.0)
        assert all(receiver != 0 for receiver, _s, _q in deliveries)

    def test_duplicate_data_not_delivered_twice(self):
        """Two forwarding paths deliver each packet exactly once.

        The relays are linked so they carrier-sense each other and
        serialize (otherwise their simultaneous forwards would simply
        collide at the member -- the hidden-terminal case is covered in
        the MAC tests)."""
        losses = {
            link(0, 1): 0.0, link(1, 3): 0.0,
            link(0, 2): 0.0, link(2, 3): 0.0,
            link(1, 2): 0.0,
        }
        network = make_loss_network(4, losses)
        deliveries = []
        routers = build_routers(network, deliveries=deliveries)
        routers[3].join_group(1)
        routers[0].start_source(1)
        network.run(2.0)
        routers[0].send_data(1)
        network.run(4.0)
        member_deliveries = [d for d in deliveries if d[0] == 3]
        assert len(member_deliveries) == 1

    def test_forwarding_group_expires_without_refresh(self):
        network = make_loss_network(3, {link(0, 1): 0.0, link(1, 2): 0.0})
        routers = build_routers(network)
        routers[2].join_group(1)
        routers[0].start_source(1)
        network.run(2.0)
        assert routers[1].is_forwarder(1)
        routers[0].stop_source(1)
        config = routers[1].config
        network.run(network.sim.now + config.fg_timeout_s + 1.0)
        assert not routers[1].is_forwarder(1)

    def test_send_data_requires_source_role(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        routers = build_routers(network)
        with pytest.raises(ValueError):
            routers[0].send_data(1)

    def test_metric_requires_neighbor_table(self):
        network = make_loss_network(2, {link(0, 1): 0.0})
        with pytest.raises(ValueError):
            OdmrpRouter(
                network.sim, network.nodes[0], metric=SppMetric()
            )

    def test_original_drops_duplicate_queries(self):
        losses = {
            link(0, 1): 0.0, link(1, 3): 0.0,
            link(0, 2): 0.0, link(2, 3): 0.0,
            link(1, 2): 0.0,
        }
        network = make_loss_network(4, losses)
        routers = build_routers(network)
        routers[3].join_group(1)
        routers[0].start_source(1)
        network.run(2.5)
        # Node 3 hears the query twice (via 1 and 2) every round but
        # forwards/replies only once per round.
        dropped = network.nodes[3].counters.get(
            "odmrp.query_duplicate_dropped"
        )
        assert dropped >= 1


class TestMetricOdmrp:
    def figure3_network(self, seed=11):
        """Figure 3 as a live network: A=0, B=1, C=2, D=3, E=4."""
        losses = {
            link(0, 1): 0.2,  # A-B df 0.8
            link(1, 2): 0.2,  # B-C df 0.8
            link(2, 3): 0.2,  # C-D df 0.8
            link(0, 4): 0.1,  # A-E df 0.9
            link(4, 3): 0.6,  # E-D df 0.4
        }
        return make_loss_network(5, losses, seed=seed)

    def run_figure3(self, metric, seed=11):
        network = self.figure3_network(seed)
        deliveries = []
        routers = build_routers(network, metric=metric, deliveries=deliveries)
        routers[3].join_group(1)
        network.run(60.0)  # probe warmup
        routers[0].start_source(1)
        network.run(62.0)
        # Send CBR data for ~30 s.
        from repro.sim.process import PeriodicTask

        task = PeriodicTask(
            network.sim, 0.05, lambda: routers[0].send_data(1)
        )
        task.start()
        network.run(95.0)
        task.stop()
        member_node = network.nodes[3]
        via_c = member_node.counters.get("odmrp.data_rx_from.2")
        via_e = member_node.counters.get("odmrp.data_rx_from.4")
        delivered = len([d for d in deliveries if d[0] == 3])
        return via_c, via_e, delivered

    def test_spp_routes_around_the_lossy_link(self):
        via_c, via_e, _ = self.run_figure3(SppMetric())
        assert via_c > via_e

    def test_spp_beats_etx_on_figure3(self):
        _, _, spp_delivered = self.run_figure3(SppMetric())
        _, _, etx_delivered = self.run_figure3(EtxMetric())
        # SPP prefers the 0.512 path, ETX the 0.36 one (Figure 3).
        assert spp_delivered > etx_delivered

    def test_member_waits_delta_before_reply(self):
        """With a metric, the JOIN REPLY leaves delta after the query."""
        network = make_loss_network(2, {link(0, 1): 0.0})
        config = OdmrpConfig(delta_s=0.5, alpha_s=0.3)
        routers = build_routers(network, metric=SppMetric(), config=config)
        routers[1].join_group(1)
        network.run(10.0)  # probing warmup
        start = network.sim.now
        routers[0].start_source(1)
        # Find when the member's reply goes out.
        network.run(start + 0.4)
        assert network.nodes[1].counters.get("odmrp.reply_sent") == 0
        network.run(start + 1.2)
        assert network.nodes[1].counters.get("odmrp.reply_sent") >= 1

    def test_improved_duplicate_forwarded_within_alpha(self):
        """A relay re-forwards a query when a better-cost duplicate
        arrives inside the alpha window."""
        network = make_loss_network(
            3, {link(0, 1): 0.0, link(1, 2): 0.0}
        )
        config = OdmrpConfig(delta_s=0.5, alpha_s=0.3)
        routers = build_routers(network, metric=SppMetric(), config=config)
        network.run(10.0)
        relay = routers[1]
        payload_poor = JoinQueryPayload(
            group_id=1, source_id=0, sequence=1, prev_hop=0,
            hop_count=0, path_cost=0.2,
        )
        payload_good = JoinQueryPayload(
            group_id=1, source_id=0, sequence=1, prev_hop=0,
            hop_count=0, path_cost=0.9,
        )
        from repro.net.packet import Packet, PacketKind

        relay._on_join_query(
            Packet(PacketKind.JOIN_QUERY, 0, 36, 0.0, payload_poor), 0, 1.0
        )
        relay._on_join_query(
            Packet(PacketKind.JOIN_QUERY, 0, 36, 0.0, payload_good), 0, 1.0
        )
        network.run(network.sim.now + 1.0)
        assert network.nodes[1].counters.get("odmrp.query_improved") == 1
        assert network.nodes[1].counters.get("odmrp.query_forwarded") >= 1

    def test_original_vs_spp_on_lossy_shortcut(self):
        """A 1-hop 60%-lossy shortcut vs a clean 2-hop path: original
        ODMRP leans on the shortcut, SPP avoids it."""
        losses = {
            link(0, 2): 0.6,  # the tempting lossy shortcut
            link(0, 1): 0.02,
            link(1, 2): 0.02,
        }
        results = {}
        for name, metric in (("odmrp", None), ("spp", SppMetric())):
            network = make_loss_network(3, losses, seed=13)
            deliveries = []
            # A tight forwarding-group timeout keeps only the current
            # round's path alive, so the route *choice* (not ODMRP's mesh
            # redundancy) determines throughput.
            config = OdmrpConfig(refresh_interval_s=3.0, fg_timeout_s=3.0)
            routers = build_routers(
                network, metric=metric, config=config,
                deliveries=deliveries,
            )
            routers[2].join_group(1)
            network.run(40.0)
            routers[0].start_source(1)
            from repro.sim.process import PeriodicTask

            task = PeriodicTask(
                network.sim, 0.05, lambda: routers[0].send_data(1)
            )
            task.start()
            network.run(100.0)
            task.stop()
            results[name] = len(deliveries)
        assert results["spp"] > results["odmrp"] * 1.2


class TestIntrospection:
    def test_current_upstream_tracks_newest_round(self):
        network = make_loss_network(3, {link(0, 1): 0.0, link(1, 2): 0.0})
        routers = build_routers(network)
        routers[2].join_group(1)
        routers[0].start_source(1)
        network.run(5.0)
        assert routers[2].current_upstream(0) == 1
        assert routers[1].current_upstream(0) == 0
        assert routers[2].current_upstream(99) is None
