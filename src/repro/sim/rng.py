"""Named deterministic random-number streams.

Each subsystem draws from its own stream (``"fading"``, ``"mac.backoff"``,
``"traffic"``, ...), derived deterministically from a master seed and the
stream name.  This keeps subsystems statistically independent and -- more
importantly for a reproduction study -- keeps one subsystem's draw count
from perturbing another's, so e.g. changing the probing rate does not
reshuffle the fading realization of the data channel.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit stream seed from a master seed and a stream name.

    Uses SHA-256 rather than ``hash()`` so the derivation is stable across
    Python processes (``hash`` on strings is salted per-process).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A registry of lazily-created, independently-seeded RNG streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose master seed is derived from ``name``.

        Used to give each topology replication its own seed universe.
        """
        return RngRegistry(derive_seed(self.master_seed, f"fork:{name}"))

    def stream_names(self) -> list[str]:
        """Names of the streams created so far (for diagnostics)."""
        return sorted(self._streams)

    def stream_objects(self) -> Dict[str, random.Random]:
        """Name -> stream mapping (a copy; for isolation audits).

        The invariant monitors use object identity over this mapping to
        prove no RNG stream is shared across concurrently live runs.
        """
        return dict(self._streams)
