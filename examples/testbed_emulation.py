"""The Section 5 testbed experiment, end to end.

1.  Classifies every link of the emulated 8-node Purdue floor by ping
    loss (the authors' Figure 4 methodology) and checks the result
    against the known solid/dashed classification.
2.  Runs original ODMRP and ODMRP_PP over the testbed and prints the
    throughput gain (paper: PP +17.5%).
3.  Extracts the heavily used links of both trees (Figure 5) and shows
    how much data each protocol pushed over the lossy links.

Run:  python examples/testbed_emulation.py
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.experiments.figures import lossy_link_data_share
from repro.experiments.runner import collect_result
from repro.testbed.emulator import TestbedScenarioConfig, build_testbed_scenario
from repro.testbed.floormap import lossy_link_keys, testbed_links
from repro.testbed.ping import classify_links_by_ping, symmetric_classification


def classify() -> None:
    print("=== Figure 4: ping-based link classification ===")
    scenario = build_testbed_scenario("odmrp", TestbedScenarioConfig(run_seed=2))
    directed = classify_links_by_ping(scenario.network, pings_per_node=150)
    merged = symmetric_classification(directed)
    truth = {link.key: link.lossy for link in testbed_links()}
    rows = []
    for key, verdict in sorted(
        merged.items(), key=lambda item: sorted(item[0])
    ):
        a, b = sorted(scenario.index_to_label[i] for i in key)
        label_key = frozenset((a, b))
        rows.append(
            (
                f"{a}-{b}",
                f"{verdict.loss_rate:.0%}",
                "lossy" if verdict.lossy else "low-loss",
                "lossy" if truth[label_key] else "low-loss",
            )
        )
    print(render_table(
        ("link", "measured loss", "classified", "figure 4"), rows
    ))


def compare() -> None:
    print("\n=== Figure 2 testbed column + Figure 5 trees ===")
    config = TestbedScenarioConfig(duration_s=400.0, warmup_s=30.0)
    results = {}
    trees = {}
    for protocol in ("odmrp", "pp"):
        print(f"running {protocol} over the testbed (400 s) ...")
        scenario = build_testbed_scenario(protocol, config)
        scenario.run()
        results[protocol] = collect_result(scenario)
        trees[protocol] = scenario.heavily_used_links(min_share=0.10)

    gain = (
        results["pp"].delivered_packets / results["odmrp"].delivered_packets
        - 1.0
    )
    print(f"\nODMRP_PP throughput gain over ODMRP: {gain:+.1%} "
          "(paper: +17.5%)")

    lossy = set(lossy_link_keys())
    for protocol, tree in trees.items():
        rows = [
            (
                f"{src}->{dst}",
                f"{share:.2f}",
                "lossy" if frozenset((src, dst)) in lossy else "low-loss",
            )
            for src, dst, share in tree[:8]
        ]
        print()
        print(render_table(
            ("link", "relative data share", "figure 4 class"),
            rows,
            title=f"heavily used links under {protocol} (Figure 5)",
        ))
        print(
            f"share of tree data on lossy links: "
            f"{lossy_link_data_share(tree):.1%}"
        )


def main() -> None:
    classify()
    compare()


if __name__ == "__main__":
    main()
