"""Network assembly: one call from positions to a ready-to-run mesh.

``Network`` wires together the simulator, radio parameters (calibrated so
the no-fading range matches the paper's 250 m), the shared channel, and
one node per position.  Protocol stacks are attached afterwards by the
scenario builders in :mod:`repro.experiments.scenarios`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.mac.csma import CsmaMac, MacConfig
from repro.net.channel import PHY_BACKENDS, WirelessChannel
from repro.net.node import Node
from repro.net.topology import Position
from repro.phy.fading import FadingModel, RayleighFading
from repro.phy.propagation import PropagationModel, TwoRayGroundPropagation
from repro.phy.radio import RadioParams, calibrate_rx_threshold_dbm
from repro.sim.engine import Simulator


@dataclass
class NetworkConfig:
    """Knobs for network assembly.

    Defaults reproduce the paper's simulation setup: two-ray propagation,
    Rayleigh fading, 250 m nominal range, 2 Mbps.
    """

    nominal_range_m: float = 250.0
    data_rate_bps: float = 2_000_000.0
    tx_power_dbm: float = 15.0
    carrier_sense_margin_db: float = 10.0
    rayleigh_fading: bool = True
    #: Channel memory per link.  Zero means i.i.d. per-packet fading;
    #: positive values use the Gauss-Markov correlated Rayleigh model.
    #: GloMoSim replays time-correlated fading traces, and for static
    #: nodes the channel changes over seconds; with memoryless fading the
    #: min-hop baseline collapses and the metrics' relative gains come
    #: out ~2x the paper's.  10 s reproduces the paper's gain magnitudes.
    fading_coherence_time_s: float = 10.0
    #: Reception backend: "auto" batches fading/decode math with numpy
    #: on large meshes (bit-identical to the per-receiver loop),
    #: "scalar"/"vectorized" force a path (see repro.net.channel).
    phy_backend: str = "auto"
    propagation: Optional[PropagationModel] = None
    fading: Optional[FadingModel] = None
    mac: MacConfig = field(default_factory=MacConfig)

    def __post_init__(self) -> None:
        # Fail at construction (spec load, config assembly) rather than
        # deep inside begin_transmission's backend resolution.
        if self.phy_backend not in PHY_BACKENDS:
            import difflib

            message = (
                f"unknown phy_backend {self.phy_backend!r}; expected one "
                f"of {PHY_BACKENDS}"
            )
            close = difflib.get_close_matches(
                str(self.phy_backend), PHY_BACKENDS, n=1
            )
            if close:
                message += f" (did you mean {close[0]!r}?)"
            raise ValueError(message)

    def build_propagation(self) -> PropagationModel:
        return self.propagation or TwoRayGroundPropagation()

    def build_fading(self) -> FadingModel:
        if self.fading is not None:
            return self.fading
        if self.rayleigh_fading:
            if self.fading_coherence_time_s > 0:
                from repro.phy.fading import CorrelatedRayleighFading

                return CorrelatedRayleighFading(self.fading_coherence_time_s)
            return RayleighFading()
        from repro.phy.fading import NoFading

        return NoFading()


class Network:
    """A simulator, a channel, and a set of nodes, wired together."""

    def __init__(
        self,
        positions: Sequence[Position],
        seed: int = 0,
        config: Optional[NetworkConfig] = None,
        channel_factory: Optional[Callable[[Simulator], WirelessChannel]] = None,
        radio_params: Optional[RadioParams] = None,
    ) -> None:
        """Assemble the network.

        ``channel_factory`` and ``radio_params`` exist for substrates that
        replace the pathloss/fading stack -- the testbed emulation injects
        an empirical-loss channel and virtual radio levels through them.
        """
        self.config = config or NetworkConfig()
        self.sim = Simulator(seed=seed)

        if radio_params is not None:
            params = radio_params
        else:
            propagation = self.config.build_propagation()
            params = RadioParams(
                tx_power_dbm=self.config.tx_power_dbm,
                data_rate_bps=self.config.data_rate_bps,
            )
            params.set_rx_threshold_dbm(
                calibrate_rx_threshold_dbm(
                    propagation, params, self.config.nominal_range_m
                ),
                cs_margin_db=self.config.carrier_sense_margin_db,
            )
        self.radio_params = params

        if channel_factory is not None:
            self.channel = channel_factory(self.sim)
        else:
            self.channel = WirelessChannel(
                self.sim, self.config.build_propagation(),
                self.config.build_fading(),
                phy_backend=self.config.phy_backend,
            )
        self.nodes: List[Node] = []
        for index, position in enumerate(positions):
            mac = CsmaMac(self.sim, self.config.mac)
            node = Node(index, position, self.sim, params, mac)
            self.channel.register_node(node)
            self.nodes.append(node)
        self.channel.finalize()

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def run(self, until: float) -> None:
        """Run the simulation clock up to ``until`` seconds."""
        self.sim.run(until=until)

    def total_counter(self, name: str) -> float:
        """Sum a counter across every node."""
        return sum(node.counters.get(name) for node in self.nodes)

    def total_counter_prefix(self, prefix: str) -> float:
        """Sum all counters matching a prefix across every node."""
        return sum(node.counters.total(prefix) for node in self.nodes)
