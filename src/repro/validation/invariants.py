"""Invariant-monitor plumbing: config, violations, suite, registry.

A monitor is a small object that watches one conservation property of a
running scenario.  The :class:`InvariantSuite` owns a scenario's
monitors and is driven from *outside* the event heap by the chunked
``run(until=)`` loop in :meth:`SimulationScenario.run` -- exactly the
telemetry pattern, so enabling monitors never reorders events and
disabling them (the default) costs nothing.

A failed check raises :class:`InvariantViolation` immediately.  The
exception is structured: it carries the simulated time, the node under
suspicion, and the (protocol, config, seed) triple that deterministically
reproduces the run, so a violation found by the fuzzer is a one-command
replay rather than a flaky report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.telemetry.manifest import config_digest

#: name -> monitor class; populated by :func:`register_monitor` (the
#: built-in monitors in :mod:`repro.validation.monitors` self-register).
MONITOR_TYPES: Dict[str, Type["InvariantMonitor"]] = {}


def register_monitor(
    monitor_type: Type["InvariantMonitor"],
) -> Type["InvariantMonitor"]:
    """Register a monitor class under its ``name`` attribute (decorator).

    Mirrors :func:`repro.core.metrics.register_metric`: idempotent for
    the same class, loud for a name collision.
    """
    name = monitor_type.name
    if not name:
        raise ValueError(
            f"{monitor_type.__name__} must set a non-empty `name` attribute"
        )
    existing = MONITOR_TYPES.get(name)
    if existing is not None and existing is not monitor_type:
        raise ValueError(
            f"monitor name {name!r} is already taken by {existing.__name__}"
        )
    MONITOR_TYPES[name] = monitor_type
    return monitor_type


def monitor_names() -> Tuple[str, ...]:
    """All registered monitor names (built-ins included), sorted."""
    _load_builtin_monitors()
    return tuple(sorted(MONITOR_TYPES))


def _load_builtin_monitors() -> None:
    # Imported lazily so this module stays importable from the scenario
    # config layer without dragging in the protocol stack.
    from repro.validation import monitors  # noqa: F401


@dataclass
class ValidationConfig:
    """Invariant-monitor knobs carried by the scenario config.

    Disabled by default: no suite is built and the run executes the
    exact pre-validation instruction stream.  ``monitors`` selects a
    subset by name; empty means every registered monitor.
    """

    enabled: bool = False
    check_interval_s: float = 1.0
    monitors: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.monitors = tuple(self.monitors)
        if self.check_interval_s <= 0.0:
            raise ValueError(
                f"check interval must be positive, got {self.check_interval_s}"
            )


class InvariantViolation(AssertionError):
    """A runtime invariant failed; carries everything needed to replay.

    Attributes
    ----------
    invariant: the registered name of the failed monitor.
    message:   what specifically went wrong.
    time:      simulated seconds at the moment of detection.
    node_id:   the node the evidence points at, when one exists.
    protocol / config / seed: the replay triple -- rebuilding the
        scenario from these reproduces the violation deterministically.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        time: Optional[float] = None,
        node_id: Optional[int] = None,
        protocol: Optional[str] = None,
        seed: Optional[int] = None,
        config: Optional[Any] = None,
    ) -> None:
        self.invariant = invariant
        self.message = message
        self.time = time
        self.node_id = node_id
        self.protocol = protocol
        self.seed = seed
        self.config = config
        super().__init__(self.report())

    @property
    def replay(self) -> Tuple[Optional[str], Optional[Any], Optional[int]]:
        """The (protocol, config, seed) triple that reproduces the run."""
        return (self.protocol, self.config, self.seed)

    def report(self) -> str:
        """Human-readable violation report with the replay coordinates."""
        where = "t=?" if self.time is None else f"t={self.time:.6f}s"
        if self.node_id is not None:
            where += f" node={self.node_id}"
        lines = [f"[{self.invariant}] {where}: {self.message}"]
        if self.protocol is not None:
            digest = (
                config_digest(self.config)[:12]
                if self.config is not None
                else "?"
            )
            lines.append(
                f"  replay: protocol={self.protocol!r} "
                f"topology_seed={self.seed} config_digest={digest}"
            )
            lines.append(
                "  (write_replay_spec() in repro.validation.fuzzing turns "
                "this into a `repro validate --spec` file)"
            )
        return "\n".join(lines)


class InvariantMonitor:
    """Base class: one conservation property, checked per run slice."""

    #: Registry name ("channel-conservation", ...); set by subclasses.
    name: str = ""

    def install(self, scenario: Any, suite: "InvariantSuite") -> None:
        """Attach to a built (not yet run) scenario.

        Subclasses that need to observe packets hook node handlers here
        via :meth:`repro.net.node.Node.wrap_handler`.
        """
        self.scenario = scenario
        self.suite = suite

    def check(self, now: float) -> None:
        """Assert the invariant against current state; called per slice."""

    def final_check(self, now: float) -> None:
        """End-of-run assertion; defaults to one more regular check."""
        self.check(now)

    def fail(self, message: str, node_id: Optional[int] = None) -> None:
        """Raise a context-enriched :class:`InvariantViolation`."""
        self.suite.fail(self.name, message, node_id=node_id)


@dataclass
class InvariantSuite:
    """The monitors attached to one scenario, plus run bookkeeping."""

    config: ValidationConfig
    scenario: Any
    monitors: List[InvariantMonitor] = field(default_factory=list)
    checks_run: int = 0

    def check(self) -> None:
        """One per-slice sweep over every monitor."""
        now = self.scenario.network.sim.now
        for monitor in self.monitors:
            monitor.check(now)
        self.checks_run += 1

    def final_check(self) -> None:
        """The closing sweep after the run's last event slice."""
        now = self.scenario.network.sim.now
        for monitor in self.monitors:
            monitor.final_check(now)
        self.checks_run += 1

    def fail(
        self, invariant: str, message: str, node_id: Optional[int] = None
    ) -> None:
        scenario = self.scenario
        raise InvariantViolation(
            invariant,
            message,
            time=scenario.network.sim.now,
            node_id=node_id,
            protocol=scenario.protocol_name,
            seed=scenario.config.topology_seed,
            config=scenario.config,
        )


def build_suite(config: ValidationConfig, scenario: Any) -> InvariantSuite:
    """Instantiate and install the configured monitors on a scenario."""
    _load_builtin_monitors()
    names = config.monitors or tuple(sorted(MONITOR_TYPES))
    monitors: List[InvariantMonitor] = []
    for name in names:
        monitor_type = MONITOR_TYPES.get(name)
        if monitor_type is None:
            raise ValueError(
                f"unknown invariant monitor {name!r}; known: "
                + ", ".join(sorted(MONITOR_TYPES))
            )
        monitors.append(monitor_type())
    suite = InvariantSuite(config=config, scenario=scenario, monitors=monitors)
    for monitor in monitors:
        monitor.install(scenario, suite)
    return suite
