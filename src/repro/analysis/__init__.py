"""Statistics helpers and ASCII table rendering for experiment output."""

from repro.analysis.charts import (
    render_bar_chart,
    render_grouped_chart,
    render_sparkline,
)
from repro.analysis.stats import (
    WelchResult,
    ci_half_width,
    confidence_interval,
    confidence_interval_95,
    mean,
    paired_difference_ci,
    stddev,
    t_critical,
    unpaired_difference_ci,
    welch_t_test,
)
from repro.analysis.tables import render_comparison, render_table

__all__ = [
    "mean",
    "stddev",
    "confidence_interval",
    "confidence_interval_95",
    "ci_half_width",
    "t_critical",
    "WelchResult",
    "welch_t_test",
    "unpaired_difference_ci",
    "paired_difference_ci",
    "render_table",
    "render_comparison",
    "render_bar_chart",
    "render_grouped_chart",
    "render_sparkline",
]
