"""Benchmark E5: Figure 2 column "Delay".

Normalized mean end-to-end delay of delivered packets, from the same
sweep as the throughput column.  The reproducible shape: the metric
variants pay a delay premium over min-hop ODMRP (they choose longer
paths of shorter links), and the low-probing-overhead metrics stay on
the cheaper end of the premium.
"""

from __future__ import annotations

from repro.analysis.tables import render_comparison
from repro.experiments.figures import PAPER_DELAY, figure2_delay


def bench_fig2_delay(benchmark, shared_simulation_sweep):
    result = benchmark.pedantic(
        lambda: figure2_delay(runs=shared_simulation_sweep),
        iterations=1,
        rounds=1,
    )
    print()
    print(render_comparison(
        result.measured, PAPER_DELAY,
        title="Figure 2 / Delay (normalized; paper values approximate)",
    ))
    benchmark.extra_info["normalized_delay"] = result.measured
    for metric in ("ett", "etx", "metx", "pp", "spp"):
        assert result.measured[metric] > 0.9, (
            "delay must be measured for every variant"
        )
    # Metric variants trade delay for throughput: none should be
    # dramatically faster than the baseline's short paths.
    assert all(
        value > 0.85 for name, value in result.measured.items()
    ), result.measured
