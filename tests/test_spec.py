"""Tests for declarative experiment specs and the golden-seed regression.

Covers the serialization contract (spec -> dict -> TOML/JSON -> spec is
lossless and strict), the end-to-end registry-resolved MAODV sweep
through runner + cache + report + telemetry, and the bit-identity pin:
the six paper protocols must reproduce the pre-registry golden results
exactly, per seed.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiments.report import render_report
from repro.experiments.runner import compare_protocols, run_experiment
from repro.experiments.scenarios import SimulationScenarioConfig
from repro.experiments.spec import (
    ExperimentSpec,
    SpecError,
    load_experiment_spec,
    toml_dumps,
)
from repro.telemetry.hub import TelemetryConfig

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_tiny_sweep.json"


def sample_spec() -> ExperimentSpec:
    """A spec exercising non-default values at every nesting level."""
    config = SimulationScenarioConfig(
        num_nodes=12,
        area_width_m=600.0,
        area_height_m=480.0,
        num_groups=1,
        members_per_group=4,
        duration_s=30.0,
        warmup_s=10.0,
        topology_seed=7,
    )
    config = replace(
        config,
        network=replace(config.network, rayleigh_fading=False),
        odmrp=replace(config.odmrp, refresh_interval_s=4.5),
        telemetry=TelemetryConfig(enabled=True, sample_interval_s=2.0),
    )
    return ExperimentSpec(
        name="sample",
        description="round-trip fixture",
        protocols=("odmrp", "spp", "maodv-etx"),
        seeds=(3, 5, 8),
        jobs=2,
        use_cache=True,
        config=config,
    )


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = sample_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = sample_spec()
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_toml_round_trip(self):
        spec = sample_spec()
        assert ExperimentSpec.from_toml(spec.to_toml()) == spec

    def test_default_spec_round_trips(self):
        spec = ExperimentSpec()
        assert ExperimentSpec.from_toml(spec.to_toml()) == spec
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_floats_round_trip_exactly(self):
        spec = sample_spec()
        spec.config = replace(spec.config, duration_s=0.1 + 0.2)  # 0.30000...4
        back = ExperimentSpec.from_toml(spec.to_toml())
        assert back.config.duration_s == spec.config.duration_s

    def test_file_round_trip_toml_and_json(self, tmp_path):
        spec = sample_spec()
        for filename in ("spec.toml", "spec.json"):
            path = str(tmp_path / filename)
            spec.save(path)
            assert ExperimentSpec.load(path) == spec
            assert load_experiment_spec(path) == spec

    def test_none_fields_omitted_from_serialized_form(self):
        data = sample_spec().to_dict()
        # NetworkConfig.propagation/fading are None -> must not appear.
        assert "propagation" not in data["config"]["network"]
        assert "fading" not in data["config"]["network"]


class TestStrictness:
    def test_unknown_top_level_key_rejected(self):
        data = sample_spec().to_dict()
        data["protocol"] = ["spp"]  # typo'd "protocols"
        with pytest.raises(SpecError) as excinfo:
            ExperimentSpec.from_dict(data)
        assert "protocol" in str(excinfo.value)

    def test_unknown_config_key_rejected(self):
        data = sample_spec().to_dict()
        data["config"]["num_node"] = 10  # typo'd "num_nodes"
        with pytest.raises(SpecError) as excinfo:
            ExperimentSpec.from_dict(data)
        assert "num_node" in str(excinfo.value)

    def test_unknown_nested_key_rejected(self):
        data = sample_spec().to_dict()
        data["config"]["network"]["datarate"] = 1.0
        with pytest.raises(SpecError):
            ExperimentSpec.from_dict(data)

    def test_unsupported_schema_rejected(self):
        data = sample_spec().to_dict()
        data["schema"] = 99
        with pytest.raises(SpecError):
            ExperimentSpec.from_dict(data)

    def test_model_instances_are_not_serializable(self):
        from repro.phy.propagation import TwoRayGroundPropagation

        spec = sample_spec()
        spec.config = replace(
            spec.config,
            network=replace(
                spec.config.network, propagation=TwoRayGroundPropagation()
            ),
        )
        with pytest.raises(SpecError):
            spec.to_dict()

    def test_invalid_toml_raises_spec_error(self):
        with pytest.raises(SpecError):
            ExperimentSpec.from_toml("name = [unclosed")

    def test_invalid_json_raises_spec_error(self):
        with pytest.raises(SpecError):
            ExperimentSpec.from_json("{not json")

    def test_validate_rejects_empty_protocols(self):
        with pytest.raises(SpecError):
            ExperimentSpec(protocols=()).validate()

    def test_validate_rejects_empty_seeds(self):
        with pytest.raises(SpecError):
            ExperimentSpec(seeds=()).validate()

    def test_validate_rejects_non_integer_seeds(self):
        with pytest.raises(SpecError):
            ExperimentSpec(seeds=(1, True)).validate()

    def test_validate_resolves_protocols_through_registry(self):
        with pytest.raises(ValueError) as excinfo:
            ExperimentSpec(protocols=("odmrp", "sppp")).validate()
        assert "did you mean" in str(excinfo.value)


class TestSpecSurface:
    def test_total_runs_and_describe(self):
        spec = sample_spec()
        assert spec.total_runs == 9
        text = spec.describe()
        assert "3 protocols x 3 topologies = 9" in text
        assert "maodv-etx" in text
        assert "MaodvRouter" in text

    def test_with_overrides_keeps_unset_fields(self):
        spec = sample_spec()
        derived = spec.with_overrides(protocols=("spp",), jobs=4)
        assert derived.protocols == ("spp",)
        assert derived.jobs == 4
        assert derived.seeds == spec.seeds
        assert derived.use_cache == spec.use_cache
        assert spec.protocols == ("odmrp", "spp", "maodv-etx")

    def test_toml_dumps_quotes_exotic_keys(self):
        text = toml_dumps({"plain": 1, "needs quoting": "x"})
        assert 'plain = 1' in text
        assert '"needs quoting" = "x"' in text

    def test_toml_dumps_rejects_non_finite_floats(self):
        with pytest.raises(SpecError):
            toml_dumps({"bad": float("nan")})


class TestMaodvSweepEndToEnd:
    """Acceptance: a registry-resolved MAODV metric sweep runs through
    runner, parallel cache, report, and telemetry export."""

    def test_sweep_with_cache_report_and_telemetry(self, tmp_path):
        telemetry_dir = tmp_path / "telemetry"
        cache_dir = tmp_path / "cache"
        config = SimulationScenarioConfig(
            num_nodes=8,
            area_width_m=450.0,
            area_height_m=450.0,
            num_groups=1,
            members_per_group=3,
            duration_s=10.0,
            warmup_s=4.0,
            topology_seed=1,
            telemetry=TelemetryConfig(
                enabled=True, export_dir=str(telemetry_dir)
            ),
        )
        spec = ExperimentSpec(
            name="maodv metric sweep",
            protocols=("maodv", "maodv-etx", "maodv-spp"),
            seeds=(1,),
            use_cache=True,
            config=config,
        )
        runs = run_experiment(spec, cache_dir=str(cache_dir))
        assert [run.protocol for run in runs] == list(spec.protocols)
        assert all(run.error is None for run in runs)
        assert all(run.offered_packets > 0 for run in runs)

        # Telemetry artifacts exist and carry registry provenance.
        for run in runs:
            assert run.telemetry_path is not None
            assert os.path.exists(run.telemetry_path)
            with open(run.telemetry_path, encoding="utf-8") as handle:
                manifest = json.loads(handle.readline())
            assert manifest["protocol"] == run.protocol
            assert manifest["family"] == "maodv"
            assert manifest["extra"]["protocol_spec"]["router"].endswith(
                "MaodvRouter"
            )

        # Second execution replays from the cache, bit-identically.
        cached = run_experiment(spec, cache_dir=str(cache_dir))
        assert [
            (r.protocol, r.delivered_packets, r.mean_delay_s) for r in cached
        ] == [
            (r.protocol, r.delivered_packets, r.mean_delay_s) for r in runs
        ]

        # And the report renders with registry ordering.
        report = render_report(runs, title=spec.name)
        assert "maodv metric sweep" in report
        assert "maodv-etx" in report


class TestGoldenRegression:
    """The six paper protocols are bit-identical to pre-registry results."""

    def test_paper_protocols_match_golden(self):
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        config = SimulationScenarioConfig(**golden["config"])
        protocols = sorted(
            {run["protocol"] for run in golden["runs"]},
            key=[r["protocol"] for r in golden["runs"]].index,
        )
        runs = compare_protocols(
            config,
            protocols=protocols,
            topology_seeds=tuple(golden["seeds"]),
        )
        measured = {
            (run.protocol, run.topology_seed): run for run in runs
        }
        assert len(measured) == len(golden["runs"])
        for expected in golden["runs"]:
            run = measured[(expected["protocol"], expected["seed"])]
            label = f"{expected['protocol']}/seed{expected['seed']}"
            assert run.error is None, label
            assert run.offered_packets == expected["offered"], label
            assert run.expected_deliveries == expected["expected"], label
            assert run.delivered_packets == expected["delivered_packets"], label
            assert run.delivered_bytes == expected["delivered_bytes"], label
            assert run.mean_delay_s == expected["mean_delay_s"], label
            assert run.probe_bytes == expected["probe_bytes"], label
