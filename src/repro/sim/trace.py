"""Counters and structured trace recording.

The experiment harness consumes :class:`CounterSet` totals (bytes sent per
packet class, packets delivered, collisions, ...) to compute the paper's
throughput, delay, and overhead columns.  :class:`TraceRecorder` keeps an
optional bounded in-memory log of tagged events for debugging and for the
Figure 5 tree-edge extraction.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, List, NamedTuple, Optional


class CounterSet:
    """A dictionary of named numeric counters with a few conveniences."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        self._counters[name] += amount

    def get(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def names(self) -> List[str]:
        return sorted(self._counters)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counters)

    def total(self, prefix: str) -> float:
        """Sum of all counters whose name starts with ``prefix``."""
        return sum(
            value for name, value in self._counters.items()
            if name.startswith(prefix)
        )

    def merge(self, other: "CounterSet") -> None:
        """Add all of ``other``'s counters into this set."""
        for name, value in other._counters.items():
            self._counters[name] += value


class TraceEntry(NamedTuple):
    time: float
    tag: str
    data: Dict[str, Any]


class TraceRecorder:
    """Bounded in-memory event log.

    Disabled recorders (``enabled=False``) cost one attribute check per
    record call, so models can trace unconditionally.
    """

    def __init__(self, enabled: bool = False, max_entries: int = 1_000_000) -> None:
        self.enabled = enabled
        self.max_entries = max_entries
        self.entries: List[TraceEntry] = []
        self.dropped = 0

    def record(self, time: float, tag: str, **data: Any) -> None:
        if not self.enabled:
            return
        if len(self.entries) >= self.max_entries:
            self.dropped += 1
            return
        self.entries.append(TraceEntry(time, tag, data))

    def with_tag(self, tag: str) -> List[TraceEntry]:
        return [entry for entry in self.entries if entry.tag == tag]

    def tags(self) -> List[str]:
        return sorted({entry.tag for entry in self.entries})

    def clear(self) -> None:
        self.entries.clear()
        self.dropped = 0

    def iter_between(self, start: float, end: float) -> Iterable[TraceEntry]:
        """Entries with ``start <= time < end`` (times are appended in order)."""
        return (e for e in self.entries if start <= e.time < end)


class WelfordAccumulator:
    """Streaming mean/variance (Welford's algorithm).

    Used for per-packet delay statistics without storing every sample.
    """

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0 for fewer than 2 samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return self.variance ** 0.5
