"""Tests for probe agents, estimators, and the NEIGHBOR_TABLE."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import EtxMetric, PpMetric, SppMetric
from repro.probing.broadcast_probe import BroadcastProbeAgent, LossRatioEstimator
from repro.probing.manager import (
    ProbingConfig,
    ProbingManager,
    prober_kind_for_metric,
)
from repro.probing.neighbor_table import NeighborTable
from repro.probing.packet_pair import PacketPairAgent, PacketPairEstimator
from tests.conftest import link, make_chain_network, make_loss_network


class TestLossRatioEstimator:
    def test_unheard_link_has_zero_ratio(self):
        estimator = LossRatioEstimator()
        assert estimator.delivery_ratio(100.0) == 0.0

    def test_perfect_reception_saturates_at_one(self):
        estimator = LossRatioEstimator(window_intervals=10)
        for i in range(20):
            estimator.note_received(float(i * 5), 5.0)
        assert estimator.delivery_ratio(95.0) == pytest.approx(1.0)

    def test_half_loss_measures_half(self):
        estimator = LossRatioEstimator(window_intervals=10)
        # Every other probe of a 5 s cadence arrives.
        for i in range(0, 20, 2):
            estimator.note_received(float(i * 5), 5.0)
        assert estimator.delivery_ratio(95.0) == pytest.approx(0.5, abs=0.1)

    def test_window_forgets_old_probes(self):
        estimator = LossRatioEstimator(window_intervals=10)
        for i in range(10):
            estimator.note_received(float(i * 5), 5.0)
        # Probes stop; 100 s later the window has emptied.
        assert estimator.delivery_ratio(150.0) == 0.0

    def test_warmup_ramp_is_fair(self):
        """One probe heard immediately after discovery scores ~1, not 1/w."""
        estimator = LossRatioEstimator(window_intervals=10)
        estimator.note_received(1000.0, 5.0)
        assert estimator.delivery_ratio(1000.0) == pytest.approx(1.0)
        # Shortly after, the expectation ramps but stays fair (not 1/w).
        assert estimator.delivery_ratio(1002.0) > 0.5

    def test_ratio_degrades_as_silence_grows(self):
        estimator = LossRatioEstimator(window_intervals=10)
        estimator.note_received(0.0, 5.0)
        early = estimator.delivery_ratio(5.0)
        later = estimator.delivery_ratio(30.0)
        assert later < early

    def test_validation(self):
        with pytest.raises(ValueError):
            LossRatioEstimator(window_intervals=0)
        estimator = LossRatioEstimator()
        with pytest.raises(ValueError):
            estimator.note_received(0.0, 0.0)


class TestPacketPairEstimator:
    def make(self) -> PacketPairEstimator:
        return PacketPairEstimator(
            ewma_history_weight=0.9, loss_penalty_factor=1.2
        )

    def complete_pair(self, estimator, seq, at, gap=0.001, size=200):
        estimator.note_small(seq, at, 10.0)
        estimator.note_large(seq, at + gap, 10.0, size)

    def test_first_pair_initializes_ewma(self):
        estimator = self.make()
        self.complete_pair(estimator, 1, 0.0, gap=0.002)
        assert estimator.ewma_delay_s == pytest.approx(0.002)
        assert estimator.pairs_completed == 1

    def test_ewma_weights_history_90_10(self):
        estimator = self.make()
        self.complete_pair(estimator, 1, 0.0, gap=0.002)
        self.complete_pair(estimator, 2, 10.0, gap=0.004)
        assert estimator.ewma_delay_s == pytest.approx(
            0.9 * 0.002 + 0.1 * 0.004
        )

    def test_lost_large_applies_20pct_penalty(self):
        estimator = self.make()
        self.complete_pair(estimator, 1, 0.0, gap=0.002)
        # Pair 2: small arrives, large never does; detected at pair 3.
        estimator.note_small(2, 10.0, 10.0)
        estimator.note_small(3, 20.0, 10.0)
        assert estimator.penalties_applied == 1
        assert estimator.ewma_delay_s == pytest.approx(0.002 * 1.2)

    def test_lost_small_applies_penalty(self):
        estimator = self.make()
        self.complete_pair(estimator, 1, 0.0, gap=0.002)
        estimator.note_large(2, 10.0, 10.0, 200)  # small of pair 2 lost
        assert estimator.penalties_applied == 1

    def test_wholly_missed_pairs_penalized_on_gap(self):
        estimator = self.make()
        self.complete_pair(estimator, 1, 0.0, gap=0.002)
        # Pairs 2, 3, 4 vanish entirely; pair 5 arrives.
        self.complete_pair(estimator, 5, 40.0, gap=0.002)
        assert estimator.penalties_applied == 3

    def test_silent_link_cost_explodes_at_read_time(self):
        estimator = self.make()
        self.complete_pair(estimator, 1, 0.0, gap=0.002)
        soon = estimator.effective_delay_s(5.0)
        late = estimator.effective_delay_s(105.0)
        assert soon == pytest.approx(0.002)
        # ~10 silent intervals -> 1.2^10 = 6.2x blow-up.
        assert late > 0.002 * 5.0

    def test_compounding_penalties_grow_exponentially(self):
        """The paper's PP property: at high loss the cost grows as an
        exponential function of time."""
        estimator = self.make()
        self.complete_pair(estimator, 1, 0.0, gap=0.002)
        for seq in range(2, 22):  # 20 consecutive losses
            estimator.note_small(seq, seq * 10.0, 10.0)
        assert estimator.ewma_delay_s == pytest.approx(0.002 * 1.2 ** 19, rel=1e-6)

    def test_bandwidth_estimate_from_pair(self):
        estimator = self.make()
        self.complete_pair(estimator, 1, 0.0, gap=0.001, size=250)
        assert estimator.bandwidth_bps() == pytest.approx(250 * 8 / 0.001)

    def test_small_probes_feed_delivery_ratio(self):
        estimator = self.make()
        for seq in range(1, 11):
            estimator.note_small(seq, seq * 10.0, 10.0)
        assert estimator.delivery_ratio(100.0) > 0.9

    def test_no_history_returns_none(self):
        estimator = self.make()
        assert estimator.effective_delay_s(100.0) is None
        assert estimator.bandwidth_bps() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketPairEstimator(ewma_history_weight=1.0)
        with pytest.raises(ValueError):
            PacketPairEstimator(loss_penalty_factor=0.9)

    @given(st.lists(st.floats(min_value=1e-4, max_value=0.1), min_size=1,
                    max_size=30))
    def test_ewma_stays_within_sample_range(self, gaps):
        estimator = self.make()
        for i, gap in enumerate(gaps, start=1):
            self.complete_pair(estimator, i, i * 10.0, gap=gap)
        assert min(gaps) - 1e-12 <= estimator.ewma_delay_s <= max(gaps) + 1e-12


class TestProbeAgentsOverChannel:
    def test_broadcast_probes_measure_link_loss(self):
        """ETX probing over a 30% lossy link converges near df = 0.7."""
        network = make_loss_network(2, {link(0, 1): 0.3}, seed=5)
        table = NeighborTable(network.sim, network.nodes[1])
        agent = BroadcastProbeAgent(
            network.sim, network.nodes[0], interval_s=5.0
        )
        agent.start()
        network.run(400.0)
        quality = table.link_quality(0)
        assert quality.forward_delivery_ratio == pytest.approx(0.7, abs=0.15)

    def test_packet_pair_measures_delay_and_bandwidth(self):
        network = make_loss_network(2, {link(0, 1): 0.0}, seed=5)
        table = NeighborTable(network.sim, network.nodes[1])
        agent = PacketPairAgent(
            network.sim, network.nodes[0], interval_s=10.0,
            small_size_bytes=60, large_size_bytes=200,
        )
        agent.start()
        network.run(200.0)
        quality = table.link_quality(0)
        assert quality.packet_pair_delay_s is not None
        # The inter-arrival is one large-frame airtime: ~1.1 ms at 2 Mbps.
        assert 0.0005 < quality.packet_pair_delay_s < 0.01
        assert quality.bandwidth_bps is not None
        assert quality.bandwidth_bps < 2e6  # headers make it sub-nominal

    def test_lossy_link_pp_cost_exceeds_clean_link(self):
        costs = {}
        for name, loss in (("clean", 0.0), ("lossy", 0.5)):
            network = make_loss_network(2, {link(0, 1): loss}, seed=6)
            table = NeighborTable(network.sim, network.nodes[1])
            agent = PacketPairAgent(network.sim, network.nodes[0])
            agent.start()
            network.run(400.0)
            costs[name] = table.link_cost(0, PpMetric())
        assert costs["lossy"] > 2.0 * costs["clean"]

    def test_agent_stop_halts_probes(self):
        network = make_chain_network(2, 100.0)
        agent = BroadcastProbeAgent(network.sim, network.nodes[0])
        agent.start()
        network.run(20.0)
        sent_before = network.nodes[0].counters.get("tx.probe.packets")
        agent.stop()
        network.run(60.0)
        assert network.nodes[0].counters.get("tx.probe.packets") == sent_before
        assert sent_before >= 3


class TestNeighborTable:
    def test_unknown_neighbor_is_unusable(self):
        network = make_chain_network(2, 100.0)
        table = NeighborTable(network.sim, network.nodes[0])
        quality = table.link_quality(99)
        assert quality.forward_delivery_ratio == 0.0
        assert not EtxMetric().is_usable(EtxMetric().link_cost(quality))
        assert table.link_cost(99, SppMetric()) == 0.0

    def test_neighbors_listing(self):
        network = make_loss_network(3, {link(0, 1): 0.0, link(1, 2): 0.0})
        table = NeighborTable(network.sim, network.nodes[1])
        BroadcastProbeAgent(network.sim, network.nodes[0]).start()
        PacketPairAgent(network.sim, network.nodes[2]).start()
        network.run(60.0)
        assert table.neighbors() == [0, 2]


class TestProbingManager:
    def test_prober_kind_mapping(self):
        assert prober_kind_for_metric("etx") == "broadcast"
        assert prober_kind_for_metric("metx") == "broadcast"
        assert prober_kind_for_metric("spp") == "broadcast"
        assert prober_kind_for_metric("pp") == "pair"
        assert prober_kind_for_metric("ett") == "pair"
        assert prober_kind_for_metric("hopcount") is None
        with pytest.raises(ValueError):
            prober_kind_for_metric("bogus")

    def test_rate_multiplier_scales_intervals(self):
        config = ProbingConfig(rate_multiplier=5.0)
        assert config.effective_broadcast_interval_s == pytest.approx(1.0)
        assert config.effective_pair_interval_s == pytest.approx(2.0)
        with pytest.raises(ValueError):
            ProbingConfig(rate_multiplier=0.0)

    def test_manager_attaches_tables_and_counts_bytes(self):
        network = make_chain_network(3, 100.0)
        manager = ProbingManager(network, SppMetric())
        manager.start()
        network.run(30.0)
        assert set(manager.tables) == {0, 1, 2}
        assert manager.probe_bytes_sent() > 0
        # SPP probing is broadcast probes only.
        assert network.total_counter("tx.probe_pair_small.bytes") == 0

    def test_pair_metrics_send_pairs(self):
        network = make_chain_network(2, 100.0)
        manager = ProbingManager(network, PpMetric())
        manager.start()
        network.run(45.0)
        smalls = network.total_counter("tx.probe_pair_small.packets")
        larges = network.total_counter("tx.probe_pair_large.packets")
        assert smalls == larges
        assert smalls >= 4  # two nodes, ~10 s cadence

    def test_higher_rate_sends_proportionally_more(self):
        totals = {}
        for rate in (1.0, 5.0):
            network = make_chain_network(2, 100.0)
            manager = ProbingManager(
                network, SppMetric(), ProbingConfig(rate_multiplier=rate)
            )
            manager.start()
            network.run(100.0)
            totals[rate] = network.total_counter("tx.probe.packets")
        ratio = totals[5.0] / totals[1.0]
        assert 3.5 < ratio < 6.5
