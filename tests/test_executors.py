"""Tests for the pluggable sweep-executor layer.

The contract under test: backend URIs parse predictably; the default
``local-pool`` executor routes plain sweeps through the historical
process pool and resilience-flagged sweeps through the supervisor,
bit-identically to the pre-refactor call paths; and the executor
lifecycle (submit once, collect after submit) fails loudly when
misused.  The ``dir://`` backend's own machinery is covered in
``test_distributed.py``.
"""

from __future__ import annotations

import pytest

from repro.experiments.executors import (
    Backend,
    BackendError,
    LocalPoolExecutor,
    create_executor,
    parse_backend,
)
from repro.experiments.parallel import RunSpec, execute_runs_detailed
from repro.experiments.resilience import ResilienceConfig
from repro.experiments.results import RunResult
from repro.experiments.scenarios import SimulationScenarioConfig

CFG = SimulationScenarioConfig(
    num_nodes=4, duration_s=1.0, warmup_s=0.1, topology_seed=1
)


def _quick_result(spec: RunSpec) -> RunResult:
    return RunResult(
        protocol=spec.protocol.lower(), topology_seed=spec.seed,
        duration_s=1.0, offered_packets=10, expected_deliveries=10,
        delivered_packets=5, delivered_bytes=5 * 512,
        mean_delay_s=0.01, probe_bytes=1.0,
    )


def ok_worker(spec):
    return _quick_result(spec), 0.01


class TestParseBackend:
    @pytest.mark.parametrize("uri", [None, "", "local-pool", "local",
                                     "pool"])
    def test_local_spellings(self, uri):
        parsed = parse_backend(uri)
        assert parsed.kind == "local-pool"
        assert parsed.root is None
        assert parsed.uri() == "local-pool"

    def test_dir_uri(self):
        parsed = parse_backend("dir:///mnt/shared/sweep")
        assert parsed.kind == "dir"
        assert parsed.root == "/mnt/shared/sweep"
        assert parsed.uri() == "dir:///mnt/shared/sweep"

    def test_dir_relative_path(self):
        parsed = parse_backend("dir://./sweepdir")
        assert parsed.root == "./sweepdir"

    def test_dir_expands_user(self):
        parsed = parse_backend("dir://~/sweeps/a")
        assert "~" not in parsed.root

    def test_dir_without_path_is_rejected(self):
        with pytest.raises(BackendError, match="shared directory"):
            parse_backend("dir://")

    def test_unknown_scheme_is_rejected(self):
        with pytest.raises(BackendError, match="unknown sweep backend"):
            parse_backend("ftp://somewhere")

    def test_backend_error_is_a_value_error(self):
        # Spec validation catches ValueError; a new exception type must
        # stay inside that contract.
        assert issubclass(BackendError, ValueError)


class TestCreateExecutorRouting:
    def test_default_is_plain_local_pool(self):
        executor = create_executor(None, jobs=2)
        assert isinstance(executor, LocalPoolExecutor)
        assert not executor.resilient
        assert executor.jobs == 2

    def test_parsed_backend_object_is_accepted(self):
        executor = create_executor(Backend(kind="local-pool"))
        assert isinstance(executor, LocalPoolExecutor)

    @pytest.mark.parametrize("kwargs", [
        {"run_timeout_s": 30.0},
        {"max_retries": 1},
        {"resume": True},
        {"journal_path": "j.jsonl"},
        {"worker_fn": ok_worker},
    ])
    def test_any_resilience_knob_selects_the_supervisor(self, kwargs):
        executor = create_executor(None, **kwargs)
        assert isinstance(executor, LocalPoolExecutor)
        assert executor.resilient

    def test_retry_budget_reaches_the_resilience_config(self):
        executor = create_executor(None, run_timeout_s=12.0, max_retries=5)
        assert executor.resilience.run_timeout_s == 12.0
        assert executor.resilience.retry.max_retries == 5

    def test_dir_backend_builds_dir_executor(self, tmp_path):
        from repro.experiments.distributed import DirExecutor

        executor = create_executor(
            f"dir://{tmp_path}", workers=3, lease_timeout_s=4.0,
            max_retries=1,
        )
        assert isinstance(executor, DirExecutor)
        assert executor.workers == 3
        assert executor.lease.lease_timeout_s == 4.0
        assert executor.lease.max_retries == 1

    def test_dir_workers_default_to_jobs(self, tmp_path):
        executor = create_executor(f"dir://{tmp_path}", jobs=4)
        assert executor.workers == 4


class TestLocalPoolExecutor:
    def test_plain_path_matches_execute_runs_detailed(self):
        tiny = SimulationScenarioConfig(
            num_nodes=6, area_width_m=400.0, area_height_m=400.0,
            num_groups=1, members_per_group=3, duration_s=4.0,
            warmup_s=1.0, topology_seed=1,
        )
        specs = [RunSpec("odmrp", tiny, 1)]
        direct = execute_runs_detailed(specs, jobs=1)
        with LocalPoolExecutor(jobs=1) as executor:
            routed = executor.execute(specs)
        assert [o.result for o in routed] == [o.result for o in direct]
        assert routed[0].result.error is None

    def test_resilient_path_supervises(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        specs = [RunSpec("odmrp", CFG, 1), RunSpec("odmrp", CFG, 2)]
        executor = LocalPoolExecutor(
            jobs=2, resilience=ResilienceConfig(run_timeout_s=30.0),
            journal_path=journal, worker=ok_worker,
        )
        outcomes = executor.execute(specs)
        assert [o.result for o in outcomes] == [
            _quick_result(spec) for spec in specs
        ]
        from repro.experiments.resilience import SweepJournal

        assert len(SweepJournal.replay(journal)) == len(specs)

    def test_progress_fires_per_run(self):
        seen = []
        executor = LocalPoolExecutor(jobs=1, worker=ok_worker)
        executor.execute(
            [RunSpec("odmrp", CFG, 1), RunSpec("spp", CFG, 2)],
            progress=lambda protocol, seed: seen.append((protocol, seed)),
        )
        assert sorted(seen) == [("odmrp", 1), ("spp", 2)]

    def test_submit_twice_is_an_error(self):
        executor = LocalPoolExecutor(worker=ok_worker)
        executor.submit([RunSpec("odmrp", CFG, 1)])
        with pytest.raises(RuntimeError, match="already"):
            executor.submit([RunSpec("odmrp", CFG, 2)])

    def test_collect_before_submit_is_an_error(self):
        with pytest.raises(RuntimeError, match="before submit"):
            LocalPoolExecutor().collect()


class TestSpecBackendField:
    def test_round_trip_preserves_backend(self):
        from repro.experiments.spec import ExperimentSpec

        spec = ExperimentSpec(
            name="fleet", protocols=("odmrp",), seeds=(1,),
            backend="dir:///mnt/shared/sweep",
        )
        for text, loader in (
            (spec.to_json(), ExperimentSpec.from_json),
            (spec.to_toml(), ExperimentSpec.from_toml),
        ):
            assert loader(text).backend == "dir:///mnt/shared/sweep"

    def test_default_backend_is_omitted_on_write(self):
        from repro.experiments.spec import ExperimentSpec

        spec = ExperimentSpec(protocols=("odmrp",))
        assert "backend" not in spec.to_dict()
        # Exact TOML line check: the serialized config legitimately
        # contains ``phy_backend``, so a substring test would lie.
        assert "\nbackend = " not in spec.to_toml()

    def test_validate_rejects_bad_backend(self):
        from repro.experiments.spec import ExperimentSpec, SpecError

        with pytest.raises(SpecError, match="unknown sweep backend"):
            ExperimentSpec(
                protocols=("odmrp",), backend="ftp://x"
            ).validate()

    def test_describe_mentions_non_default_backend(self):
        from repro.experiments.spec import ExperimentSpec

        text = ExperimentSpec(
            protocols=("odmrp",), backend="dir:///tmp/s"
        ).describe()
        assert "backend=dir:///tmp/s" in text

    def test_with_overrides_sets_backend(self):
        from repro.experiments.spec import ExperimentSpec

        spec = ExperimentSpec(protocols=("odmrp",))
        assert spec.with_overrides(
            backend="dir:///tmp/s"
        ).backend == "dir:///tmp/s"
