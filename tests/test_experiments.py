"""Tests for scenario builders, the runner, results, and figure entry points."""

from __future__ import annotations

import pytest

from repro.experiments.figures import (
    PAPER_TABLE1_OVERHEAD_PCT,
    figure1_metx_vs_spp,
    figure3_etx_vs_spp,
    lossy_link_data_share,
)
from repro.experiments.results import (
    RunResult,
    aggregate_runs,
    normalized_metric_table,
)
from repro.experiments.runner import collect_result, compare_protocols, run_protocol
from repro.experiments.scenarios import (
    PROTOCOL_NAMES,
    SimulationScenarioConfig,
    build_simulation_scenario,
)

#: Small-but-meaningful scale for scenario integration tests.
SMALL = SimulationScenarioConfig(
    num_nodes=16,
    area_width_m=700.0,
    area_height_m=700.0,
    members_per_group=3,
    num_groups=1,
    duration_s=45.0,
    warmup_s=15.0,
    topology_seed=4,
)


class TestScenarioBuilder:
    def test_same_seed_same_topology_across_protocols(self):
        a = build_simulation_scenario("odmrp", SMALL)
        b = build_simulation_scenario("spp", SMALL)
        assert a.positions == b.positions
        assert a.groups == b.groups

    def test_different_seed_different_topology(self):
        from dataclasses import replace

        a = build_simulation_scenario("odmrp", SMALL)
        b = build_simulation_scenario(
            "odmrp", replace(SMALL, topology_seed=5)
        )
        assert a.positions != b.positions

    def test_baseline_has_no_probing(self):
        scenario = build_simulation_scenario("odmrp", SMALL)
        assert scenario.probing is None
        assert scenario.metric is None

    def test_metric_variant_has_matching_prober(self):
        scenario = build_simulation_scenario("pp", SMALL)
        assert scenario.metric is not None
        assert scenario.metric.name == "pp"
        assert scenario.probing is not None

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            build_simulation_scenario("dsdv", SMALL)

    def test_with_probing_rate_copies(self):
        boosted = SMALL.with_probing_rate(5.0)
        assert boosted.probing.rate_multiplier == 5.0
        assert SMALL.probing.rate_multiplier == 1.0
        assert boosted.num_nodes == SMALL.num_nodes


class TestRunner:
    def test_run_protocol_produces_consistent_result(self):
        result = run_protocol("spp", SMALL)
        assert result.protocol == "spp"
        assert result.offered_packets > 0
        assert result.expected_deliveries == (
            result.offered_packets * SMALL.members_per_group
        )
        assert 0 < result.delivered_packets <= result.expected_deliveries
        assert result.delivered_bytes == result.delivered_packets * 512
        assert result.probe_bytes > 0
        assert result.mean_delay_s is not None and result.mean_delay_s > 0
        assert result.throughput_bps == pytest.approx(
            result.delivered_bytes * 8 / SMALL.duration_s
        )

    def test_baseline_has_zero_probe_bytes(self):
        result = run_protocol("odmrp", SMALL)
        assert result.probe_bytes == 0.0

    def test_compare_protocols_runs_grid(self):
        runs = compare_protocols(
            SMALL, protocols=("odmrp", "spp"), topology_seeds=(4, 5)
        )
        assert len(runs) == 4
        assert {run.protocol for run in runs} == {"odmrp", "spp"}
        assert {run.topology_seed for run in runs} == {4, 5}

    def test_determinism_same_config_same_result(self):
        a = run_protocol("spp", SMALL)
        b = run_protocol("spp", SMALL)
        assert a.delivered_packets == b.delivered_packets
        assert a.mean_delay_s == b.mean_delay_s


class TestCollectResultAccounting:
    """Pin the exact counter accounting of ``collect_result``.

    Channel counters are summed whole while node counters pass a prefix
    filter -- two different code paths that must never overlap (that
    would double-count) and whose key set must not drift silently under
    refactors.  A fixed-seed 3-node run makes every value exact.
    """

    TINY3 = SimulationScenarioConfig(
        num_nodes=3,
        area_width_m=300.0,
        area_height_m=300.0,
        num_groups=1,
        members_per_group=2,
        sources_per_group=1,
        duration_s=20.0,
        warmup_s=5.0,
        topology_seed=3,
    )

    @pytest.fixture(scope="class")
    def tiny_scenario(self):
        scenario = build_simulation_scenario("spp", self.TINY3)
        scenario.run()
        return scenario

    def test_channel_and_node_counter_names_are_disjoint(self, tiny_scenario):
        """The precondition for summing both sources into one dict."""
        node_names = set()
        for node in tiny_scenario.network.nodes:
            node_names.update(node.counters.as_dict())
        channel_names = set(
            tiny_scenario.network.channel.counters.as_dict()
        )
        assert node_names & channel_names == set()
        # Node counters must not sneak into the channel's namespace,
        # where the whole-set merge would double-count them.
        assert not any(name.startswith("channel.") for name in node_names)

    def test_exact_counter_key_set(self, tiny_scenario):
        result = collect_result(tiny_scenario)
        assert set(result.counters) == {
            "channel.tx.data",
            "channel.tx.join_query",
            "channel.tx.join_reply",
            "channel.tx.probe",
            "odmrp.data_delivered",
            "odmrp.data_delivered_bytes",
            "odmrp.data_duplicate",
            "odmrp.data_forwarded",
            "odmrp.data_originated",
            "odmrp.data_rx_from.1",
            "odmrp.data_rx_from.2",
            "odmrp.fg_refreshed",
            "odmrp.query_duplicate_dropped",
            "odmrp.query_forwarded",
            "odmrp.query_improved",
            "odmrp.query_originated",
            "odmrp.reply_sent",
            "odmrp.route_established",
            "phy.rx_ok",
            "tx.data.bytes",
            "tx.data.packets",
            "tx.join_query.bytes",
            "tx.join_query.packets",
            "tx.join_reply.bytes",
            "tx.join_reply.packets",
            "tx.probe.bytes",
            "tx.probe.packets",
        }

    def test_counters_match_their_sources_exactly(self, tiny_scenario):
        result = collect_result(tiny_scenario)
        channel_counters = tiny_scenario.network.channel.counters.as_dict()
        for name, value in result.counters.items():
            node_sum = sum(
                node.counters.get(name)
                for node in tiny_scenario.network.nodes
            )
            expected = node_sum + channel_counters.get(name, 0.0)
            assert value == expected, name

    def test_pinned_values_for_fixed_seed(self, tiny_scenario):
        result = collect_result(tiny_scenario)
        # Every MAC-queued frame crosses the channel exactly once.
        assert result.counters["channel.tx.data"] == (
            result.counters["tx.data.packets"]
        )
        assert result.counters["channel.tx.data"] == 540.0
        assert result.counters["phy.rx_ok"] == 886.0
        assert result.counters["odmrp.data_delivered"] == 599.0
        assert result.delivered_packets == 599
        assert result.offered_packets == 300


class TestResults:
    def make_run(self, protocol, seed=1, delivered=100, expected=200,
                 delay=0.01, probe_bytes=500.0):
        return RunResult(
            protocol=protocol,
            topology_seed=seed,
            duration_s=10.0,
            offered_packets=expected // 2,
            expected_deliveries=expected,
            delivered_packets=delivered,
            delivered_bytes=delivered * 512,
            mean_delay_s=delay,
            probe_bytes=probe_bytes,
        )

    def test_derived_properties(self):
        run = self.make_run("spp")
        assert run.packet_delivery_ratio == 0.5
        assert run.throughput_bps == 100 * 512 * 8 / 10.0
        assert run.probe_overhead_pct == pytest.approx(
            100 * 500.0 / (100 * 512)
        )

    def test_zero_delivery_overhead_is_infinite(self):
        run = self.make_run("spp", delivered=0)
        assert run.probe_overhead_pct == float("inf")

    def test_aggregate_means(self):
        runs = [
            self.make_run("spp", seed=1, delivered=100),
            self.make_run("spp", seed=2, delivered=200),
            self.make_run("odmrp", seed=1, delivered=100, probe_bytes=0.0),
        ]
        aggregates = aggregate_runs(runs)
        assert aggregates["spp"].runs == 2
        assert aggregates["spp"].mean_delivery_ratio == pytest.approx(0.75)
        assert aggregates["odmrp"].runs == 1

    def test_normalized_table(self):
        runs = [
            self.make_run("odmrp", delivered=100),
            self.make_run("spp", delivered=150),
        ]
        table = normalized_metric_table(aggregate_runs(runs), "throughput")
        assert table["odmrp"] == 1.0
        assert table["spp"] == pytest.approx(1.5)

    def test_unknown_column_rejected(self):
        runs = [self.make_run("odmrp")]
        with pytest.raises(ValueError):
            normalized_metric_table(aggregate_runs(runs), "jitter")

    def test_failed_runs_are_tallied_not_averaged(self):
        from dataclasses import replace

        good = self.make_run("spp", seed=1, delivered=100)
        bad = replace(good, topology_seed=2, delivered_packets=0,
                      delivered_bytes=0, error="boom")
        aggregates = aggregate_runs([good, bad])
        assert aggregates["spp"].runs == 1
        assert aggregates["spp"].failed_runs == 1
        assert aggregates["spp"].mean_delivery_ratio == pytest.approx(0.5)

    def test_all_failed_protocol_still_appears(self):
        from dataclasses import replace

        bad = replace(self.make_run("etx"), delivered_packets=0,
                      delivered_bytes=0, error="boom")
        aggregates = aggregate_runs([self.make_run("spp"), bad])
        assert aggregates["etx"].runs == 0
        assert aggregates["etx"].failed_runs == 1
        assert aggregates["etx"].mean_throughput_bps == 0.0
        assert aggregates["etx"].mean_delay_s is None

    def test_zero_delivery_runs_are_counted(self):
        runs = [
            self.make_run("spp", seed=1, delivered=100),
            self.make_run("spp", seed=2, delivered=0, delay=None),
        ]
        aggregates = aggregate_runs(runs)
        assert aggregates["spp"].runs == 2
        assert aggregates["spp"].zero_delivery_runs == 1
        assert aggregates["spp"].failed_runs == 0


class TestAnalyticFigures:
    def test_figure1_matches_paper_exactly(self):
        result = figure1_metx_vs_spp()
        for key, value in result.paper.items():
            assert result.measured[key] == pytest.approx(value, abs=1e-9), key

    def test_figure3_matches_paper(self):
        result = figure3_etx_vs_spp()
        assert result.measured["etx_abcd"] == pytest.approx(3.75)
        assert result.measured["etx_aed"] == pytest.approx(3.611, abs=0.001)
        assert result.measured["spp_abcd"] == pytest.approx(0.512)
        assert result.measured["spp_aed"] == pytest.approx(0.36)

    def test_table1_paper_ordering_constant(self):
        """The reference data preserves the paper's overhead ordering."""
        order = sorted(
            PAPER_TABLE1_OVERHEAD_PCT, key=PAPER_TABLE1_OVERHEAD_PCT.get
        )
        assert order == ["spp", "metx", "etx", "pp", "ett"]

    def test_lossy_link_data_share(self):
        tree = [(2, 5, 1.0), (2, 10, 0.5), (10, 5, 0.5)]
        share = lossy_link_data_share(tree)
        assert share == pytest.approx(0.5)
        assert lossy_link_data_share([]) == 0.0


class TestEndToEndShape:
    def test_spp_beats_baseline_on_small_scenario(self):
        """The headline claim at reduced scale: SPP delivers more than
        original ODMRP summed over a few topologies.  (A single tiny
        topology is a coin flip -- with slow fading the channel is nearly
        static over 45 s -- so this aggregates three.)"""
        runs = compare_protocols(
            SMALL, protocols=("odmrp", "spp"), topology_seeds=(4, 5, 6)
        )
        totals = {"odmrp": 0, "spp": 0}
        for run in runs:
            totals[run.protocol] += run.delivered_packets
        assert totals["spp"] > totals["odmrp"]
