"""Property battery for the Student-t statistics layer.

The adaptive sweep planner stops protocols on CI half-widths computed
at very small n, so the stats layer is load-bearing: this suite checks
the *distributional* claims (t-interval coverage on synthetic normal
draws), the comparison identities (Welch symmetry and scale
invariance, paired-narrower-than-unpaired under positive correlation),
and the documented degenerate-input sentinels.  CI runs it under
``HYPOTHESIS_PROFILE=ci`` for derandomized, bounded examples.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import (
    WelchResult,
    ci_half_width,
    confidence_interval,
    confidence_interval_95,
    mean,
    paired_difference_ci,
    stddev,
    student_t_cdf,
    t_critical,
    unpaired_difference_ci,
    welch_t_test,
)

#: Two-sided 95 % critical values, Student-t (df -> t*), textbook table.
T_TABLE = {
    1: 12.7062047362,
    2: 4.3026527297,
    3: 3.1824463053,
    4: 2.7764451052,
    5: 2.5705818356,
    9: 2.2621571628,
    29: 2.0452296421,
    99: 1.9842169517,
}

Z_95 = 1.9599639845


class TestTCritical:
    def test_matches_textbook_table(self):
        for df, expected in T_TABLE.items():
            assert t_critical(df) == pytest.approx(expected, abs=1e-8)

    def test_approaches_z_for_large_df(self):
        assert t_critical(100000) == pytest.approx(Z_95, abs=1e-3)

    @given(st.integers(min_value=1, max_value=500))
    def test_always_wider_than_z(self, df):
        assert t_critical(df) > Z_95

    @given(st.integers(min_value=1, max_value=200))
    def test_monotone_decreasing_in_df(self, df):
        assert t_critical(df) > t_critical(df + 1)

    @given(
        st.floats(min_value=-50.0, max_value=50.0),
        st.integers(min_value=1, max_value=100),
    )
    def test_cdf_symmetry(self, t, df):
        assert student_t_cdf(t, df) + student_t_cdf(-t, df) == (
            pytest.approx(1.0, abs=1e-12)
        )

    def test_critical_value_inverts_cdf(self):
        for df in (1, 2, 5, 17):
            t_star = t_critical(df)
            assert student_t_cdf(t_star, df) == pytest.approx(
                0.975, abs=1e-10
            )

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            t_critical(0)
        with pytest.raises(ValueError):
            t_critical(5, confidence=1.0)
        with pytest.raises(ValueError):
            student_t_cdf(1.0, 0)


class TestCoverage:
    def test_t_interval_covers_true_mean_95pct(self):
        """The whole point of the t fix: on n=5 normal draws the
        interval must cover the true mean ~95 % of the time.  2,000
        seeded trials; the binomial 3-sigma band around 0.95 is ~1.5
        percentage points, so [0.93, 0.97] cannot flake."""
        rng = random.Random(12345)
        true_mean, true_sd, n, trials = 10.0, 3.0, 5, 2000
        covered = 0
        for _ in range(trials):
            sample = [rng.gauss(true_mean, true_sd) for _ in range(n)]
            low, high = confidence_interval_95(sample)
            covered += int(low <= true_mean <= high)
        assert 0.93 <= covered / trials <= 0.97

    def test_z_interval_undercovers_at_small_n(self):
        """The regression the fix exists for: the old z=1.96 interval
        demonstrably under-covers at n=5 (~88 % here), outside the
        band the t interval is required to hit above."""
        rng = random.Random(12345)
        true_mean, true_sd, n, trials = 10.0, 3.0, 5, 2000
        covered = 0
        for _ in range(trials):
            sample = [rng.gauss(true_mean, true_sd) for _ in range(n)]
            center = mean(sample)
            half = 1.96 * stddev(sample) / math.sqrt(n)
            covered += int(center - half <= true_mean <= center + half)
        assert covered / trials < 0.93


class TestOldVsNewRegression:
    """Pin the z -> t change numerically so it cannot silently revert."""

    SAMPLE = (1.0, 2.0, 3.0)

    def test_new_half_width_uses_t(self):
        half = ci_half_width(self.SAMPLE)
        expected = T_TABLE[2] * stddev(self.SAMPLE) / math.sqrt(3)
        assert half == pytest.approx(expected, rel=1e-10)

    def test_new_interval_strictly_wider_than_old_z(self):
        old_half = 1.96 * stddev(self.SAMPLE) / math.sqrt(3)
        low, high = confidence_interval_95(self.SAMPLE)
        assert (high - low) / 2 == pytest.approx(
            old_half * T_TABLE[2] / 1.96, rel=1e-9
        )
        assert (high - low) / 2 > old_half

    def test_exact_pinned_values(self):
        low, high = confidence_interval_95(self.SAMPLE)
        # t*(df=2) = 4.30265, s = 1, n = 3: 2 +/- 2.48414.
        assert low == pytest.approx(-0.48414, abs=1e-4)
        assert high == pytest.approx(4.48414, abs=1e-4)


@st.composite
def correlated_pairs(draw):
    """Two positively correlated samples: a shared per-index base term
    dominating independent noise two orders of magnitude smaller."""
    base = draw(st.lists(
        st.floats(min_value=-100.0, max_value=100.0),
        min_size=3, max_size=12, unique=True,
    ))
    spread = max(base) - min(base)
    if spread < 1.0:
        base = [value * (2.0 / max(spread, 1e-6)) for value in base]
        spread = max(base) - min(base)
    amplitude = 0.005 * spread
    noise = st.floats(min_value=-amplitude, max_value=amplitude)
    a = [value + draw(noise) for value in base]
    b = [value + draw(noise) for value in base]
    return a, b


class TestPairing:
    @given(correlated_pairs())
    def test_paired_never_wider_than_unpaired(self, samples):
        a, b = samples
        p_low, p_high = paired_difference_ci(a, b)
        u_low, u_high = unpaired_difference_ci(a, b)
        assert (p_high - p_low) <= (u_high - u_low) + 1e-9

    def test_paired_interval_centers_on_mean_difference(self):
        a = [10.0, 12.0, 14.0, 16.0]
        b = [9.0, 11.5, 13.0, 15.5]
        low, high = paired_difference_ci(a, b)
        diffs = [x - y for x, y in zip(a, b)]
        assert (low + high) / 2 == pytest.approx(mean(diffs))
        assert (low, high) == paired_difference_ci(a, b)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            paired_difference_ci([1.0, 2.0], [1.0])


class TestWelch:
    @given(
        st.lists(st.floats(-100.0, 100.0), min_size=2, max_size=10),
        st.lists(st.floats(-100.0, 100.0), min_size=2, max_size=10),
    )
    def test_symmetric(self, a, b):
        forward = welch_t_test(a, b)
        backward = welch_t_test(b, a)
        assert forward.statistic == pytest.approx(
            -backward.statistic, rel=1e-12, abs=1e-12
        )
        assert forward.df == pytest.approx(backward.df, rel=1e-12, abs=0)
        assert forward.p_value == pytest.approx(
            backward.p_value, rel=1e-12, abs=1e-12
        )

    @given(
        st.lists(st.integers(-10 ** 6, 10 ** 6).map(lambda v: v / 1000.0),
                 min_size=2, max_size=8),
        st.lists(st.integers(-10 ** 6, 10 ** 6).map(lambda v: v / 1000.0),
                 min_size=2, max_size=8),
        st.integers(min_value=-20, max_value=20),
    )
    def test_scale_invariant(self, a, b, exponent):
        """Multiplying both samples by c > 0 changes nothing.  Every
        IEEE operation commutes exactly with a power-of-two scale (no
        rounding, only exponent shifts), so equality here is exact --
        any drift means the formula itself lost its invariance."""
        scale = 2.0 ** exponent
        plain = welch_t_test(a, b)
        scaled = welch_t_test(
            [scale * x for x in a], [scale * x for x in b]
        )
        assert scaled == plain

    def test_known_value(self):
        a = [20.1, 20.4, 19.8, 20.3]
        b = [19.0, 18.8, 19.2, 18.9]
        result = welch_t_test(a, b)
        assert result.statistic > 5
        assert result.p_value < 0.01


class TestSentinels:
    """n=1 / n=2 / zero-variance inputs return documented sentinels."""

    def test_single_sample_interval_degenerate(self):
        assert confidence_interval_95([4.2]) == (4.2, 4.2)
        assert confidence_interval([4.2], 0.99) == (4.2, 4.2)
        assert ci_half_width([4.2]) == 0.0

    def test_two_sample_interval_finite(self):
        low, high = confidence_interval_95([1.0, 3.0])
        assert low < 2.0 < high
        assert math.isfinite(low) and math.isfinite(high)

    def test_zero_variance_interval_degenerate(self):
        assert confidence_interval_95([5.0, 5.0, 5.0]) == (5.0, 5.0)

    def test_welch_insufficient_samples_sentinel(self):
        sentinel = WelchResult(statistic=0.0, df=0.0, p_value=1.0)
        assert welch_t_test([1.0], [1.0, 2.0]) == sentinel
        assert welch_t_test([1.0, 2.0], [3.0]) == sentinel
        assert welch_t_test([], [1.0, 2.0]) == sentinel

    def test_welch_zero_variance_equal_means(self):
        result = welch_t_test([2.0, 2.0], [2.0, 2.0])
        assert result.statistic == 0.0
        assert result.p_value == 1.0

    def test_welch_zero_variance_unequal_means(self):
        result = welch_t_test([3.0, 3.0], [2.0, 2.0])
        assert math.isinf(result.statistic) and result.statistic > 0
        assert result.p_value == 0.0
        flipped = welch_t_test([2.0, 2.0], [3.0, 3.0])
        assert math.isinf(flipped.statistic) and flipped.statistic < 0
        assert flipped.p_value == 0.0

    def test_single_pair_degenerate(self):
        low, high = paired_difference_ci([5.0], [3.0])
        assert low == high == 2.0

    def test_unpaired_single_sample_degenerate(self):
        low, high = unpaired_difference_ci([5.0], [3.0, 3.0])
        assert low == high == 2.0

    def test_empty_still_raises(self):
        # Empty input is a caller bug, not a degenerate measurement.
        with pytest.raises(ValueError):
            confidence_interval_95([])
