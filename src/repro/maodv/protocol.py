"""A tree-based multicast router built on the ODMRP machinery.

The route-discovery plumbing (periodic source floods, cost accumulation,
delta-delayed member replies, alpha-windowed duplicate forwarding) is
inherited unchanged from :class:`~repro.odmrp.protocol.OdmrpRouter`; what
changes is the forwarding state a JOIN REPLY leaves behind:

* state is keyed by (group, source) -- one tree per source, not one
  forwarding group per group;
* a reply for a newer flood round *replaces* the older tree membership
  rather than extending it, so stale branches stop forwarding at the
  next round instead of lingering for the FG timeout;
* data is forwarded only by nodes on the current tree of its source.

The result has far less path redundancy than ODMRP -- the property that
makes metrics matter even with many sources per group (Section 4.3).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.net.packet import Packet
from repro.odmrp.messages import DataPayload, JoinReplyPayload
from repro.odmrp.protocol import OdmrpRouter


class MaodvRouter(OdmrpRouter):
    """Tree-based multicast with optional link-quality metrics."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # (group, source) -> (tree sequence, expiry time)
        self._tree: Dict[Tuple[int, int], Tuple[int, float]] = {}

    # ------------------------------------------------------------------
    # Forwarding-state construction (replaces the FG rules)

    def _on_join_reply(
        self, packet: Packet, sender_id: int, rx_power_mw: float
    ) -> None:
        payload: JoinReplyPayload = packet.payload
        now = self.sim.now
        for entry in payload.entries:
            if entry.next_hop != self.node.node_id:
                continue
            key = (payload.group_id, entry.source_id)
            current = self._tree.get(key)
            if current is None or entry.sequence >= current[0]:
                # Newer (or same-round) tree membership replaces the old.
                self._tree[key] = (
                    entry.sequence,
                    now + self._tree_lifetime_s(),
                )
                self.node.counters.add("maodv.tree_joined")
            if entry.source_id == self.node.node_id:
                self.node.counters.add("odmrp.route_established")
                continue
            reply_key = (payload.group_id, entry.source_id, entry.sequence)
            if not self._replied.check_and_add(reply_key):
                continue
            state = self._rounds.get(
                (payload.group_id, entry.source_id, entry.sequence)
            )
            if state is None:
                self.node.counters.add("odmrp.reply_no_route")
                continue
            delay = self._rng.uniform(0.0, self.config.reply_jitter_s)
            self.sim.schedule(delay, self._send_reply, state)

    def _tree_lifetime_s(self) -> float:
        """Tree state survives 1.5 refresh rounds: enough to bridge one
        lost flood, short enough to avoid ODMRP-style mesh buildup."""
        return 1.5 * self.config.refresh_interval_s

    def _on_tree(self, group_id: int, source_id: int) -> bool:
        entry = self._tree.get((group_id, source_id))
        return entry is not None and entry[1] > self.sim.now

    # ------------------------------------------------------------------
    # Data forwarding (per-source tree instead of per-group FG)

    def _on_data(self, packet: Packet, sender_id: int, rx_power_mw: float) -> None:
        payload: DataPayload = packet.payload
        key = (payload.group_id, payload.source_id, payload.sequence)
        if not self._data_cache.check_and_add(key):
            self.node.counters.add("odmrp.data_duplicate")
            return
        self.node.counters.add(f"odmrp.data_rx_from.{sender_id}")
        if payload.group_id in self.member_groups:
            self.node.counters.add("odmrp.data_delivered")
            self.node.counters.add(
                "odmrp.data_delivered_bytes", packet.size_bytes
            )
            if self.on_deliver is not None:
                self.on_deliver(packet, payload, self.node.node_id)
        if self._on_tree(payload.group_id, payload.source_id):
            self.node.counters.add("odmrp.data_forwarded")
            self.node.send_broadcast(packet.copy_for_forwarding())

    # ------------------------------------------------------------------
    # Introspection

    def is_forwarder_for_source(self, group_id: int, source_id: int) -> bool:
        return self._on_tree(group_id, source_id)

    def would_forward_data(self, group_id: int, source_id: int) -> bool:
        """MAODV forwards only on the live tree of the packet's source."""
        return self._on_tree(group_id, source_id)

    def tree_expiries(self) -> Dict[Tuple[int, int], Tuple[int, float]]:
        """(group, source) -> (tree sequence, expiry time); a copy.

        Validation hook: tree lifetimes must never exceed
        ``1.5 * refresh_interval_s`` from the moment they were granted.
        """
        return dict(self._tree)

    def active_tree_count(self) -> int:
        """How many (group, source) trees this node currently forwards for.

        Telemetry hook: the sampler counts tree membership across nodes to
        plot tree size and churn over time.
        """
        now = self.sim.now
        return sum(1 for _, expiry in self._tree.values() if expiry > now)
