"""Failure injection: radio outages for robustness experiments.

The paper's mesh is static and failure-free, but a credible ODMRP
implementation must survive router crashes: the soft-state design
(periodic JOIN QUERY refresh + forwarding-group timeout) is exactly what
repairs routes after an outage.  The test suite uses this module to
verify that property; it is also available for user experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.net.node import Node
from repro.sim.engine import Simulator


@dataclass
class OutageWindow:
    """One planned radio outage."""

    node_id: int
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValueError(
                f"outage must end after it starts ({self.start_s} .. {self.end_s})"
            )


@dataclass
class FailureInjector:
    """Schedules radio down/up transitions on simulator time."""

    sim: Simulator
    windows: List[OutageWindow] = field(default_factory=list)

    def schedule_outage(self, node: Node, start_s: float, end_s: float) -> None:
        """Take ``node`` down during ``[start_s, end_s)`` (absolute times)."""
        window = OutageWindow(node.node_id, start_s, end_s)
        self.windows.append(window)
        self.sim.schedule_at(start_s, node.set_active, False)
        self.sim.schedule_at(end_s, node.set_active, True)

    def schedule_flapping(
        self,
        node: Node,
        start_s: float,
        period_s: float,
        down_fraction: float,
        until_s: float,
    ) -> int:
        """Repeated outages: down for ``down_fraction`` of every period.

        Returns the number of outages scheduled.  Models a marginal
        router (overheating, flaky power) rather than a clean crash.
        """
        if not 0.0 < down_fraction < 1.0:
            raise ValueError("down fraction must be in (0, 1)")
        if period_s <= 0:
            raise ValueError("period must be positive")
        count = 0
        start = start_s
        while start < until_s:
            down_end = min(start + down_fraction * period_s, until_s)
            self.schedule_outage(node, start, down_end)
            count += 1
            start += period_s
        return count

    def total_downtime_s(self, node_id: int) -> float:
        """Scheduled downtime for one node (diagnostics)."""
        return sum(
            w.end_s - w.start_s for w in self.windows if w.node_id == node_id
        )
