"""Performance-trajectory benchmark: engine micro + sweep meso.

Unlike the figure benches (which validate *numbers* against the paper),
this file tracks how fast the simulator itself is, so perf work in later
PRs has a recorded trajectory to compare against.  It measures:

* **engine micro** -- raw event churn through ``Simulator.run()`` with
  trivial callbacks: pure engine overhead, in events/second.
* **sweep meso** -- a fixed-seed multi-protocol sweep executed serially
  and through the parallel runner (``jobs=2``), asserting the two
  produce *bit-identical* ``RunResult`` lists before timing them.
* **phy micro** -- one dense-mesh run under the scalar and the
  vectorized reception backends, asserting bit-identical results and
  timing both (``scripts/bench_check.py`` gates on this row).
* **macro flood** -- a 2,000-node JOIN QUERY flood at paper density:
  the workload the spatial grid index and vectorized PHY exist for.
* **mobility flood** -- the same flood at 500 nodes with every node in
  random-waypoint motion: tracks the incremental topology-invalidation
  pipeline's per-tick cost.

Results land in ``BENCH_perf.json`` at the repo root: events/sec,
wall-clock per run, and the parallel speedup.  Speedup tracks the
host's core count; on a single-core box a pool cannot beat serial, so
the sweep row records ``cpu_count`` and replaces the speedup with an
explanatory note rather than reading as a parallel regression (the
identity assertion, not the speedup, is the correctness gate).

Run via pytest (``pytest benchmarks/bench_perf_engine.py -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_perf_engine.py``).
Scale knobs: ``REPRO_PERF_EVENTS`` (micro events), ``REPRO_PERF_SEEDS``
(meso seeds), ``REPRO_JOBS`` (meso pool size), ``REPRO_MACRO_NODES``
(macro flood mesh size), ``REPRO_MOBILITY_NODES`` (mobility flood mesh
size).
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import time
from typing import Dict, List, Tuple

from repro.experiments.parallel import execute_runs, sweep_specs
from repro.experiments.results import RunResult
from repro.experiments.runner import run_protocol
from repro.experiments.scenarios import (
    PROTOCOL_NAMES,
    SimulationScenarioConfig,
    macro_flood_config,
)
from repro.sim.engine import Simulator

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_perf.json")

#: Small but protocol-complete scenario: all six variants finish in
#: seconds per run while still exercising MAC, fading, and probing paths.
MESO_CONFIG = SimulationScenarioConfig(
    num_nodes=16,
    area_width_m=700.0,
    area_height_m=700.0,
    num_groups=1,
    members_per_group=3,
    duration_s=25.0,
    warmup_s=8.0,
)

#: Dense mid-size mesh for the scalar-vs-vectorized micro comparison:
#: 8x the paper's node density, so each transmission batches a few
#: hundred audible receivers -- the regime the numpy path targets.
PHY_MICRO_CONFIG = SimulationScenarioConfig(
    num_nodes=400,
    area_width_m=1000.0,
    area_height_m=1000.0,
    num_groups=1,
    members_per_group=8,
    rate_pps=10.0,
    duration_s=4.0,
    warmup_s=1.0,
)


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def engine_events_per_sec(n_events: int) -> float:
    """Event churn through a self-rescheduling callback chain."""
    sim = Simulator(seed=1)
    remaining = [n_events]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(0.001, tick)

    for i in range(100):
        sim.schedule(0.001 * (i + 1), tick)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    # The 100 seeded chains overshoot slightly (in-flight events drain
    # after the target is hit); rate over what actually executed.
    assert sim.events_executed >= n_events
    return sim.events_executed / elapsed


def _write_report(section: str, payload: Dict) -> None:
    """Merge one section into BENCH_perf.json (sections run independently)."""
    report: Dict = {}
    try:
        with open(BENCH_PATH, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        pass
    report["python"] = platform.python_version()
    report["cpu_count"] = os.cpu_count()
    report[section] = payload
    with open(BENCH_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def bench_engine_micro() -> None:
    """Record serial engine event throughput."""
    n_events = _env_int("REPRO_PERF_EVENTS", 200_000)
    rates = [engine_events_per_sec(n_events) for _ in range(3)]
    best = max(rates)
    _write_report("engine_micro", {
        "events": n_events,
        "events_per_sec_best": round(best),
        "events_per_sec_all": [round(rate) for rate in rates],
    })
    print(f"\nengine micro: {best:,.0f} events/s (best of {len(rates)})")
    assert best > 0


def bench_sweep_parallel_vs_serial() -> None:
    """Time the sweep both ways; identity first, speedup second."""
    seeds = tuple(range(1, _env_int("REPRO_PERF_SEEDS", 2) + 1))
    jobs = _env_int("REPRO_JOBS", 2) or (os.cpu_count() or 1)
    specs = sweep_specs(MESO_CONFIG, PROTOCOL_NAMES, seeds)

    start = time.perf_counter()
    serial = execute_runs(specs, jobs=1, use_cache=False)
    wall_serial = time.perf_counter() - start

    start = time.perf_counter()
    pooled = execute_runs(specs, jobs=jobs, use_cache=False)
    wall_parallel = time.perf_counter() - start

    # The gate: parallel execution must not change a single bit of any
    # result.  Dataclass equality covers every field including counters.
    mismatches: List[str] = [
        f"{spec.protocol}/seed={spec.seed}"
        for spec, a, b in zip(specs, serial, pooled)
        if a != b
    ]
    assert not mismatches, f"parallel results diverged: {mismatches}"
    assert all(run.error is None for run in pooled)

    cpu_count = os.cpu_count() or 1
    payload = {
        "runs": len(specs),
        "protocols": list(PROTOCOL_NAMES),
        "seeds": list(seeds),
        "jobs": jobs,
        "cpu_count": cpu_count,
        "wall_serial_s": round(wall_serial, 3),
        "wall_parallel_s": round(wall_parallel, 3),
        "wall_per_run_serial_s": round(wall_serial / len(specs), 3),
        "results_identical": True,
    }
    if cpu_count < 2:
        # A pool on one core just time-slices it; publishing a sub-1.0
        # "speedup" would read as a parallel regression.  Record why
        # the comparison is meaningless instead of the number.
        payload["speedup_vs_serial"] = None
        payload["speedup_note"] = (
            f"skipped: host has {cpu_count} CPU(s); a worker pool "
            "cannot beat serial on a single core"
        )
        speedup_text = "skipped (single-core host)"
    else:
        speedup = wall_serial / wall_parallel if wall_parallel > 0 else 0.0
        payload["speedup_vs_serial"] = round(speedup, 3)
        speedup_text = f"speedup {speedup:.2f}x"
    _write_report("sweep_meso", payload)
    print(
        f"\nsweep meso: {len(specs)} runs, serial {wall_serial:.1f}s, "
        f"jobs={jobs} {wall_parallel:.1f}s, {speedup_text} "
        f"(identical results)"
    )


def bench_distributed_drain() -> None:
    """Time a dir:// sweep drained by 1 worker vs N; identity first.

    The distributed backend adds supervision, lease, and journal
    overhead per run, so the interesting numbers are the N-worker
    speedup over the 1-worker drain (queue scaling) and the identity
    gate against the plain serial pool (correctness).
    """
    import tempfile

    from repro.experiments.distributed import DirExecutor, LeaseConfig

    workers = _env_int("REPRO_DIST_WORKERS", 2) or (os.cpu_count() or 1)
    seeds = tuple(range(1, _env_int("REPRO_PERF_SEEDS", 2) + 1))
    specs = sweep_specs(MESO_CONFIG, ("odmrp", "spp"), seeds)
    lease = LeaseConfig(lease_timeout_s=60.0, heartbeat_interval_s=1.0,
                        poll_interval_s=0.1)
    serial = execute_runs(specs, jobs=1, use_cache=False)

    def drain(n_workers: int) -> Tuple[float, List[RunResult]]:
        with tempfile.TemporaryDirectory(prefix="repro-bench-dir-") as tmp:
            start = time.perf_counter()
            outcomes = DirExecutor(
                os.path.join(tmp, "shared"), workers=n_workers,
                lease=lease, use_cache=False,
            ).execute(specs)
            return time.perf_counter() - start, [
                outcome.result for outcome in outcomes
            ]

    wall_one, results_one = drain(1)
    wall_fleet, results_fleet = drain(workers)

    # The gate: a fleet drain must not change a single bit of any run.
    assert results_one == serial, "1-worker dir:// drain diverged"
    assert results_fleet == serial, f"{workers}-worker dir:// drain diverged"
    assert all(run.error is None for run in results_fleet)

    cpu_count = os.cpu_count() or 1
    payload = {
        "runs": len(specs),
        "protocols": ["odmrp", "spp"],
        "seeds": list(seeds),
        "workers": workers,
        "cpu_count": cpu_count,
        "wall_one_worker_s": round(wall_one, 3),
        "wall_fleet_s": round(wall_fleet, 3),
        "results_identical": True,
    }
    if cpu_count < 2:
        payload["speedup_vs_one_worker"] = None
        payload["speedup_note"] = (
            f"skipped: host has {cpu_count} CPU(s); extra workers "
            "cannot beat one worker on a single core"
        )
        speedup_text = "skipped (single-core host)"
    else:
        speedup = wall_one / wall_fleet if wall_fleet > 0 else 0.0
        payload["speedup_vs_one_worker"] = round(speedup, 3)
        speedup_text = f"speedup {speedup:.2f}x"
    _write_report("distributed_sweep", payload)
    print(
        f"\ndistributed drain: {len(specs)} runs, 1 worker "
        f"{wall_one:.1f}s, {workers} workers {wall_fleet:.1f}s, "
        f"{speedup_text} (identical results)"
    )


def phy_backend_micro() -> Tuple[float, float, RunResult, RunResult]:
    """Time one dense-mesh run per reception backend.

    Returns ``(wall_scalar_s, wall_vectorized_s, result_scalar,
    result_vectorized)``; callers assert identity and gate on the walls
    (``scripts/bench_check.py`` does both).
    """
    walls: Dict[str, float] = {}
    results: Dict[str, RunResult] = {}
    # Vectorized first so the scalar pass cannot look better purely by
    # running on a warmed-up allocator.
    for backend in ("vectorized", "scalar"):
        config = dataclasses.replace(
            PHY_MICRO_CONFIG,
            network=dataclasses.replace(
                PHY_MICRO_CONFIG.network, phy_backend=backend
            ),
        )
        start = time.perf_counter()
        results[backend] = run_protocol("odmrp", config)
        walls[backend] = time.perf_counter() - start
    return (
        walls["scalar"],
        walls["vectorized"],
        results["scalar"],
        results["vectorized"],
    )


def bench_phy_backends() -> None:
    """Record the scalar-vs-vectorized micro row (identity first)."""
    wall_scalar, wall_vectorized, scalar, vectorized = phy_backend_micro()
    assert scalar == vectorized, (
        "scalar and vectorized backends produced different results"
    )
    assert scalar.error is None, scalar.error
    speedup = wall_scalar / wall_vectorized if wall_vectorized > 0 else 0.0
    _write_report("phy_micro", {
        "num_nodes": PHY_MICRO_CONFIG.num_nodes,
        "duration_s": PHY_MICRO_CONFIG.duration_s,
        "protocol": "odmrp",
        "wall_scalar_s": round(wall_scalar, 3),
        "wall_vectorized_s": round(wall_vectorized, 3),
        "vectorized_speedup": round(speedup, 3),
        "results_identical": True,
    })
    print(
        f"\nphy micro: {PHY_MICRO_CONFIG.num_nodes} nodes, scalar "
        f"{wall_scalar:.2f}s, vectorized {wall_vectorized:.2f}s, "
        f"{speedup:.2f}x (identical results)"
    )


def bench_macro_flood() -> None:
    """Record the city-scale flood row: the engine's new top end."""
    num_nodes = _env_int("REPRO_MACRO_NODES", 2000)
    config = macro_flood_config(
        num_nodes=num_nodes, duration_s=4.0, warmup_s=0.5,
        members_per_group=10, rate_pps=2.0,
    )
    start = time.perf_counter()
    result = run_protocol("odmrp", config)
    wall = time.perf_counter() - start
    assert result.error is None, result.error
    queries = result.counters.get("channel.tx.join_query", 0.0)
    assert queries > 0, "flood produced no JOIN QUERY transmissions"
    _write_report("macro_flood", {
        "num_nodes": num_nodes,
        "area_side_m": round(config.area_width_m, 1),
        "duration_s": config.duration_s,
        "protocol": "odmrp",
        "wall_s": round(wall, 3),
        "sim_seconds_per_wall_second": round(config.duration_s / wall, 3)
        if wall > 0 else None,
        "join_query_tx": queries,
        "phy_backend": "auto",
    })
    print(
        f"\nmacro flood: {num_nodes} nodes, {config.duration_s:.0f} sim-s "
        f"in {wall:.1f}s wall ({queries:.0f} JOIN QUERY tx)"
    )


def bench_mobility_flood() -> None:
    """Record the moving-mesh row: 500 nodes under random-waypoint.

    Times the same flood workload as the macro row, but with every node
    in motion -- each mobility tick pays the incremental topology
    pipeline (O(1) grid re-buckets, one pruned audibility re-derivation,
    vectorized fading-state migration), so this row tracks the cost of
    dynamics on top of raw event churn.
    """
    from repro.mobility.config import MobilitySpec

    num_nodes = _env_int("REPRO_MOBILITY_NODES", 500)
    config = dataclasses.replace(
        macro_flood_config(
            num_nodes=num_nodes, duration_s=6.0, warmup_s=0.5,
            members_per_group=10, rate_pps=2.0,
        ),
        mobility=MobilitySpec(
            model="random-waypoint",
            update_interval_s=1.0,
            speed_min_mps=1.0,
            speed_max_mps=20.0,
        ),
    )
    start = time.perf_counter()
    result = run_protocol("odmrp", config)
    wall = time.perf_counter() - start
    assert result.error is None, result.error
    moves = result.counters.get("mobility.moves", 0.0)
    assert moves > 0, "mobility flood produced no moves"
    _write_report("mobility_flood", {
        "num_nodes": num_nodes,
        "area_side_m": round(config.area_width_m, 1),
        "duration_s": config.duration_s,
        "protocol": "odmrp",
        "mobility_model": "random-waypoint",
        "update_interval_s": config.mobility.update_interval_s,
        "wall_s": round(wall, 3),
        "sim_seconds_per_wall_second": round(config.duration_s / wall, 3)
        if wall > 0 else None,
        "position_updates": moves,
        "distance_travelled_m": round(
            result.counters.get("mobility.distance_m", 0.0), 1
        ),
        "phy_backend": "auto",
    })
    print(
        f"\nmobility flood: {num_nodes} nodes moving, "
        f"{config.duration_s:.0f} sim-s in {wall:.1f}s wall "
        f"({moves:.0f} position updates)"
    )


if __name__ == "__main__":
    import sys

    bench_engine_micro()
    bench_sweep_parallel_vs_serial()
    bench_distributed_drain()
    bench_phy_backends()
    bench_macro_flood()
    bench_mobility_flood()
    print(f"wrote {os.path.normpath(BENCH_PATH)}")
    sys.exit(0)
