"""Quickstart: high-throughput multicast metrics in five minutes.

Builds a small random mesh, runs original ODMRP and ODMRP_SPP over the
identical topology and workload, and prints the throughput gain -- the
paper's headline result in miniature.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.experiments.runner import run_protocol
from repro.experiments.scenarios import SimulationScenarioConfig


def main() -> None:
    # A reduced version of the paper's Section 4.1 setup (50 nodes /
    # 400 s there; 20 nodes / 90 s here so this runs in seconds).
    config = SimulationScenarioConfig(
        num_nodes=24,
        area_width_m=800.0,
        area_height_m=800.0,
        num_groups=1,
        members_per_group=5,
        duration_s=90.0,
        warmup_s=25.0,
        topology_seed=11,
    )

    print("Running original ODMRP (min-hop, first JOIN QUERY wins) ...")
    baseline = run_protocol("odmrp", config)
    print("Running ODMRP_SPP (success-probability-product metric) ...")
    enhanced = run_protocol("spp", config)

    gain = enhanced.throughput_bps / baseline.throughput_bps - 1.0
    rows = [
        (
            result.protocol,
            f"{result.packet_delivery_ratio:.3f}",
            f"{result.throughput_bps / 1000:.1f}",
            f"{(result.mean_delay_s or 0) * 1000:.2f}",
        )
        for result in (baseline, enhanced)
    ]
    print()
    print(render_table(
        ("protocol", "delivery ratio", "throughput (kbps)", "mean delay (ms)"),
        rows,
    ))
    print(f"\nODMRP_SPP delivers {gain:+.1%} throughput versus ODMRP.")
    print(
        "The paper reports about +18% at full scale (50 nodes, 400 s, "
        "10 topologies); run benchmarks/bench_fig2_throughput_sim.py for "
        "the full comparison."
    )


if __name__ == "__main__":
    main()
