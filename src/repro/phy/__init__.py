"""Physical-layer models: path loss, fading, radio parameters, reception.

The simulation study in the paper uses GloMoSim's TwoRay propagation model
with Rayleigh fading, a 250 m nominal radio range, and a 2 Mbps channel.
This package reproduces that stack:

* :mod:`repro.phy.propagation` -- deterministic path-loss models.
* :mod:`repro.phy.fading` -- per-packet multiplicative power fading.
* :mod:`repro.phy.radio` -- radio parameter sets and dBm/mW conversions.
* :mod:`repro.phy.reception` -- SINR bookkeeping and reception decisions.
"""

from repro.phy.fading import FadingModel, NoFading, RayleighFading, RicianFading
from repro.phy.propagation import (
    FreeSpacePropagation,
    LogDistancePropagation,
    PropagationModel,
    TwoRayGroundPropagation,
)
from repro.phy.radio import (
    RadioParams,
    calibrate_rx_threshold_dbm,
    dbm_to_mw,
    mw_to_dbm,
)
from repro.phy.reception import Reception, ReceptionModel

__all__ = [
    "PropagationModel",
    "FreeSpacePropagation",
    "TwoRayGroundPropagation",
    "LogDistancePropagation",
    "FadingModel",
    "NoFading",
    "RayleighFading",
    "RicianFading",
    "RadioParams",
    "dbm_to_mw",
    "mw_to_dbm",
    "calibrate_rx_threshold_dbm",
    "Reception",
    "ReceptionModel",
]
