"""WCETT and its multicast adaptation.

WCETT (Weighted Cumulative ETT; Draves, Padhye, Zill -- MobiCom 2004)
scores a path of hops with per-hop ETTs and channels as::

    WCETT(p) = (1 - beta) * sum_i ETT_i  +  beta * max_j X_j

where ``X_j`` is the summed ETT of the hops on channel ``j``.  The first
term is total airtime; the second is the busiest channel's share -- the
path's intra-flow interference bottleneck.  ``beta`` trades them off.

The multicast adaptation (MC-WCETT) follows Section 2 of the paper:
per-hop ETTs are *forward-only* (broadcast data is unacknowledged, so
the reverse direction must not contribute), exactly as the paper's ETT
adaptation does for the single-channel case.  Structurally the
difference from unicast WCETT is in how the per-hop ETT is measured, not
in the combination rule, so both share the same path algebra here.

Unlike the five single-channel metrics, WCETT cannot be folded
hop-by-hop into one scalar (the ``max_j`` needs per-channel sums), so
these are *path-level* functions over explicit hop lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.metrics import EttMetric, register_metric


@dataclass(frozen=True)
class HopEtt:
    """One hop of a multi-channel path."""

    ett_s: float
    channel: int

    def __post_init__(self) -> None:
        if self.ett_s < 0:
            raise ValueError(f"ETT must be non-negative, got {self.ett_s}")
        if self.channel < 0:
            raise ValueError(f"channel must be non-negative, got {self.channel}")


def path_ett_sum(hops: Sequence[HopEtt]) -> float:
    """Plain (channel-blind) ETT path cost: the paper's single-channel ETT."""
    return sum(hop.ett_s for hop in hops)


def per_channel_airtime(hops: Sequence[HopEtt]) -> Dict[int, float]:
    """``X_j``: summed ETT per channel along the path."""
    totals: Dict[int, float] = {}
    for hop in hops:
        totals[hop.channel] = totals.get(hop.channel, 0.0) + hop.ett_s
    return totals


def bottleneck_channel_airtime(hops: Sequence[HopEtt]) -> float:
    """``max_j X_j``: the intra-flow interference bottleneck."""
    if not hops:
        return 0.0
    return max(per_channel_airtime(hops).values())


def wcett(hops: Sequence[HopEtt], beta: float = 0.5) -> float:
    """Unicast WCETT path cost (lower is better)."""
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must be in [0, 1], got {beta}")
    return (1.0 - beta) * path_ett_sum(hops) + beta * bottleneck_channel_airtime(
        hops
    )


def mc_wcett(
    hops: Sequence[HopEtt],
    beta: float = 0.5,
) -> float:
    """Multicast WCETT: identical combination over forward-only hop ETTs.

    Callers must supply hop ETTs measured the multicast way --
    ``(S / B) / df`` with *forward* delivery ratio only (see
    :class:`repro.core.metrics.EttMetric`).  The function is provided
    separately from :func:`wcett` so call sites document which
    measurement convention their ETTs follow.
    """
    return wcett(hops, beta)


@register_metric
class WcettSingleChannelMetric(EttMetric):
    """WCETT folded into the single-channel simulator's path algebra.

    On one channel every hop shares the channel, so the bottleneck term
    equals the total airtime: ``max_j X_j == sum_i ETT_i``, and

        WCETT = (1 - beta) * sum ETT + beta * sum ETT = sum ETT

    for *any* beta -- WCETT degenerates exactly to forward-only ETT.
    That degeneration is what makes the metric expressible as a
    hop-by-hop accumulated scalar (which ODMRP's JOIN QUERY requires);
    the full multi-channel form needs per-channel sums and lives in the
    path-level functions above (:func:`mc_wcett`,
    :func:`bottleneck_channel_airtime`).

    Registered as ``"wcett"`` so the protocol registry can offer the
    multi-channel future-work entry through the same sweep pipeline as
    the paper's six variants; ``beta`` is carried for forward
    compatibility and reporting but, per the identity above, cannot
    affect single-channel path choices.
    """

    name = "wcett"

    def __init__(
        self,
        packet_size_bytes: int = 512,
        default_bandwidth_bps: float = 2_000_000.0,
        beta: float = 0.5,
    ) -> None:
        super().__init__(
            packet_size_bytes=packet_size_bytes,
            default_bandwidth_bps=default_bandwidth_bps,
        )
        if not 0.0 <= beta <= 1.0:
            raise ValueError(f"beta must be in [0, 1], got {beta}")
        self.beta = beta
