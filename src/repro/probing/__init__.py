"""Link-quality measurement by periodic probing.

All metrics in the paper are driven by receiver-side measurements of
periodic broadcast probes (Section 2.2):

* ETX / METX / SPP use a single small broadcast probe every 5 s; the
  receiver estimates the forward delivery ratio ``df`` over a sliding
  window (:mod:`repro.probing.broadcast_probe`).
* PP / ETT use a back-to-back packet pair every 10 s; the receiver keeps
  an EWMA of the pair inter-arrival (90 % history / 10 % new) with a 20 %
  penalty whenever either packet of a pair is lost, plus a bandwidth
  estimate for ETT (:mod:`repro.probing.packet_pair`).

Each node's measurements live in its NEIGHBOR_TABLE
(:mod:`repro.probing.neighbor_table`), which ODMRP consults for the cost
of the link a JOIN QUERY arrived on.  :mod:`repro.probing.manager` wires
probers to nodes and applies the probing-rate multipliers used by the
overhead-sensitivity experiments.
"""

from repro.probing.broadcast_probe import BroadcastProbeAgent, LossRatioEstimator
from repro.probing.manager import ProbingConfig, ProbingManager, prober_kind_for_metric
from repro.probing.neighbor_table import NeighborTable
from repro.probing.packet_pair import PacketPairAgent, PacketPairEstimator

__all__ = [
    "NeighborTable",
    "LossRatioEstimator",
    "BroadcastProbeAgent",
    "PacketPairEstimator",
    "PacketPairAgent",
    "ProbingConfig",
    "ProbingManager",
    "prober_kind_for_metric",
]
