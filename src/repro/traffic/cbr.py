"""Constant-bit-rate multicast source (512 B @ 20 pkt/s in the paper)."""

from __future__ import annotations

from typing import Optional

from repro.odmrp.protocol import OdmrpRouter
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority
from repro.sim.process import PeriodicTask


class CbrSource:
    """Feeds fixed-size packets into a router at a fixed rate.

    ``start(at)`` also marks the router as a source for the group (which
    begins JOIN QUERY refreshes), so FG state is forming while the first
    data packets flow -- as in ODMRP, where data transmission and route
    refresh are concurrent.
    """

    def __init__(
        self,
        sim: Simulator,
        router: OdmrpRouter,
        group_id: int,
        rate_pps: float = 20.0,
        packet_size_bytes: int = 512,
    ) -> None:
        if rate_pps <= 0:
            raise ValueError(f"rate must be positive, got {rate_pps}")
        if packet_size_bytes <= 0:
            raise ValueError("packet size must be positive")
        self.sim = sim
        self.router = router
        self.group_id = group_id
        self.rate_pps = rate_pps
        self.packet_size_bytes = packet_size_bytes
        self.packets_sent = 0
        # 2% timing jitter: keeps the long-run rate constant while letting
        # the relative phase of concurrent sources drift, as real traffic
        # generators do.  Without it, two sources that happen to start
        # within one frame airtime of each other stay collision-locked at
        # every shared neighbor for the whole run.
        self._task = PeriodicTask(
            sim,
            1.0 / rate_pps,
            self._send_one,
            jitter=0.02,
            rng=sim.rng.stream(f"cbr.jitter.{router.node.node_id}"),
            priority=EventPriority.APPLICATION,
        )
        self._stop_handle = None

    def start(self, at: float, stop_at: Optional[float] = None) -> None:
        """Begin sourcing at absolute time ``at`` (>= now)."""
        delay = at - self.sim.now
        if delay < 0:
            raise ValueError(f"cannot start in the past (at={at})")
        self.sim.schedule(delay, self._begin, priority=EventPriority.APPLICATION)
        if stop_at is not None:
            if stop_at <= at:
                raise ValueError("stop time must follow start time")
            self._stop_handle = self.sim.schedule(
                stop_at - self.sim.now, self.stop,
                priority=EventPriority.APPLICATION,
            )

    def stop(self) -> None:
        self._task.stop()

    def _begin(self) -> None:
        self.router.start_source(self.group_id)
        # Random phase within one inter-packet gap: real sources are not
        # phase-locked, and two synchronized hidden-terminal sources
        # would otherwise collide at every shared neighbor on every
        # single packet.
        rng = self.sim.rng.stream(f"cbr.phase.{self.router.node.node_id}")
        phase = rng.uniform(0.5, 1.5) / self.rate_pps
        self._task.start(initial_delay=phase)

    def _send_one(self) -> None:
        self.router.send_data(self.group_id, self.packet_size_bytes)
        self.packets_sent += 1
