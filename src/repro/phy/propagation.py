"""Deterministic path-loss models.

All models compute mean received power in milliwatts given transmit power
and a link distance; fading (the random part) is layered on top by
:mod:`repro.phy.fading`.  The TwoRayGround model follows the standard
GloMoSim / ns-2 formulation: free-space up to the crossover distance, then
the fourth-power ground-reflection law.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional

SPEED_OF_LIGHT = 299_792_458.0  # m/s

#: Relative slack applied to analytically inverted ranges.  The inverse
#: formulas are exact up to rounding; widening the radius by one part in
#: a million guarantees the returned bound is a *superset* test -- any
#: link whose mean power clears the cutoff lies within it -- while the
#: per-pair power check stays the single source of truth.
_RANGE_SAFETY = 1.0 + 1e-6


class PropagationModel(ABC):
    """Mean-power path loss as a function of distance."""

    @abstractmethod
    def rx_power_mw(
        self,
        tx_power_mw: float,
        distance_m: float,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
    ) -> float:
        """Mean received power in mW over a link of the given length."""

    def rx_power_mw_between(
        self,
        tx_power_mw: float,
        tx_position,
        rx_position,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
    ) -> float:
        """Mean received power between two endpoint positions.

        The base model is isotropic, so this reduces to the distance-only
        form through the exact ``Position.distance_to`` hypot the channel
        has always used -- bit-identical to the historical path.  Models
        that care about geometry beyond distance (obstacle shadowing)
        override this; the distance-only :meth:`rx_power_mw` remains the
        obstacle-free envelope used for radio calibration and range
        bounds.
        """
        return self.rx_power_mw(
            tx_power_mw, tx_position.distance_to(rx_position),
            tx_gain, rx_gain,
        )

    def gain(self, distance_m: float) -> float:
        """Channel power gain (rx power / tx power) with unit antennas."""
        return self.rx_power_mw(1.0, distance_m)

    def max_range_for_power(
        self,
        tx_power_mw: float,
        min_power_mw: float,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
    ) -> Optional[float]:
        """Upper bound on the distance at which mean power >= cutoff.

        The spatial grid index uses this to restrict audibility scans to
        nearby cells: every receiver whose mean power reaches
        ``min_power_mw`` is guaranteed to lie within the returned radius
        (slightly over-estimated on purpose; exact audibility is always
        re-decided per pair by :meth:`rx_power_mw`).  Returns ``None``
        when the model cannot bound the range analytically -- callers
        must then fall back to the brute-force O(N^2) scan.
        """
        return None


class FreeSpacePropagation(PropagationModel):
    """Friis free-space model: ``Pr = Pt Gt Gr (lambda / 4 pi d)^2``."""

    def __init__(self, frequency_hz: float = 2.4e9) -> None:
        if frequency_hz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_hz}")
        self.frequency_hz = frequency_hz
        self.wavelength_m = SPEED_OF_LIGHT / frequency_hz

    def rx_power_mw(
        self,
        tx_power_mw: float,
        distance_m: float,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
    ) -> float:
        if distance_m <= 0:
            return tx_power_mw * tx_gain * rx_gain
        factor = self.wavelength_m / (4.0 * math.pi * distance_m)
        return tx_power_mw * tx_gain * rx_gain * factor * factor

    def max_range_for_power(
        self,
        tx_power_mw: float,
        min_power_mw: float,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
    ) -> Optional[float]:
        budget = tx_power_mw * tx_gain * rx_gain
        if budget <= 0.0 or min_power_mw <= 0.0:
            return None
        distance = (self.wavelength_m / (4.0 * math.pi)) * math.sqrt(
            budget / min_power_mw
        )
        return distance * _RANGE_SAFETY


class TwoRayGroundPropagation(PropagationModel):
    """Two-ray ground-reflection model (GloMoSim's ``TWO-RAY``).

    Below the crossover distance ``dc = 4 pi ht hr / lambda`` the model
    reduces to free space; beyond it the direct and ground-reflected rays
    interfere destructively and power falls off as ``d^-4``:

        ``Pr = Pt Gt Gr ht^2 hr^2 / d^4``
    """

    def __init__(
        self,
        frequency_hz: float = 2.4e9,
        tx_antenna_height_m: float = 1.5,
        rx_antenna_height_m: float = 1.5,
    ) -> None:
        if tx_antenna_height_m <= 0 or rx_antenna_height_m <= 0:
            raise ValueError("antenna heights must be positive")
        self.frequency_hz = frequency_hz
        self.tx_antenna_height_m = tx_antenna_height_m
        self.rx_antenna_height_m = rx_antenna_height_m
        self._free_space = FreeSpacePropagation(frequency_hz)
        self.crossover_distance_m = (
            4.0
            * math.pi
            * tx_antenna_height_m
            * rx_antenna_height_m
            / self._free_space.wavelength_m
        )

    def rx_power_mw(
        self,
        tx_power_mw: float,
        distance_m: float,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
    ) -> float:
        if distance_m < self.crossover_distance_m:
            return self._free_space.rx_power_mw(
                tx_power_mw, distance_m, tx_gain, rx_gain
            )
        ht2 = self.tx_antenna_height_m * self.tx_antenna_height_m
        hr2 = self.rx_antenna_height_m * self.rx_antenna_height_m
        d2 = distance_m * distance_m
        return tx_power_mw * tx_gain * rx_gain * ht2 * hr2 / (d2 * d2)

    def max_range_for_power(
        self,
        tx_power_mw: float,
        min_power_mw: float,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
    ) -> Optional[float]:
        free_space = self._free_space.max_range_for_power(
            tx_power_mw, min_power_mw, tx_gain, rx_gain
        )
        if free_space is None:
            return None
        budget = tx_power_mw * tx_gain * rx_gain
        ht2 = self.tx_antenna_height_m * self.tx_antenna_height_m
        hr2 = self.rx_antenna_height_m * self.rx_antenna_height_m
        ground = (budget * ht2 * hr2 / min_power_mw) ** 0.25 * _RANGE_SAFETY
        # Whichever branch reaches farther bounds the model: below the
        # crossover the free-space inverse applies, above it the d^-4 one.
        return max(free_space, ground)


class LogDistancePropagation(PropagationModel):
    """Log-distance model: free space to ``d0``, exponent ``n`` beyond.

    Used by the testbed emulation, where office walls make the effective
    exponent larger than free space.
    """

    def __init__(
        self,
        frequency_hz: float = 2.4e9,
        reference_distance_m: float = 1.0,
        path_loss_exponent: float = 3.0,
    ) -> None:
        if reference_distance_m <= 0:
            raise ValueError("reference distance must be positive")
        if path_loss_exponent < 2.0:
            raise ValueError("path-loss exponent below free space (2.0)")
        self.reference_distance_m = reference_distance_m
        self.path_loss_exponent = path_loss_exponent
        self._free_space = FreeSpacePropagation(frequency_hz)

    def rx_power_mw(
        self,
        tx_power_mw: float,
        distance_m: float,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
    ) -> float:
        d0 = self.reference_distance_m
        reference_power = self._free_space.rx_power_mw(
            tx_power_mw, d0, tx_gain, rx_gain
        )
        if distance_m <= d0:
            return self._free_space.rx_power_mw(
                tx_power_mw, distance_m, tx_gain, rx_gain
            )
        return reference_power * (d0 / distance_m) ** self.path_loss_exponent

    def max_range_for_power(
        self,
        tx_power_mw: float,
        min_power_mw: float,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
    ) -> Optional[float]:
        if min_power_mw <= 0.0:
            return None
        d0 = self.reference_distance_m
        reference_power = self._free_space.rx_power_mw(
            tx_power_mw, d0, tx_gain, rx_gain
        )
        if reference_power <= 0.0:
            return None
        if reference_power <= min_power_mw:
            # Cutoff reached inside the free-space region (d <= d0).
            free_space = self._free_space.max_range_for_power(
                tx_power_mw, min_power_mw, tx_gain, rx_gain
            )
            return None if free_space is None else min(free_space, d0)
        ratio = reference_power / min_power_mw
        return d0 * ratio ** (1.0 / self.path_loss_exponent) * _RANGE_SAFETY
