"""Versioned JSONL trace export and the round-trip reader.

Artifact layout -- one JSON object per line:

1. a ``manifest`` record (always first; carries ``format`` so readers
   can reject incompatible files before parsing anything else),
2. zero or more ``event`` records (the structured trace log, in
   recording order) followed by one ``events_summary`` record carrying
   the recorder's bound and drop count,
3. one record per instrument (``counter`` / ``gauge`` / ``series`` /
   ``histogram``), in name order.

The reader inverts the writer exactly: ``read_trace(write_trace(...))``
reproduces the same manifest, instruments, and event log, which is the
lossless round-trip property ``tests/test_telemetry.py`` pins.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.trace import TraceEntry
from repro.telemetry.hub import TelemetryHub
from repro.telemetry.instruments import INSTRUMENT_TYPES, Instrument
from repro.telemetry.manifest import RunManifest

#: Bump on any change to the line-record shapes below.
TRACE_FORMAT_VERSION = 1


class TraceFormatError(ValueError):
    """Raised when a file is not a readable telemetry trace."""


@dataclass
class TelemetryTrace:
    """One exported run: manifest + event log + instruments."""

    manifest: RunManifest
    instruments: List[Instrument] = field(default_factory=list)
    events: List[TraceEntry] = field(default_factory=list)
    events_dropped: int = 0

    def instrument(self, name: str) -> Optional[Instrument]:
        for instrument in self.instruments:
            if instrument.name == name:
                return instrument
        return None

    @property
    def label(self) -> str:
        return f"{self.manifest.protocol}/seed={self.manifest.seed}"


def trace_filename(manifest: RunManifest) -> str:
    """Canonical artifact name: protocol, seed, and config hash prefix."""
    return (
        f"{manifest.protocol}-seed{manifest.seed}"
        f"-{manifest.config_hash[:12]}.jsonl"
    )


def write_trace(path: str, hub: TelemetryHub, manifest: RunManifest) -> str:
    """Write one run's telemetry to ``path`` (atomically); returns path."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    manifest_record = manifest.to_record()
    manifest_record["format"] = TRACE_FORMAT_VERSION
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(manifest_record, sort_keys=True) + "\n")
        for entry in hub.recorder.entries:
            handle.write(json.dumps(
                {"type": "event", "time": entry.time, "tag": entry.tag,
                 "data": entry.data},
                sort_keys=True,
            ) + "\n")
        handle.write(json.dumps(
            {"type": "events_summary",
             "recorded": len(hub.recorder.entries),
             "dropped": hub.recorder.dropped,
             "max_entries": hub.recorder.max_entries},
            sort_keys=True,
        ) + "\n")
        for instrument in hub.instruments():
            handle.write(
                json.dumps(instrument.to_record(), sort_keys=True) + "\n"
            )
    os.replace(tmp, path)
    return path


def read_trace(path: str) -> TelemetryTrace:
    """Load one JSONL artifact back into Python objects."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise TraceFormatError(f"{path}: empty trace file")
    head = json.loads(lines[0])
    if head.get("type") != "manifest":
        raise TraceFormatError(
            f"{path}: first record is {head.get('type')!r}, not a manifest"
        )
    fmt = head.get("format")
    if fmt != TRACE_FORMAT_VERSION:
        raise TraceFormatError(
            f"{path}: trace format {fmt!r} not supported "
            f"(reader speaks {TRACE_FORMAT_VERSION})"
        )
    trace = TelemetryTrace(manifest=RunManifest.from_record(head))
    for number, line in enumerate(lines[1:], start=2):
        record = json.loads(line)
        kind = record.get("type")
        if kind == "event":
            trace.events.append(TraceEntry(
                record["time"], record["tag"], record.get("data", {})
            ))
        elif kind == "events_summary":
            trace.events_dropped = int(record.get("dropped", 0))
        elif kind in INSTRUMENT_TYPES:
            trace.instruments.append(
                INSTRUMENT_TYPES[kind].from_record(record)
            )
        else:
            raise TraceFormatError(
                f"{path}:{number}: unknown record type {kind!r}"
            )
    return trace
