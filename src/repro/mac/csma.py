"""CSMA/CA medium access with 802.11 broadcast/unicast semantics.

Model summary (one level above bit-accurate, matching the abstraction the
paper's GloMoSim study runs at):

* Carrier sense + DIFS + uniform random backoff before every transmission.
* If the medium turns busy during backoff, the attempt defers and redraws
  its backoff when the medium next goes idle.  (Real 802.11 freezes and
  resumes the counter; redrawing is a standard simulator simplification
  that preserves contention behaviour at these loads.)
* Broadcast frames: a single attempt, no RTS/CTS, no ACK -- the property
  the paper's multicast metrics are designed around.
* Unicast frames: receiver returns an ACK one SIFS after the data frame;
  the sender retries with binary-exponential backoff up to the retry
  limit.  Unicast exists so tests can demonstrate the unicast/broadcast
  reliability asymmetry; the multicast protocols use broadcast only.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional

from repro.mac.frames import (
    ACK_FRAME_BYTES,
    FrameTimings,
    ack_airtime_s,
    frame_airtime_s,
)
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Simulator
from repro.sim.events import EventHandle, EventPriority

BROADCAST_ID = -1


@dataclass
class MacConfig:
    """MAC tuning knobs."""

    timings: FrameTimings = field(default_factory=FrameTimings)
    queue_limit: int = 100
    ack_timeout_slack_s: float = 50e-6


@dataclass
class _OutgoingFrame:
    packet: Packet
    dest_id: int
    on_done: Optional[Callable[[bool], Any]]
    retries: int = 0
    cw: int = 0


@dataclass
class AckPayload:
    """Payload of a link-layer ACK: which data packet it acknowledges."""

    acked_uid: int
    acked_sender: int


class CsmaMac:
    """One node's MAC entity.  Attach to a node before use."""

    def __init__(self, sim: Simulator, config: Optional[MacConfig] = None) -> None:
        self.sim = sim
        self.config = config or MacConfig()
        self.node: Any = None  # set by Node.attach_mac
        self._queue: Deque[_OutgoingFrame] = deque()
        self._current: Optional[_OutgoingFrame] = None
        self._backoff_handle: Optional[EventHandle] = None
        self._ack_timer: Optional[EventHandle] = None
        self._deferring = False
        self._rng = sim.rng.stream("mac.backoff")
        # Statistics
        self.frames_sent = 0
        self.frames_dropped_queue = 0
        self.frames_dropped_retry = 0
        self.retransmissions = 0
        self.backoffs = 0

    # ------------------------------------------------------------------
    # Upper-layer interface

    def enqueue(
        self,
        packet: Packet,
        dest_id: int = BROADCAST_ID,
        on_done: Optional[Callable[[bool], Any]] = None,
    ) -> bool:
        """Queue a frame for transmission.

        ``on_done(success)`` fires when the frame leaves the MAC: for
        broadcast, success means it was put on the air; for unicast, that
        an ACK arrived within the retry limit.
        Returns False (and drops) when the queue is full.
        """
        if len(self._queue) >= self.config.queue_limit:
            self.frames_dropped_queue += 1
            if on_done is not None:
                on_done(False)
            return False
        cw = self.config.timings.cw_min
        self._queue.append(_OutgoingFrame(packet, dest_id, on_done, cw=cw))
        self._maybe_start()
        return True

    @property
    def queue_length(self) -> int:
        backlog = len(self._queue)
        return backlog + (1 if self._current is not None else 0)

    def telemetry_snapshot(self) -> Dict[str, float]:
        """Cumulative MAC statistics for the telemetry sampler.

        Pull-based: the sampler calls this between simulation chunks, so
        the transmit path pays nothing for observability.
        """
        return {
            "frames_sent": self.frames_sent,
            "frames_dropped_queue": self.frames_dropped_queue,
            "frames_dropped_retry": self.frames_dropped_retry,
            "retransmissions": self.retransmissions,
            "backoffs": self.backoffs,
            "queue_length": self.queue_length,
        }

    # ------------------------------------------------------------------
    # Channel notifications (via the owning node)

    def on_medium_state(self, busy: bool) -> None:
        """Called by the node whenever its carrier-sense state flips."""
        if busy:
            if self._backoff_handle is not None:
                self._backoff_handle.cancel()
                self._backoff_handle = None
                self._deferring = True
        elif self._deferring:
            self._deferring = False
            self._contend()

    def on_tx_complete(self) -> None:
        """Called by the channel when this node's transmission ends."""
        frame = self._current
        if frame is None:
            return
        self.frames_sent += 1
        if frame.dest_id == BROADCAST_ID:
            self._finish(True)
            return
        # Unicast: wait for the ACK.
        timeout = (
            self.config.timings.sifs_s
            + ack_airtime_s(self.node.params.data_rate_bps,
                            self.node.params.preamble_duration_s)
            + self.config.ack_timeout_slack_s
        )
        self._ack_timer = self.sim.schedule(
            timeout, self._on_ack_timeout, priority=EventPriority.MAC
        )

    def on_ack(self, acked_uid: int) -> None:
        """ACK arrived for the outstanding unicast frame."""
        frame = self._current
        if frame is None or frame.packet.uid != acked_uid:
            return
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        self._finish(True)

    def handle_received_data(self, packet: Packet, sender_id: int, dest_id: int) -> None:
        """Receiver-side unicast: schedule the ACK one SIFS later.

        ACKs bypass CSMA contention, per 802.11 (SIFS < DIFS guarantees
        the ACK wins the medium).
        """
        if dest_id != self.node.node_id or packet.kind == PacketKind.ACK:
            return
        ack = Packet(
            kind=PacketKind.ACK,
            origin=self.node.node_id,
            size_bytes=ACK_FRAME_BYTES,
            created_at=self.sim.now,
            payload=AckPayload(acked_uid=packet.uid, acked_sender=sender_id),
        )
        self.sim.schedule(
            self.config.timings.sifs_s,
            self._send_immediate,
            ack,
            sender_id,
            priority=EventPriority.MAC,
        )

    # ------------------------------------------------------------------
    # Internal state machine

    def _maybe_start(self) -> None:
        if self._current is not None or not self._queue:
            return
        self._current = self._queue.popleft()
        self._contend()

    def _contend(self) -> None:
        if self._current is None:
            return
        if self.node.medium_busy:
            self._deferring = True
            return
        timings = self.config.timings
        slots = self._rng.randrange(self._current.cw)
        self.backoffs += 1
        delay = timings.difs_s + slots * timings.slot_time_s
        self._backoff_handle = self.sim.schedule(
            delay, self._backoff_done, priority=EventPriority.MAC
        )

    def _backoff_done(self) -> None:
        self._backoff_handle = None
        if self._current is None:
            return
        if self.node.medium_busy:
            self._deferring = True
            return
        frame = self._current
        airtime = frame_airtime_s(
            frame.packet.size_bytes,
            self.node.params.data_rate_bps,
            self.node.params.preamble_duration_s,
        )
        self.node.channel.begin_transmission(
            self.node, frame.packet, frame.dest_id, airtime
        )

    def _send_immediate(self, packet: Packet, dest_id: int) -> None:
        """Put a control frame on the air without contention (ACK path)."""
        airtime = ack_airtime_s(
            self.node.params.data_rate_bps, self.node.params.preamble_duration_s
        )
        self.node.channel.begin_transmission(self.node, packet, dest_id, airtime,
                                             notify_sender=False)

    def _on_ack_timeout(self) -> None:
        self._ack_timer = None
        frame = self._current
        if frame is None:
            return
        frame.retries += 1
        if frame.retries > self.config.timings.retry_limit:
            self.frames_dropped_retry += 1
            self._finish(False)
            return
        self.retransmissions += 1
        frame.cw = min(frame.cw * 2, self.config.timings.cw_max)
        self._contend()

    def _finish(self, success: bool) -> None:
        frame = self._current
        self._current = None
        if frame is not None and frame.on_done is not None:
            frame.on_done(success)
        self._maybe_start()
