"""Tests for the resilient sweep executor.

The contract under test: every run is supervised in its own worker
process with a wall-clock timeout; transient failures (timeouts, worker
crashes, OOM) retry with backoff while deterministic failures
quarantine immediately; every finished run lands in a durable journal
that ``resume`` replays; and a SIGINT drains the sweep without
orphaning workers or corrupting the journal.

Most tests use tiny *fake* workers (the ``worker=`` hook) so the
supervision machinery is exercised in milliseconds; the end-to-end
chaos suite against real simulations lives in ``test_chaos.py``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.experiments.parallel import RunSpec
from repro.experiments.report import render_report
from repro.experiments.resilience import (
    ATTEMPT_ENV,
    FailureKind,
    JournalRecord,
    ResilienceConfig,
    RetryPolicy,
    SweepJournal,
    classify_failure,
    execute_runs_resilient,
)
from repro.experiments.results import RunResult, aggregate_runs
from repro.experiments.scenarios import SimulationScenarioConfig

CFG = SimulationScenarioConfig(
    num_nodes=4, duration_s=1.0, warmup_s=0.1, topology_seed=1
)

#: Fast supervision knobs: sub-second timeout, near-instant backoff.
FAST = ResilienceConfig(
    run_timeout_s=0.6,
    retry=RetryPolicy(max_retries=1, backoff_base_s=0.01,
                      backoff_max_s=0.05),
    kill_grace_s=0.5,
    poll_interval_s=0.02,
)


def _quick_result(spec: RunSpec, delivered: int = 5) -> RunResult:
    return RunResult(
        protocol=spec.protocol.lower(), topology_seed=spec.seed,
        duration_s=1.0, offered_packets=10, expected_deliveries=10,
        delivered_packets=delivered, delivered_bytes=delivered * 512,
        mean_delay_s=0.01, probe_bytes=1.0,
    )


def _attempt() -> int:
    return int(os.environ.get(ATTEMPT_ENV, "0"))


# -- fake workers (module-level: must survive the process boundary) ----


def ok_worker(spec):
    return _quick_result(spec), 0.01


def hang_worker(spec):
    time.sleep(60.0)
    return _quick_result(spec), 60.0


def flaky_hang_worker(spec):
    if _attempt() == 0:
        time.sleep(60.0)
    return _quick_result(spec), 0.01


def flaky_crash_worker(spec):
    if _attempt() == 0:
        os.kill(os.getpid(), signal.SIGABRT)
    return _quick_result(spec), 0.01


def sigkill_worker(spec):
    os.kill(os.getpid(), signal.SIGKILL)


def flaky_memory_worker(spec):
    if _attempt() == 0:
        raise MemoryError("transient allocation failure")
    return _quick_result(spec), 0.01


def value_error_worker(spec):
    raise ValueError("deterministic model bug")


def invariant_worker(spec):
    from repro.validation.invariants import InvariantViolation

    raise InvariantViolation("channel-conservation", "ledger drifted",
                             time=1.0, protocol=spec.protocol,
                             seed=spec.seed)


def never_worker(spec):
    raise AssertionError("this spec should have replayed, not re-run")


def _specs(n: int = 1, protocol: str = "odmrp"):
    return [RunSpec(protocol, CFG, seed) for seed in range(1, n + 1)]


def _run(specs, worker, journal, resilience=FAST, **kwargs):
    return execute_runs_resilient(
        specs, jobs=kwargs.pop("jobs", 1), resilience=resilience,
        journal_path=journal, worker=worker, **kwargs,
    )


class TestFailureClassification:
    """Satellite: one classification assertion per FailureKind."""

    def test_timeout_prefix(self):
        kind = classify_failure("TIMEOUT: run exceeded the 5.0s budget")
        assert kind is FailureKind.TIMEOUT

    def test_worker_crash_prefix_and_legacy_pool_text(self):
        assert classify_failure(
            "WORKER_CRASH: worker process exited with code -6"
        ) is FailureKind.WORKER_CRASH
        legacy = (
            "Traceback ...\nBrokenProcessPool: A process in the "
            "process pool was terminated abruptly"
        )
        assert classify_failure(legacy) is FailureKind.WORKER_CRASH

    def test_oom_from_prefix_and_from_traceback(self):
        assert classify_failure("OOM: worker killed by SIGKILL") \
            is FailureKind.OOM
        trace = "Traceback ...\nMemoryError: allocation failed"
        assert classify_failure(trace) is FailureKind.OOM

    def test_invariant_from_traceback(self):
        trace = (
            "Traceback ...\nrepro.validation.invariants."
            "InvariantViolation: [channel-conservation] ledger drifted"
        )
        assert classify_failure(trace) is FailureKind.INVARIANT

    def test_exception_is_the_fallback(self):
        trace = "Traceback ...\nValueError: bad metric"
        assert classify_failure(trace) is FailureKind.EXCEPTION

    def test_success_is_none(self):
        assert classify_failure(None) is None
        assert classify_failure("") is None


class TestRetryPolicy:
    """Satellite: retry/no-retry policy per FailureKind."""

    @pytest.mark.parametrize("kind, retries", [
        (FailureKind.TIMEOUT, True),
        (FailureKind.WORKER_CRASH, True),
        (FailureKind.OOM, True),
        (FailureKind.INVARIANT, False),
        (FailureKind.EXCEPTION, False),
    ])
    def test_transient_kinds_retry_deterministic_kinds_do_not(
        self, kind, retries
    ):
        policy = RetryPolicy(max_retries=3)
        assert policy.should_retry(kind, attempt=0) is retries

    def test_budget_is_bounded(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.should_retry(FailureKind.TIMEOUT, attempt=1)
        assert not policy.should_retry(FailureKind.TIMEOUT, attempt=2)

    def test_backoff_grows_is_capped_and_is_deterministic(self):
        policy = RetryPolicy(backoff_base_s=0.5, backoff_max_s=4.0,
                             jitter_fraction=0.25)
        waits = [policy.backoff_s("key", attempt) for attempt in range(6)]
        assert waits == [policy.backoff_s("key", a) for a in range(6)]
        assert waits[0] >= 0.5
        assert all(wait <= 4.0 * 1.25 for wait in waits)
        assert waits[2] > waits[0]
        # Jitter depends on the key, so herds of retries spread out.
        assert policy.backoff_s("key", 0) != policy.backoff_s("other", 0)


class TestSupervisedFailures:
    def test_timeout_is_killed_and_quarantined(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        no_retry = ResilienceConfig(
            run_timeout_s=0.3,
            retry=RetryPolicy(max_retries=0),
            kill_grace_s=0.3, poll_interval_s=0.02,
        )
        start = time.monotonic()
        [outcome] = _run(_specs(), hang_worker, journal,
                         resilience=no_retry)
        assert time.monotonic() - start < 10.0  # killed, not waited out
        assert outcome.failure_kind is FailureKind.TIMEOUT
        assert outcome.attempts == 1
        assert outcome.result.error.startswith("TIMEOUT")

    def test_timeout_retries_to_success(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        [outcome] = _run(_specs(), flaky_hang_worker, journal)
        assert outcome.result.error is None
        assert outcome.attempts == 2
        assert outcome.result == _quick_result(outcome.spec)

    def test_worker_crash_retries_to_success(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        [outcome] = _run(_specs(), flaky_crash_worker, journal)
        assert outcome.result.error is None
        assert outcome.attempts == 2

    def test_sigkill_classifies_as_oom_and_exhausts(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        [outcome] = _run(_specs(), sigkill_worker, journal)
        assert outcome.failure_kind is FailureKind.OOM
        assert outcome.attempts == 2  # retried once, then quarantined
        assert outcome.result.error.startswith("OOM")

    def test_memory_error_is_oom_and_retryable(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        [outcome] = _run(_specs(), flaky_memory_worker, journal)
        assert outcome.result.error is None
        assert outcome.attempts == 2

    def test_plain_exception_is_not_retried(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        [outcome] = _run(_specs(), value_error_worker, journal)
        assert outcome.failure_kind is FailureKind.EXCEPTION
        assert outcome.attempts == 1
        assert "deterministic model bug" in outcome.result.error

    def test_invariant_violation_is_not_retried(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        [outcome] = _run(_specs(), invariant_worker, journal)
        assert outcome.failure_kind is FailureKind.INVARIANT
        assert outcome.attempts == 1

    def test_quarantined_run_does_not_block_the_rest(self, tmp_path):
        """Graceful degradation: the sweep completes around a failure."""
        specs = [RunSpec("odmrp", CFG, 1), RunSpec("spp", CFG, 1),
                 RunSpec("etx", CFG, 1)]
        mixed = execute_runs_resilient(
            specs, jobs=2, resilience=FAST,
            journal_path=str(tmp_path / "mixed.jsonl"),
            worker=ok_if_not_spp_worker,
        )
        assert [o.result.error is None for o in mixed] == [
            True, False, True
        ]
        assert mixed[1].failure_kind is FailureKind.EXCEPTION


def ok_if_not_spp_worker(spec):
    if spec.protocol == "spp":
        raise ValueError("spp is cursed today")
    return _quick_result(spec), 0.01


class TestTaxonomySurfacesInAggregatesAndReport:
    """Satellite: AggregateResult.failed_runs/failure_kinds + the
    report's data-quality note reflect each FailureKind."""

    @pytest.mark.parametrize("kind", list(FailureKind))
    def test_kind_lands_in_aggregate_and_report(self, kind):
        good = _quick_result(RunSpec("odmrp", CFG, 1))
        bad = _quick_result(RunSpec("odmrp", CFG, 2), delivered=0)
        bad.delivered_bytes = 0
        bad.error = f"{kind.name}: synthesized failure for the test"
        aggregates = aggregate_runs([good, bad])
        agg = aggregates["odmrp"]
        assert agg.failed_runs == 1
        assert agg.failure_kinds == {kind.value: 1}
        report = render_report([good, bad], title="taxonomy")
        assert "Data-quality note" in report
        assert "quarantined" in report
        assert f"1 {kind.value}" in report

    def test_all_runs_failed_still_renders_the_hole(self):
        bad = _quick_result(RunSpec("odmrp", CFG, 1), delivered=0)
        bad.delivered_bytes = 0
        bad.error = "TIMEOUT: everything is on fire"
        ok = _quick_result(RunSpec("spp", CFG, 1))
        report = render_report([bad, ok], title="degraded")
        assert "1 timeout" in report
        aggregates = aggregate_runs([bad, ok])
        assert aggregates["odmrp"].runs == 0
        assert aggregates["odmrp"].failure_kinds == {"timeout": 1}


class TestJournal:
    def test_round_trip_last_record_wins(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        spec = RunSpec("odmrp", CFG, 1)
        failed = _quick_result(spec, delivered=0)
        failed.delivered_bytes = 0
        failed.error = "TIMEOUT: first try"
        with SweepJournal(path) as journal:
            journal.record(spec, failed, attempts=1, elapsed_s=0.5,
                           failure_kind=FailureKind.TIMEOUT)
            journal.record(spec, _quick_result(spec), attempts=2,
                           elapsed_s=0.7)
        records = SweepJournal.replay(path)
        assert len(records) == 1
        record = records[spec.cache_key()]
        assert record.ok and record.attempts == 2
        assert record.to_run_result() == _quick_result(spec)

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        spec = RunSpec("odmrp", CFG, 1)
        with SweepJournal(path) as journal:
            journal.record(spec, _quick_result(spec), attempts=1,
                           elapsed_s=0.1)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "key": "abc", "trunc')
        records = SweepJournal.replay(path)
        assert list(records) == [spec.cache_key()]

    def test_unknown_schema_records_are_ignored(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"schema": 999, "key": "x"}) + "\n")
        assert SweepJournal.replay(path) == {}

    def test_missing_journal_is_empty(self, tmp_path):
        assert SweepJournal.replay(str(tmp_path / "nope.jsonl")) == {}

    def test_journal_record_schema_drift_returns_none(self):
        record = JournalRecord(
            key="k", protocol="odmrp", seed=1, status="ok", attempts=1,
            elapsed_s=0.1, failure_kind=None,
            result={"not_a_runresult_field": 1},
        )
        assert record.to_run_result() is None


class TestJournalCompaction:
    def _failed(self, spec):
        result = _quick_result(spec, delivered=0)
        result.delivered_bytes = 0
        result.error = "TIMEOUT: first try"
        return result

    def test_compact_keeps_only_surviving_records(self, tmp_path):
        """Regression: a journal with retries plus a torn trailing line
        compacts to exactly the surviving record per key."""
        path = str(tmp_path / "journal.jsonl")
        specs = _specs(2)
        with SweepJournal(path) as journal:
            journal.record(specs[0], self._failed(specs[0]), attempts=1,
                           elapsed_s=0.5,
                           failure_kind=FailureKind.TIMEOUT)
            journal.record(specs[0], _quick_result(specs[0]),
                           attempts=2, elapsed_s=0.7)
            journal.record(specs[1], _quick_result(specs[1]),
                           attempts=1, elapsed_s=0.3)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "key": "abc", "trunc')
        before = SweepJournal.replay(path)
        dropped = SweepJournal.compact(path)
        assert dropped == 2  # the superseded attempt + the torn line
        with open(path, "rb") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 2
        # Replay semantics are unchanged, byte-for-byte.
        assert SweepJournal.replay(path) == before
        assert SweepJournal.replay(path)[specs[0].cache_key()].attempts \
            == 2

    def test_compact_with_nothing_to_drop_leaves_the_file_alone(
        self, tmp_path
    ):
        path = str(tmp_path / "journal.jsonl")
        [spec] = _specs(1)
        with SweepJournal(path) as journal:
            journal.record(spec, _quick_result(spec), attempts=1,
                           elapsed_s=0.1)
        with open(path, "rb") as handle:
            before = handle.read()
        assert SweepJournal.compact(path) == 0
        with open(path, "rb") as handle:
            assert handle.read() == before

    def test_compact_missing_journal_is_a_noop(self, tmp_path):
        assert SweepJournal.compact(str(tmp_path / "nope.jsonl")) == 0

    def _preseed_superseded(self, journal, spec):
        """A failed earlier attempt that a fresh record will shadow."""
        with SweepJournal(journal) as handle:
            handle.record(spec, self._failed(spec), attempts=1,
                          elapsed_s=0.5,
                          failure_kind=FailureKind.TIMEOUT)

    def test_clean_completion_autocompacts(self, tmp_path):
        """On clean completion the executor compacts the journal:
        superseded records (here a pre-seeded failed attempt) are
        dropped, leaving one line per run."""
        journal = str(tmp_path / "journal.jsonl")
        specs = _specs(2)
        self._preseed_superseded(journal, specs[0])
        outcomes = _run(specs, ok_worker, journal)
        assert all(o.result.error is None for o in outcomes)
        with open(journal, "rb") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == len(specs)
        assert SweepJournal.replay(journal)[specs[0].cache_key()].ok

    def test_interrupted_sweep_does_not_compact(self, tmp_path):
        """A drained-on-SIGINT journal keeps its full history; only a
        *completed* sweep compacts."""
        journal = str(tmp_path / "journal.jsonl")
        specs = _specs(3)
        self._preseed_superseded(journal, specs[0])
        completions = {"count": 0}

        def interrupt_after_first(protocol: str, seed: int) -> None:
            completions["count"] += 1
            if completions["count"] == 1:
                os.kill(os.getpid(), signal.SIGINT)

        with pytest.raises(KeyboardInterrupt):
            execute_runs_resilient(
                specs, jobs=1, resilience=FAST, journal_path=journal,
                progress=interrupt_after_first, worker=ok_worker,
            )
        # The superseded pre-seeded line survives the interrupt.
        with open(journal, "rb") as handle:
            lines = [line for line in handle if line.strip()]
        records = SweepJournal.replay(journal)
        assert len(lines) > len(records)


class TestResume:
    def test_resume_replays_completed_and_runs_the_rest(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        specs = _specs(3)
        first = _run(specs[:2], ok_worker, journal, jobs=2)
        assert all(o.result.error is None for o in first)
        resumed = execute_runs_resilient(
            specs, jobs=2, resilience=FAST, journal_path=journal,
            resume=True, worker=ok_worker,
        )
        assert [o.from_journal for o in resumed] == [True, True, False]
        assert [o.result for o in resumed] == [
            _quick_result(spec) for spec in specs
        ]

    def test_resume_never_reexecutes_journaled_runs(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        specs = _specs(2)
        _run(specs, ok_worker, journal, jobs=2)
        resumed = execute_runs_resilient(
            specs, jobs=2, resilience=FAST, journal_path=journal,
            resume=True, worker=never_worker,
        )
        assert all(o.from_journal for o in resumed)

    def test_resume_redispatches_failed_runs(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        specs = _specs(1)
        no_retry = ResilienceConfig(
            run_timeout_s=None, retry=RetryPolicy(max_retries=0),
        )
        [quarantined] = _run(specs, value_error_worker, journal,
                             resilience=no_retry)
        assert quarantined.result.error is not None
        [outcome] = execute_runs_resilient(
            specs, resilience=FAST, journal_path=journal, resume=True,
            worker=ok_worker,
        )
        assert not outcome.from_journal
        assert outcome.result.error is None
        # The journal's last record for the key is now the success.
        record = SweepJournal.replay(journal)[specs[0].cache_key()]
        assert record.ok


class TestSignalDraining:
    def test_sigint_drains_journals_and_raises(self, tmp_path):
        """Satellite: a SIGINT mid-sweep terminates children, leaves a
        consistent journal, and the sweep resumes to the full result."""
        journal = str(tmp_path / "journal.jsonl")
        specs = _specs(4)
        completions = {"count": 0}

        def interrupt_after_first(protocol: str, seed: int) -> None:
            completions["count"] += 1
            if completions["count"] == 1:
                os.kill(os.getpid(), signal.SIGINT)

        with pytest.raises(KeyboardInterrupt):
            execute_runs_resilient(
                specs, jobs=1, resilience=FAST, journal_path=journal,
                progress=interrupt_after_first, worker=ok_worker,
            )
        # No orphaned supervised workers linger.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and any(
            p.is_alive() for p in multiprocessing.active_children()
        ):
            time.sleep(0.05)
        assert not multiprocessing.active_children()
        # The journal replays cleanly and is partial, not torn.
        records = SweepJournal.replay(journal)
        assert 1 <= len(records) < len(specs)
        assert all(record.ok for record in records.values())
        # Resume finishes the sweep with identical results.
        resumed = execute_runs_resilient(
            specs, jobs=2, resilience=FAST, journal_path=journal,
            resume=True, worker=ok_worker,
        )
        assert [o.result for o in resumed] == [
            _quick_result(spec) for spec in specs
        ]
        assert sum(1 for o in resumed if o.from_journal) == len(records)

    def test_signal_handlers_are_restored(self, tmp_path):
        before_int = signal.getsignal(signal.SIGINT)
        before_term = signal.getsignal(signal.SIGTERM)
        _run(_specs(1), ok_worker, str(tmp_path / "journal.jsonl"))
        assert signal.getsignal(signal.SIGINT) is before_int
        assert signal.getsignal(signal.SIGTERM) is before_term


class TestResilientRealRuns:
    """The supervisor must not perturb real simulation results."""

    TINY = SimulationScenarioConfig(
        num_nodes=6, area_width_m=400.0, area_height_m=400.0,
        num_groups=1, members_per_group=3, duration_s=6.0, warmup_s=2.0,
        topology_seed=1,
    )

    def test_supervised_run_matches_plain_executor(self, tmp_path):
        from repro.experiments.parallel import execute_runs

        specs = [RunSpec("odmrp", self.TINY, 1)]
        plain = execute_runs(specs, jobs=1)
        supervised = execute_runs_resilient(
            specs, jobs=1,
            resilience=ResilienceConfig(run_timeout_s=120.0),
            journal_path=str(tmp_path / "journal.jsonl"),
        )
        assert [o.result for o in supervised] == plain
        assert supervised[0].result.error is None

    def test_compare_protocols_routes_through_supervisor(self, tmp_path):
        from repro.experiments.runner import compare_protocols

        plain = compare_protocols(
            self.TINY, protocols=("odmrp",), topology_seeds=(1,)
        )
        resilient = compare_protocols(
            self.TINY, protocols=("odmrp",), topology_seeds=(1,),
            run_timeout_s=120.0, max_retries=1,
            journal_path=str(tmp_path / "journal.jsonl"),
        )
        assert resilient == plain


class TestSpecResilienceKnobs:
    def test_round_trip_preserves_resilience_fields(self):
        from repro.experiments.spec import ExperimentSpec

        spec = ExperimentSpec(
            name="resilient", protocols=("odmrp",), seeds=(1,),
            run_timeout_s=300.0, max_retries=3,
        )
        for text, loader in (
            (spec.to_json(), ExperimentSpec.from_json),
            (spec.to_toml(), ExperimentSpec.from_toml),
        ):
            loaded = loader(text)
            assert loaded.run_timeout_s == 300.0
            assert loaded.max_retries == 3

    def test_unset_knobs_are_omitted_on_write(self):
        from repro.experiments.spec import ExperimentSpec

        data = ExperimentSpec(protocols=("odmrp",)).to_dict()
        assert "run_timeout_s" not in data
        assert "max_retries" not in data

    def test_validate_rejects_bad_knobs(self):
        from repro.experiments.spec import ExperimentSpec, SpecError

        with pytest.raises(SpecError):
            ExperimentSpec(protocols=("odmrp",),
                           run_timeout_s=-1.0).validate()
        with pytest.raises(SpecError):
            ExperimentSpec(protocols=("odmrp",),
                           max_retries=-2).validate()

    def test_describe_mentions_resilience(self):
        from repro.experiments.spec import ExperimentSpec

        text = ExperimentSpec(
            protocols=("odmrp",), run_timeout_s=60.0, max_retries=2
        ).describe()
        assert "resilience:" in text
        assert "run-timeout=60s" in text
