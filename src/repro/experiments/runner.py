"""Run protocol variants across topologies and collect results.

Environment knobs (read by the benchmark suite, not by this module) allow
paper-scale runs; the functions here are pure: everything comes in via the
config object.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterable, List, Optional, Sequence

from repro.experiments.results import RunResult
from repro.experiments.scenarios import (
    PROTOCOL_NAMES,
    SimulationScenario,
    SimulationScenarioConfig,
    build_simulation_scenario,
)

ProgressCallback = Callable[[str, int], None]


def run_protocol(
    protocol_name: str,
    config: Optional[SimulationScenarioConfig] = None,
) -> RunResult:
    """Build, run, and measure one protocol on one topology."""
    scenario = build_simulation_scenario(protocol_name, config)
    scenario.run()
    return collect_result(scenario)


def collect_result(scenario: SimulationScenario) -> RunResult:
    """Extract a :class:`RunResult` from a finished scenario."""
    probe_bytes = (
        scenario.probing.probe_bytes_sent()
        if scenario.probing is not None
        else 0.0
    )
    interesting_prefixes = ("odmrp.", "phy.", "tx.", "channel.")
    counters = {}
    for node in scenario.network.nodes:
        for name, value in node.counters.as_dict().items():
            if name.startswith(interesting_prefixes):
                counters[name] = counters.get(name, 0.0) + value
    for name, value in scenario.network.channel.counters.as_dict().items():
        counters[name] = counters.get(name, 0.0) + value
    sink = scenario.sink
    seed = getattr(
        scenario.config, "topology_seed", None
    )
    if seed is None:
        seed = getattr(scenario.config, "run_seed", 0)
    return RunResult(
        protocol=scenario.protocol_name,
        topology_seed=seed,
        duration_s=scenario.config.duration_s,
        offered_packets=scenario.offered_packets(),
        expected_deliveries=scenario.expected_deliveries(),
        delivered_packets=sink.total_packets,
        delivered_bytes=sink.total_bytes,
        mean_delay_s=sink.mean_delay_s(),
        probe_bytes=probe_bytes,
        counters=counters,
    )


def compare_protocols(
    config: Optional[SimulationScenarioConfig] = None,
    protocols: Sequence[str] = PROTOCOL_NAMES,
    topology_seeds: Iterable[int] = (1,),
    progress: Optional[ProgressCallback] = None,
) -> List[RunResult]:
    """The paper's comparison loop: every protocol on every topology."""
    if config is None:
        config = SimulationScenarioConfig()
    results: List[RunResult] = []
    for seed in topology_seeds:
        seeded = replace(config, topology_seed=seed)
        for protocol in protocols:
            if progress is not None:
                progress(protocol, seed)
            results.append(run_protocol(protocol, seeded))
    return results
