"""Benchmark E4: Figure 2 column "Throughput-high overhead" (probing x5).

Re-runs the simulation comparison with the probing rate multiplied by
five.  The paper reports the throughput gains of every metric dropping
by about 2% because the extra probes interfere with data traffic.
"""

from __future__ import annotations

from repro.analysis.tables import render_comparison
from repro.experiments.figures import (
    PAPER_THROUGHPUT_HIGH_OVERHEAD,
    figure2_throughput_high_overhead,
    figure2_throughput_simulations,
)
from benchmarks.conftest import simulation_config, topology_seeds


def bench_fig2_throughput_high_overhead(benchmark, shared_simulation_sweep):
    result = benchmark.pedantic(
        lambda: figure2_throughput_high_overhead(
            simulation_config(), topology_seeds()
        ),
        iterations=1,
        rounds=1,
    )
    normal = figure2_throughput_simulations(runs=shared_simulation_sweep)
    print()
    print(render_comparison(
        result.measured, PAPER_THROUGHPUT_HIGH_OVERHEAD,
        title="Figure 2 / Throughput-high overhead (probing rate x5)",
    ))
    drops = {
        name: normal.measured[name] - result.measured[name]
        for name in ("ett", "etx", "metx", "pp", "spp")
    }
    print(f"gain drop vs normal probing rate: "
          + ", ".join(f"{k}={v:+.3f}" for k, v in drops.items())
          + "   (paper: about +0.02 each)")
    benchmark.extra_info["normalized_throughput"] = result.measured
    benchmark.extra_info["gain_drop_vs_normal"] = drops
    # The variants must still beat the baseline even with 5x probes.
    for metric in ("etx", "metx", "spp"):
        assert result.measured[metric] > 1.0
    # Extra probing must not *help* on average.
    mean_drop = sum(drops.values()) / len(drops)
    assert mean_drop > -0.05, f"5x probing should not improve throughput ({drops})"
