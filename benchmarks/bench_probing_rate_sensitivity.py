"""Benchmark E8: probing-rate sensitivity (Section 4.2.2).

The paper: 10x lower probing improves gains by ~3%; 5x higher probing
drops them by ~2%; the expensive packet-pair metrics are the most
sensitive.  This bench sweeps {0.1x, 1x, 5x} and prints the gain of each
metric at each rate.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.experiments.figures import probing_rate_sensitivity
from benchmarks.conftest import simulation_config, topology_seeds

PROTOCOLS = ("odmrp", "etx", "pp", "spp")


def bench_probing_rate_sensitivity(benchmark):
    results = benchmark.pedantic(
        lambda: probing_rate_sensitivity(
            simulation_config(),
            seeds=topology_seeds(),
            multipliers=(0.1, 1.0, 5.0),
            protocols=PROTOCOLS,
        ),
        iterations=1,
        rounds=1,
    )
    rows = []
    for multiplier, figure in sorted(results.items()):
        rows.append(
            (f"x{multiplier:g}",)
            + tuple(
                f"{figure.measured[name]:.3f}"
                for name in PROTOCOLS
                if name != "odmrp"
            )
        )
    print()
    print(render_table(
        ("probe rate",) + tuple(p for p in PROTOCOLS if p != "odmrp"),
        rows,
        title=(
            "Probing-rate sensitivity: normalized throughput vs ODMRP "
            "(paper: ~+3% at x0.1, ~-2% at x5)"
        ),
    ))
    benchmark.extra_info["by_multiplier"] = {
        f"{m:g}": fig.measured for m, fig in results.items()
    }
    # Shape: flooding 5x probes must not *improve* throughput on average.
    mean_at = {
        m: sum(
            fig.measured[p] for p in PROTOCOLS if p != "odmrp"
        ) / (len(PROTOCOLS) - 1)
        for m, fig in results.items()
    }
    assert mean_at[5.0] <= mean_at[0.1] + 0.05, mean_at
