"""Adaptive sweeps: sequential seed allocation with CI-driven stopping.

The exhaustive sweep (:func:`~repro.experiments.runner.compare_protocols`)
spends the same seed budget on every protocol -- as many runs on
low-variance SPP as on the noisiest ETX variant.  This module plans the
sweep *sequentially* instead: seeds are executed in small batches per
protocol, the normalized-throughput confidence interval is recomputed
after every batch (Student-t, see :mod:`repro.analysis.stats`), and a
protocol stops drawing seeds as soon as its CI half-width reaches the
spec's target -- or a max-seed cap, whichever comes first.  Variance
decides where the budget goes.

Common random numbers
---------------------
Every run's RNG streams are pinned by its ``(protocol, config, seed)``
triple (the ``rng-isolation`` monitor asserts exactly this), so two
protocols executed on the *same seed* see the identical topology,
fading, and traffic draws.  With ``paired = true`` (the default) all
protocols consume the shared seed pool in the same order, which makes
per-seed differences directly comparable: the topology-to-topology
variance cancels and :func:`~repro.analysis.stats.paired_difference_ci`
yields far tighter protocol deltas than the unpaired Welch interval.
``paired = false`` gives each protocol a disjoint seed range instead
(an honest independent-samples design, mostly useful to measure what
pairing buys).

Execution and replay
--------------------
Batches route through the ordinary executor layer
(:func:`~repro.experiments.executors.create_executor`), one executor
per batch: the plain pool, the resilient supervisor, and the ``dir://``
distributed backend all work unchanged -- under ``dir://`` each batch
is published as an incremental sweep extension into the same shared
directory, and the shared journal accumulates batch after batch because
batch keys never overlap.  After every batch the planner appends an
``adaptive-plan`` record to the sweep journal (when one is in play)
capturing the per-protocol stopping decision; the whole plan is a pure
function of journal-replayable run results, so ``repro run --adaptive
--resume`` replays the identical batch-by-batch plan bit for bit.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import (
    ci_half_width,
    mean,
    paired_difference_ci,
    unpaired_difference_ci,
)
from repro.experiments.results import RunResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (spec -> here)
    from repro.experiments.spec import ExperimentSpec

#: Journal key prefix for per-batch plan records.  Plan records share
#: the run journal (schema 1, unique string keys, so ``compact()``
#: keeps them) but carry none of the run-record fields, so
#: ``SweepJournal.replay()`` skips them and executors never see them.
ADAPTIVE_PLAN_KEY = "adaptive-plan"


@dataclass
class AdaptiveConfig:
    """The ``[adaptive]`` section of an experiment spec.

    ``target_half_width`` is in normalized-throughput units: a protocol
    stops once the Student-t CI half-width of its per-run throughput,
    divided by the baseline protocol's running mean throughput (the
    paper's Figure 2 normalization), drops to the target.
    """

    #: Stop once the normalized-throughput CI half-width reaches this.
    target_half_width: float = 0.05
    #: Seeds executed per protocol per planning round.
    batch_size: int = 2
    #: No protocol may stop on convergence before this many seeds.
    min_seeds: int = 2
    #: Hard per-protocol seed cap (the exhaustive grid this replaces).
    max_seeds: int = 16
    #: Common random numbers: all protocols share one seed pool so
    #: comparisons are paired on identical topologies/fading.
    paired: bool = True
    #: Normalization / pairing baseline protocol; None picks "odmrp"
    #: when the sweep runs it, else the first protocol in registry
    #: order (mirroring report.py).
    baseline: Optional[str] = None

    def validate(self) -> "AdaptiveConfig":
        if not self.target_half_width > 0:
            raise ValueError(
                f"adaptive.target_half_width must be positive, "
                f"got {self.target_half_width!r}"
            )
        for name in ("batch_size", "min_seeds", "max_seeds"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise ValueError(
                    f"adaptive.{name} must be a positive integer, "
                    f"got {value!r}"
                )
        if self.min_seeds > self.max_seeds:
            raise ValueError(
                f"adaptive.min_seeds ({self.min_seeds}) exceeds "
                f"adaptive.max_seeds ({self.max_seeds})"
            )
        return self


@dataclass
class AdaptiveDecision:
    """One protocol's state after one batch: keep sampling or stop."""

    protocol: str
    seeds_spent: int
    ok_runs: int
    mean_throughput_bps: float
    normalized_mean: float
    #: Normalized-units CI half-width (0.0 below two successful runs).
    ci_half_width: float
    stopped: bool
    #: "converged" | "max-seeds" | "zero-throughput" | None (still active).
    reason: Optional[str]


@dataclass
class AdaptiveBatch:
    """One planning round: which seeds ran, and what was decided."""

    index: int
    seeds: Tuple[int, ...]
    protocols: Tuple[str, ...]
    decisions: Tuple[AdaptiveDecision, ...]


@dataclass
class PairedComparison:
    """Baseline-relative protocol delta, paired and unpaired."""

    protocol: str
    pairs: int
    #: CI for mean(protocol - baseline) over common seeds, normalized.
    paired_low: float
    paired_high: float
    #: Welch CI for the same delta treating samples as independent.
    unpaired_low: float
    unpaired_high: float

    @property
    def paired_half_width(self) -> float:
        return 0.5 * (self.paired_high - self.paired_low)

    @property
    def unpaired_half_width(self) -> float:
        return 0.5 * (self.unpaired_high - self.unpaired_low)

    @property
    def gain_pct(self) -> float:
        """How much narrower pairing made the CI (0 when it didn't)."""
        if self.unpaired_half_width <= 0:
            return 0.0
        return 100.0 * (1.0 - self.paired_half_width
                        / self.unpaired_half_width)


@dataclass
class AdaptiveResult:
    """A finished adaptive sweep: the plan plus every run it executed."""

    name: str
    baseline: str
    config: AdaptiveConfig
    seed_pool: Tuple[int, ...]
    batches: List[AdaptiveBatch] = field(default_factory=list)
    runs: List[RunResult] = field(default_factory=list)

    def seeds_spent(self) -> Dict[str, int]:
        spent: Dict[str, int] = {}
        for batch in self.batches:
            for decision in batch.decisions:
                spent[decision.protocol] = decision.seeds_spent
        return spent

    def stop_reasons(self) -> Dict[str, Optional[str]]:
        reasons: Dict[str, Optional[str]] = {}
        for batch in self.batches:
            for decision in batch.decisions:
                reasons[decision.protocol] = decision.reason
        return reasons

    def final_decisions(self) -> Dict[str, AdaptiveDecision]:
        final: Dict[str, AdaptiveDecision] = {}
        for batch in self.batches:
            for decision in batch.decisions:
                final[decision.protocol] = decision
        return final

    @property
    def total_runs(self) -> int:
        return len(self.runs)

    def plan_dict(self) -> Dict[str, object]:
        """The full batch-by-batch plan as JSON-stable primitives.

        This is the golden-regression and determinism-matrix surface:
        two executions of the same spec must produce equal plan dicts,
        whatever the job count, cache state, backend, or resume point.
        """
        return {
            "schema": 1,
            "name": self.name,
            "baseline": self.baseline,
            "target_half_width": self.config.target_half_width,
            "batch_size": self.config.batch_size,
            "min_seeds": self.config.min_seeds,
            "max_seeds": self.config.max_seeds,
            "paired": self.config.paired,
            "seed_pool": list(self.seed_pool),
            "batches": [
                {
                    "batch": batch.index,
                    "seeds": list(batch.seeds),
                    "protocols": list(batch.protocols),
                    "decisions": [asdict(d) for d in batch.decisions],
                }
                for batch in self.batches
            ],
            "seeds_spent": self.seeds_spent(),
            "stop_reasons": self.stop_reasons(),
            "total_runs": self.total_runs,
        }

    # -- paired-CRN comparisons ---------------------------------------

    def _normalized_by_seed(self, protocol: str) -> Dict[int, float]:
        """ok-run normalized throughput keyed by seed-pool position."""
        denominator = self._baseline_mean()
        if denominator <= 0:
            return {}
        positions = {
            seed: position for position, seed in enumerate(self.seed_pool)
        }
        stride = _unpaired_stride(self.seed_pool)
        offset = 0
        if not self.config.paired:
            order = _protocol_order(self.batches)
            offset = order.index(protocol) * stride
        out: Dict[int, float] = {}
        for run in self.runs:
            if run.protocol != protocol or run.error is not None:
                continue
            position = positions.get(run.topology_seed - offset)
            if position is not None:
                out[position] = run.throughput_bps / denominator
        return out

    def _baseline_mean(self) -> float:
        values = [
            run.throughput_bps for run in self.runs
            if run.protocol == self.baseline and run.error is None
        ]
        return mean(values) if values else 0.0

    def paired_comparisons(self) -> List[PairedComparison]:
        """Per-protocol baseline deltas over the common seed prefix.

        Meaningful with ``paired = true`` (common random numbers): the
        paired interval should come out systematically narrower than
        the unpaired one.  With pairing off the "paired" interval is
        computed over position-aligned but independent seeds and the
        narrowing disappears -- which is the point of the comparison.
        """
        base = self._normalized_by_seed(self.baseline)
        comparisons: List[PairedComparison] = []
        for protocol in _protocol_order(self.batches):
            if protocol == self.baseline:
                continue
            mine = self._normalized_by_seed(protocol)
            common = sorted(set(base) & set(mine))
            if not common:
                continue
            a = [mine[position] for position in common]
            b = [base[position] for position in common]
            p_low, p_high = paired_difference_ci(a, b)
            u_low, u_high = unpaired_difference_ci(a, b)
            comparisons.append(PairedComparison(
                protocol=protocol,
                pairs=len(common),
                paired_low=p_low,
                paired_high=p_high,
                unpaired_low=u_low,
                unpaired_high=u_high,
            ))
        return comparisons


# ----------------------------------------------------------------------
# Planning primitives (pure functions; the executor loop sits below)


def build_seed_pool(
    seeds: Sequence[int], max_seeds: int
) -> Tuple[int, ...]:
    """The shared seed pool: the spec's seeds first, then deterministic
    fresh seeds (smallest unused integers above the spec's maximum) up
    to ``max_seeds``.  A spec listing more seeds than the cap keeps the
    first ``max_seeds`` of them.
    """
    pool = list(seeds[:max_seeds])
    used = set(pool)
    candidate = max(pool) + 1 if pool else 1
    while len(pool) < max_seeds:
        while candidate in used:
            candidate += 1
        pool.append(candidate)
        used.add(candidate)
        candidate += 1
    return tuple(pool)


def _unpaired_stride(pool: Sequence[int]) -> int:
    """Seed offset between protocols when pairing is off: larger than
    the pool's span, so per-protocol seed ranges never collide."""
    return max(pool) - min(pool) + 1


def _protocol_order(batches: Sequence[AdaptiveBatch]) -> List[str]:
    order: List[str] = []
    for batch in batches:
        for name in batch.protocols:
            if name not in order:
                order.append(name)
    return order


def default_baseline(protocols: Sequence[str]) -> str:
    """"odmrp" when the sweep runs it, else the first protocol in
    registry order -- the same rule report.py normalizes with."""
    if "odmrp" in protocols:
        return "odmrp"
    from repro.protocols import protocol_names

    ordered = [name for name in protocol_names() if name in protocols]
    return ordered[0] if ordered else protocols[0]


def _decide(
    protocol: str,
    values_bps: Sequence[float],
    seeds_spent: int,
    denominator: float,
    adaptive: AdaptiveConfig,
    pool_exhausted: bool,
) -> AdaptiveDecision:
    """One protocol's post-batch stopping decision.

    ``denominator`` is the baseline's running mean throughput (the
    normalization constant); when the baseline has delivered nothing
    the protocol's own mean stands in, and if that is zero too the
    protocol stops as "zero-throughput" (more seeds cannot tighten an
    interval around nothing).
    """
    n_ok = len(values_bps)
    mean_bps = mean(values_bps) if values_bps else 0.0
    denom = denominator if denominator > 0 else mean_bps
    normalized_mean = mean_bps / denom if denom > 0 else 0.0
    half_width = ci_half_width(values_bps) / denom if (
        denom > 0 and n_ok >= 2
    ) else 0.0
    stopped = False
    reason: Optional[str] = None
    if seeds_spent >= adaptive.min_seeds:
        if denom <= 0:
            stopped, reason = True, "zero-throughput"
        elif n_ok >= 2 and half_width <= adaptive.target_half_width:
            stopped, reason = True, "converged"
    if not stopped and pool_exhausted:
        stopped, reason = True, "max-seeds"
    return AdaptiveDecision(
        protocol=protocol,
        seeds_spent=seeds_spent,
        ok_runs=n_ok,
        mean_throughput_bps=mean_bps,
        normalized_mean=normalized_mean,
        ci_half_width=half_width,
        stopped=stopped,
        reason=reason,
    )


# ----------------------------------------------------------------------
# Journal plumbing


def plan_journal_path(
    spec: "ExperimentSpec",
    cache_dir: Optional[str] = None,
    resume: bool = False,
    journal_path: Optional[str] = None,
) -> Optional[str]:
    """Where this sweep's plan records land, mirroring the executors'
    own journal resolution: the shared ``dir://`` journal, the explicit
    ``journal_path``, or the resilient default -- ``None`` when the
    sweep runs on the plain pool with no journal at all.
    """
    from repro.experiments.executors import DIR_KIND, parse_backend

    backend = parse_backend(spec.backend)
    if backend.kind == DIR_KIND:
        assert backend.root is not None
        return os.path.join(backend.root, "journal.jsonl")
    if journal_path is not None:
        return journal_path
    if resume or spec.run_timeout_s is not None \
            or spec.max_retries is not None:
        from repro.experiments.resilience import SweepJournal

        return SweepJournal.default_path(cache_dir)
    return None


def _plan_key(name: str, batch_index: int) -> str:
    return f"{ADAPTIVE_PLAN_KEY}:{name}:{batch_index:04d}"


def _append_plan_record(
    path: str, name: str, batch: AdaptiveBatch
) -> None:
    from repro.experiments.resilience import (
        JOURNAL_SCHEMA_VERSION,
        SweepJournal,
    )

    SweepJournal.append_record(path, {
        "schema": JOURNAL_SCHEMA_VERSION,
        "key": _plan_key(name, batch.index),
        "kind": ADAPTIVE_PLAN_KEY,
        "name": name,
        "batch": batch.index,
        "seeds": list(batch.seeds),
        "protocols": list(batch.protocols),
        "decisions": [asdict(d) for d in batch.decisions],
    })


def replay_plan(path: str, name: str) -> List[Dict[str, object]]:
    """Read a journal's ``adaptive-plan`` records back, batch order.

    ``SweepJournal.replay`` cannot surface these (they are not run
    records), so this walks the raw JSONL directly with the same
    damage tolerance: torn or alien lines are skipped, the last record
    per batch key wins.
    """
    import json

    from repro.experiments.resilience import JOURNAL_SCHEMA_VERSION

    by_key: Dict[str, Dict[str, object]] = {}
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError:
        return []
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError:
                continue
            if not isinstance(data, dict):
                continue
            if data.get("schema") != JOURNAL_SCHEMA_VERSION:
                continue
            if data.get("kind") != ADAPTIVE_PLAN_KEY:
                continue
            if data.get("name") != name:
                continue
            key = data.get("key")
            if isinstance(key, str):
                by_key[key] = data
    return [by_key[key] for key in sorted(by_key)]


# ----------------------------------------------------------------------
# The sequential executor loop


def run_adaptive_experiment(
    spec: "ExperimentSpec",
    progress=None,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    journal_path: Optional[str] = None,
    workers: Optional[int] = None,
) -> AdaptiveResult:
    """Run ``spec`` under the sequential planner; returns plan + runs.

    Accepts the same execution knobs as
    :func:`~repro.experiments.runner.run_experiment` and routes every
    batch through :func:`~repro.experiments.executors.create_executor`,
    so backend/cache/resilience behavior is identical to an exhaustive
    sweep -- the only difference is *which* (protocol, seed) cells get
    executed.  Because each cell is seed-deterministic and the stopping
    rule is a pure function of cell results, the plan itself is
    deterministic: any jobs count, cache state, backend, or mid-sweep
    ``--resume`` reproduces the identical batch sequence.
    """
    from repro.experiments.executors import create_executor
    from repro.experiments.parallel import RunSpec

    spec.validate()
    adaptive = (spec.adaptive or AdaptiveConfig()).validate()
    pool = build_seed_pool(spec.seeds, adaptive.max_seeds)
    baseline = adaptive.baseline or default_baseline(spec.protocols)
    stride = _unpaired_stride(pool)
    offsets = {
        name: (0 if adaptive.paired else index * stride)
        for index, name in enumerate(spec.protocols)
    }
    plan_path = plan_journal_path(
        spec, cache_dir=cache_dir, resume=resume, journal_path=journal_path
    )

    result = AdaptiveResult(
        name=spec.name, baseline=baseline, config=adaptive, seed_pool=pool,
    )
    throughputs: Dict[str, List[float]] = {p: [] for p in spec.protocols}
    active = list(spec.protocols)
    consumed = 0
    batch_index = 0
    while active and consumed < len(pool):
        batch_seeds = pool[consumed:consumed + adaptive.batch_size]
        batch_protocols = tuple(active)
        specs = [
            RunSpec(
                protocol=protocol,
                config=spec.config,
                seed=seed + offsets[protocol],
            )
            for seed in batch_seeds
            for protocol in batch_protocols
        ]
        executor = create_executor(
            spec.backend,
            jobs=spec.jobs,
            use_cache=spec.use_cache,
            cache_dir=cache_dir,
            run_timeout_s=spec.run_timeout_s,
            max_retries=spec.max_retries,
            resume=resume,
            journal_path=journal_path,
            workers=workers,
        )
        outcomes = executor.execute(specs, progress=progress)
        for outcome in outcomes:
            run = outcome.result
            result.runs.append(run)
            if run.error is None:
                throughputs[outcome.spec.protocol].append(
                    run.throughput_bps
                )
        consumed += len(batch_seeds)

        baseline_values = throughputs[baseline]
        denominator = mean(baseline_values) if baseline_values else 0.0
        decisions = tuple(
            _decide(
                protocol,
                throughputs[protocol],
                seeds_spent=consumed,
                denominator=denominator,
                adaptive=adaptive,
                pool_exhausted=consumed >= len(pool),
            )
            for protocol in batch_protocols
        )
        batch = AdaptiveBatch(
            index=batch_index,
            seeds=tuple(batch_seeds),
            protocols=batch_protocols,
            decisions=decisions,
        )
        result.batches.append(batch)
        if plan_path is not None:
            _append_plan_record(plan_path, spec.name, batch)
        active = [d.protocol for d in decisions if not d.stopped]
        batch_index += 1
    return result
