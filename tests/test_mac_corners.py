"""MAC corner cases: deferral, backoff, and queue interactions."""

from __future__ import annotations

import pytest

from repro.mac.csma import BROADCAST_ID
from repro.mac.frames import frame_airtime_s
from repro.net.packet import Packet, PacketKind
from tests.conftest import link, make_chain_network, make_loss_network


class TestDeferral:
    def test_sender_defers_to_ongoing_transmission(self):
        """A frame queued mid-transmission waits for the medium."""
        network = make_chain_network(3, 100.0)
        received_at = {}

        def on_rx(p, s, pw):
            received_at[s] = network.sim.now

        network.nodes[2].register_handler(PacketKind.DATA, on_rx)
        # Node 0 starts a long frame; node 1 queues its own shortly after.
        long_frame = Packet(PacketKind.DATA, 0, 1400, 0.0)
        network.nodes[0].send_broadcast(long_frame)
        network.sim.schedule(
            0.001,
            lambda: network.nodes[1].send_broadcast(
                Packet(PacketKind.DATA, 1, 200, 0.0)
            ),
        )
        network.run(1.0)
        long_airtime = frame_airtime_s(1400, 2e6)
        assert received_at[1] > long_airtime  # waited the long frame out
        assert sorted(received_at) == [0, 1]

    def test_many_contenders_all_eventually_send(self):
        network = make_chain_network(2, 100.0)
        received = []
        network.nodes[1].register_handler(
            PacketKind.DATA, lambda p, s, pw: received.append(p.payload)
        )
        for i in range(30):
            network.nodes[0].send_broadcast(
                Packet(PacketKind.DATA, 0, 600, 0.0, payload=i)
            )
        network.run(5.0)
        assert received == list(range(30))

    def test_queue_length_reports_backlog(self):
        network = make_chain_network(2, 100.0)
        node = network.nodes[0]
        assert node.mac.queue_length == 0
        for _ in range(4):
            node.send_broadcast(Packet(PacketKind.DATA, 0, 600, 0.0))
        assert node.mac.queue_length == 4
        network.run(2.0)
        assert node.mac.queue_length == 0


class TestOnDoneSemantics:
    def test_broadcast_on_done_fires_in_order(self):
        network = make_chain_network(2, 100.0)
        done = []
        for i in range(3):
            network.nodes[0].send_broadcast(
                Packet(PacketKind.DATA, 0, 100, 0.0),
                on_done=lambda ok, i=i: done.append((i, ok)),
            )
        network.run(1.0)
        assert done == [(0, True), (1, True), (2, True)]

    def test_unicast_on_done_false_only_after_all_retries(self):
        network = make_loss_network(2, {link(0, 1): 1.0})
        outcomes = []
        network.nodes[0].send_unicast(
            Packet(PacketKind.DATA, 0, 100, 0.0), 1,
            on_done=outcomes.append,
        )
        network.run(0.001)
        assert outcomes == []  # still retrying
        network.run(10.0)
        assert outcomes == [False]


class TestAckPath:
    def test_ack_consumes_no_handler_dispatch(self):
        """ACK frames terminate in the MAC; protocols never see them."""
        network = make_chain_network(2, 100.0)
        data_seen = []
        network.nodes[1].register_handler(
            PacketKind.DATA, lambda p, s, pw: data_seen.append(p.uid)
        )
        network.nodes[0].send_unicast(Packet(PacketKind.DATA, 0, 100, 0.0), 1)
        network.run(1.0)
        assert len(data_seen) == 1
        # The sender decoded the ACK at PHY level but no handler ran.
        assert network.nodes[0].counters.get("rx.ack.packets") == 1
        assert network.nodes[0].counters.get("rx.unhandled") == 0

    def test_third_party_ignores_foreign_ack(self):
        network = make_chain_network(3, 100.0)
        network.nodes[1].register_handler(PacketKind.DATA, lambda p, s, pw: None)
        network.nodes[0].send_unicast(Packet(PacketKind.DATA, 0, 100, 0.0), 1)
        network.run(1.0)
        # Node 2 overhears the ACK addressed to node 0 and drops it.
        assert network.nodes[2].mac.frames_sent == 0
        assert network.nodes[0].mac.frames_dropped_retry == 0
