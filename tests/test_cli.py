"""Tests for the command-line interface."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import build_parser, main

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_sim_options_parsed(self):
        args = build_parser().parse_args(
            ["fig2-sim", "--nodes", "20", "--duration", "60",
             "--topologies", "2"]
        )
        assert args.nodes == 20
        assert args.duration == 60.0
        assert args.topologies == 2

    def test_testbed_options_parsed(self):
        args = build_parser().parse_args(
            ["testbed", "--duration", "120", "--runs", "3", "--seed", "7"]
        )
        assert args.duration == 120.0
        assert args.runs == 3
        assert args.seed == 7


class TestAnalyticCommands:
    def test_fig1_prints_paper_values(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "6.000" in out and "5.000" in out
        assert "METX" in out

    def test_fig3_prints_paper_values(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "3.750" in out and "0.512" in out


class TestSimulationCommands:
    def test_fig2_sim_tiny_run(self, capsys):
        code = main([
            "fig2-sim", "--nodes", "14", "--duration", "40",
            "--topologies", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Throughput-simulations" in out
        assert "Delay" in out
        assert "odmrp" in out and "spp" in out

    def test_table1_tiny_run(self, capsys):
        code = main([
            "table1", "--nodes", "14", "--duration", "40",
            "--topologies", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "overhead" in out
        assert "ett" in out and "spp" in out


class TestRunCommand:
    def test_dry_run_with_example_spec(self, capsys):
        code = main([
            "run", "--spec", str(EXAMPLES_DIR / "paper_spec.toml"),
            "--dry-run",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "experiment: paper-baseline" in out
        assert "6 protocols x 10 topologies = 60" in out
        assert "dry run" in out

    def test_dry_run_protocol_override(self, capsys):
        code = main([
            "run", "--spec", str(EXAMPLES_DIR / "maodv_sweep.toml"),
            "--protocols", "maodv,maodv-spp", "--seeds", "4",
            "--dry-run",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 protocols x 1 topologies = 2" in out
        assert "maodv-spp" in out
        assert "MaodvRouter" in out

    def test_typoed_protocol_fails_with_suggestion(self, capsys):
        code = main([
            "run", "--protocols", "sppp", "--dry-run",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "unknown protocol 'sppp'" in err
        assert "did you mean" in err

    def test_missing_spec_file_fails_cleanly(self, capsys):
        code = main(["run", "--spec", "no/such/spec.toml", "--dry-run"])
        assert code == 1
        assert "ERROR" in capsys.readouterr().err

    def test_bad_seeds_rejected(self, capsys):
        code = main(["run", "--seeds", "1,two", "--dry-run"])
        assert code == 1
        assert "--seeds" in capsys.readouterr().err

    def test_run_tiny_spec_end_to_end(self, tmp_path, capsys):
        from repro.experiments.spec import ExperimentSpec
        from repro.experiments.scenarios import SimulationScenarioConfig

        spec = ExperimentSpec(
            name="cli-tiny",
            protocols=("odmrp", "spp"),
            seeds=(1,),
            config=SimulationScenarioConfig(
                num_nodes=8, area_width_m=450.0, area_height_m=450.0,
                num_groups=1, members_per_group=3,
                duration_s=10.0, warmup_s=4.0,
            ),
        )
        spec_path = tmp_path / "tiny.toml"
        report_path = tmp_path / "report.md"
        spec.save(str(spec_path))
        code = main([
            "run", "--spec", str(spec_path),
            "--report", str(report_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "# cli-tiny" in out
        assert report_path.exists()
        assert "Normalized throughput" in report_path.read_text()


class TestWorkerCommand:
    def _publish(self, tmp_path, n_runs: int = 1):
        from repro.experiments.distributed import SweepDir, publish_sweep
        from repro.experiments.parallel import RunSpec
        from repro.experiments.scenarios import SimulationScenarioConfig

        config = SimulationScenarioConfig(
            num_nodes=6, area_width_m=400.0, area_height_m=400.0,
            num_groups=1, members_per_group=3, duration_s=3.0,
            warmup_s=1.0,
        )
        root = str(tmp_path / "shared")
        sweep = SweepDir(root).ensure()
        specs = [
            RunSpec("odmrp", config, seed)
            for seed in range(1, n_runs + 1)
        ]
        publish_sweep(sweep, specs)
        return root, specs

    def test_backend_flag_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])

    def test_local_backend_is_rejected(self, capsys):
        assert main(["worker", "--backend", "local-pool"]) == 1
        assert "only drains dir://" in capsys.readouterr().err

    def test_bad_backend_uri_is_rejected(self, capsys):
        assert main(["worker", "--backend", "ftp://x"]) == 1
        assert "unknown sweep backend" in capsys.readouterr().err

    def test_missing_sweep_times_out_with_error(self, tmp_path, capsys):
        code = main([
            "worker", "--backend", f"dir://{tmp_path}",
            "--wait", "0.2",
        ])
        assert code == 1
        assert "no sweep manifest" in capsys.readouterr().err

    def test_worker_drains_a_published_sweep(self, tmp_path, capsys):
        root, specs = self._publish(tmp_path, n_runs=1)
        code = main([
            "worker", "--backend", f"dir://{root}",
            "--worker-id", "cli-test-worker",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "worker cli-test-worker: 1 completed" in out
        from repro.experiments.resilience import SweepJournal

        records = SweepJournal.replay(
            str(Path(root) / "journal.jsonl")
        )
        assert len(records) == 1
        assert all(r.ok for r in records.values())


class TestRunDirBackend:
    def test_run_and_resume_are_bit_identical(self, tmp_path, capsys):
        from repro.experiments.spec import ExperimentSpec
        from repro.experiments.scenarios import SimulationScenarioConfig

        spec = ExperimentSpec(
            name="cli-dir",
            protocols=("odmrp", "spp"),
            seeds=(1,),
            config=SimulationScenarioConfig(
                num_nodes=6, area_width_m=400.0, area_height_m=400.0,
                num_groups=1, members_per_group=3,
                duration_s=4.0, warmup_s=1.0,
            ),
        )
        spec_path = tmp_path / "dir.toml"
        spec.save(str(spec_path))
        shared = tmp_path / "shared"
        first = tmp_path / "first.md"
        second = tmp_path / "second.md"
        assert main([
            "run", "--spec", str(spec_path),
            "--backend", f"dir://{shared}", "--workers", "2",
            "--report", str(first),
        ]) == 0
        capsys.readouterr()
        # The journal is the completion ledger: --resume replays every
        # run without re-simulating, to the byte-identical report.
        assert main([
            "run", "--spec", str(spec_path),
            "--backend", f"dir://{shared}", "--workers", "2",
            "--resume", "--report", str(second),
        ]) == 0
        assert first.read_text() == second.read_text()


class TestProtocolsCommand:
    def test_lists_registry(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        assert "registered protocols" in out
        for name in ("odmrp", "spp", "maodv-spp", "wcett"):
            assert name in out
        assert "MaodvRouter" in out and "OdmrpRouter" in out


class TestTestbedCommands:
    def test_fig4(self, capsys):
        assert main(["fig4", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "2-5" in out and "lossy" in out

    def test_fig5_short_run(self, capsys):
        code = main(["fig5", "--duration", "90", "--runs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "odmrp" in out and "pp" in out
        assert "lossy-link share" in out

    def test_testbed_short_run(self, capsys):
        code = main(["testbed", "--duration", "60", "--runs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Throughput-testbed" in out
