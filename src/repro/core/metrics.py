"""Link-quality routing metrics for multicast (Section 2 of the paper).

Because multicast data is link-layer *broadcast*, two things change
relative to the unicast versions of these metrics:

1. Only the forward direction of a link matters (no ACKs), so ETX becomes
   ``1 / df`` instead of ``1 / (df * dr)``.
2. There are no retransmissions, so a packet has one shot per link; path
   composition by plain summation under-penalizes a single terrible link.
   SPP composes multiplicatively and METX recursively to capture this.

Every metric exposes the same small interface so ODMRP can carry an opaque
cost in its JOIN QUERY packets:

* ``initial_cost()``  -- path cost of the zero-link path at the source;
* ``link_cost(q)``    -- cost of one link from measured link quality;
* ``combine(path, link)`` -- extend a path cost by one link;
* ``is_better(a, b)`` -- strict "path cost a beats path cost b";
* ``worst_cost()``    -- the identity for ``is_better`` minimization.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Type

INFINITE_COST = float("inf")


@dataclass
class LinkQuality:
    """Measured quality of one directed link (from probing).

    Attributes
    ----------
    forward_delivery_ratio:
        ``df`` -- the probability a broadcast frame from the neighbor is
        received here.  In ``[0, 1]``.
    packet_pair_delay_s:
        EWMA of the packet-pair delay (PP metric), including loss
        penalties; None when the link has no packet-pair history.
    bandwidth_bps:
        Packet-pair bandwidth estimate (ETT metric); None when unmeasured.
    """

    forward_delivery_ratio: float = 0.0
    packet_pair_delay_s: Optional[float] = None
    bandwidth_bps: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.forward_delivery_ratio <= 1.0:
            raise ValueError(
                "forward delivery ratio must be in [0, 1], got "
                f"{self.forward_delivery_ratio}"
            )


class RouteMetric(ABC):
    """Interface shared by all path metrics."""

    #: Short identifier used in result tables ("etx", "spp", ...).
    name: str = ""
    #: True when larger path costs are better (only SPP).
    higher_is_better: bool = False
    #: How ``combine`` composes per-link costs along a path: "additive"
    #: (sum), "multiplicative" (product), or "recursive" (the METX
    #: recursion ``C' = (C + 1) / df``).  Declared so independent code
    #: (property tests, the metric-accumulation invariant monitor) can
    #: recompute a whole-path cost from the per-link costs without
    #: trusting ``combine`` itself.
    composition: str = "additive"

    @abstractmethod
    def initial_cost(self) -> float:
        """Cost of the empty path (at the source itself)."""

    @abstractmethod
    def link_cost(self, quality: LinkQuality) -> float:
        """Cost contribution of a single link."""

    @abstractmethod
    def combine(self, path_cost: float, link_cost: float) -> float:
        """Path cost after appending a link of ``link_cost``."""

    def is_better(self, a: float, b: float) -> bool:
        """True when path cost ``a`` is strictly better than ``b``."""
        if self.higher_is_better:
            return a > b
        return a < b

    def worst_cost(self) -> float:
        """The cost no real path is worse than (for best-so-far seeds)."""
        return -INFINITE_COST if self.higher_is_better else INFINITE_COST

    def is_usable(self, cost: float) -> bool:
        """False for costs that mean "this path cannot deliver at all"."""
        if self.higher_is_better:
            return cost > 0.0
        return math.isfinite(cost)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class HopCountMetric(RouteMetric):
    """Minimum hop count -- what the original protocols use."""

    name = "hopcount"

    def initial_cost(self) -> float:
        return 0.0

    def link_cost(self, quality: LinkQuality) -> float:
        return 1.0

    def combine(self, path_cost: float, link_cost: float) -> float:
        return path_cost + link_cost


class EtxMetric(RouteMetric):
    """Multicast ETX: ``1 / df`` per link, summed over the path.

    The reverse delivery ratio of the unicast original is dropped --
    broadcast frames are not acknowledged, so the reverse direction would
    only distort the metric (Section 2.2).
    """

    name = "etx"

    def initial_cost(self) -> float:
        return 0.0

    def link_cost(self, quality: LinkQuality) -> float:
        df = quality.forward_delivery_ratio
        if df <= 0.0:
            return INFINITE_COST
        return 1.0 / df

    def combine(self, path_cost: float, link_cost: float) -> float:
        return path_cost + link_cost


class EttMetric(RouteMetric):
    """Multicast ETT: ``ETX * S / B`` per link, summed over the path.

    ``S`` is the data packet size and ``B`` the packet-pair bandwidth
    estimate of the link.  Single-channel adaptation of WCETT, per the
    paper.  When a link has no bandwidth estimate yet, the configured
    ``default_bandwidth_bps`` is assumed (the nominal channel rate), so a
    fresh link behaves exactly like ETX scaled by a constant.
    """

    name = "ett"
    #: Tells the protocol registry this metric is parameterized by the
    #: workload's packet size and nominal channel rate.
    uses_packet_airtime = True

    def __init__(
        self,
        packet_size_bytes: int = 512,
        default_bandwidth_bps: float = 2_000_000.0,
    ) -> None:
        if packet_size_bytes <= 0:
            raise ValueError("packet size must be positive")
        if default_bandwidth_bps <= 0:
            raise ValueError("default bandwidth must be positive")
        self.packet_size_bytes = packet_size_bytes
        self.default_bandwidth_bps = default_bandwidth_bps

    def initial_cost(self) -> float:
        return 0.0

    def link_cost(self, quality: LinkQuality) -> float:
        df = quality.forward_delivery_ratio
        if df <= 0.0:
            return INFINITE_COST
        bandwidth = quality.bandwidth_bps or self.default_bandwidth_bps
        transmission_time = self.packet_size_bytes * 8.0 / bandwidth
        return transmission_time / df

    def combine(self, path_cost: float, link_cost: float) -> float:
        return path_cost + link_cost


class PpMetric(RouteMetric):
    """Packet-pair delay, summed over the path.

    The link cost is the EWMA-smoothed packet-pair delay maintained by the
    probing layer (which also applies the 20 % loss penalty).  At high
    loss rates the repeated penalty makes a link's cost grow exponentially
    with time -- the paper's explanation for PP's aggressiveness in
    avoiding lossy links.
    """

    name = "pp"

    def initial_cost(self) -> float:
        return 0.0

    def link_cost(self, quality: LinkQuality) -> float:
        if quality.packet_pair_delay_s is None:
            return INFINITE_COST
        return quality.packet_pair_delay_s

    def combine(self, path_cost: float, link_cost: float) -> float:
        return path_cost + link_cost


class MetxMetric(RouteMetric):
    """Multicast ETX (METX), Equation (2) of the paper.

    ``METX = sum_i 1 / prod_{j>=i} df_j`` -- the expected total number of
    transmissions by *all* nodes on the path so that at least one packet
    survives every link to the receiver, under a link layer with no
    retransmissions.

    The closed form composes hop-by-hop as ``C' = (C + 1) / df`` with
    ``C = 0`` at the source, which is how ODMRP accumulates it in the
    JOIN QUERY.  Note the per-link quantity is the delivery ratio itself,
    not ``1/df``: the recursion needs ``df`` directly.
    """

    name = "metx"
    composition = "recursive"

    def initial_cost(self) -> float:
        return 0.0

    def link_cost(self, quality: LinkQuality) -> float:
        # For METX the "link cost" carried around is df itself; the
        # recursion in combine() turns it into expected transmissions.
        return quality.forward_delivery_ratio

    def combine(self, path_cost: float, link_cost: float) -> float:
        df = link_cost
        if df <= 0.0:
            return INFINITE_COST
        return (path_cost + 1.0) / df


class SppMetric(RouteMetric):
    """Success Probability Product, adapted from Banerjee & Misra [3].

    ``SPP = prod_i df_i`` is the probability that a packet broadcast at
    the source traverses the whole path without loss; ``1/SPP`` is the
    expected number of source transmissions per delivered packet.  Higher
    is better -- the only metric here with that orientation.  One lossy
    link collapses the whole path's value multiplicatively, which is why
    SPP avoids lossy links more aggressively than the additive metrics
    (Figure 3).
    """

    name = "spp"
    higher_is_better = True
    composition = "multiplicative"

    def initial_cost(self) -> float:
        return 1.0

    def link_cost(self, quality: LinkQuality) -> float:
        return quality.forward_delivery_ratio

    def combine(self, path_cost: float, link_cost: float) -> float:
        return path_cost * link_cost


_METRIC_TYPES: Dict[str, Type[RouteMetric]] = {
    cls.name: cls
    for cls in (
        HopCountMetric,
        EtxMetric,
        EttMetric,
        PpMetric,
        MetxMetric,
        SppMetric,
    )
}

#: The five studied metrics, in the paper's presentation order.
ALL_METRIC_NAMES = ("ett", "etx", "metx", "pp", "spp")


def register_metric(metric_type: Type[RouteMetric]) -> Type[RouteMetric]:
    """Register an extension metric under its ``name`` class attribute.

    Usable as a class decorator.  Re-registering the *same* class is a
    no-op (idempotent under re-import); claiming an existing name with a
    different class is an error, so extensions can never silently shadow
    the paper's metrics.
    """
    name = metric_type.name
    if not name:
        raise ValueError(
            f"{metric_type.__name__} must set a non-empty `name` attribute"
        )
    existing = _METRIC_TYPES.get(name)
    if existing is not None and existing is not metric_type:
        raise ValueError(
            f"metric name {name!r} is already taken by {existing.__name__}"
        )
    _METRIC_TYPES[name] = metric_type
    return metric_type


def _unknown_metric_error(name: str) -> ValueError:
    import difflib

    known = sorted(_METRIC_TYPES)
    close = difflib.get_close_matches(name.lower(), known, n=3)
    hint = f" (did you mean {', '.join(repr(c) for c in close)}?)" if close else ""
    return ValueError(
        f"unknown metric {name!r}{hint}; known: {', '.join(known)}"
    )


def metric_type_by_name(name: str) -> Type[RouteMetric]:
    """The metric class behind a table name, without instantiating it."""
    try:
        return _METRIC_TYPES[name.lower()]
    except KeyError:
        raise _unknown_metric_error(name) from None


def metric_by_name(name: str, **kwargs: object) -> RouteMetric:
    """Instantiate a metric from its table name (e.g. ``"spp"``)."""
    return metric_type_by_name(name)(**kwargs)  # type: ignore[arg-type]
