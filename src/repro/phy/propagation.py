"""Deterministic path-loss models.

All models compute mean received power in milliwatts given transmit power
and a link distance; fading (the random part) is layered on top by
:mod:`repro.phy.fading`.  The TwoRayGround model follows the standard
GloMoSim / ns-2 formulation: free-space up to the crossover distance, then
the fourth-power ground-reflection law.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

SPEED_OF_LIGHT = 299_792_458.0  # m/s


class PropagationModel(ABC):
    """Mean-power path loss as a function of distance."""

    @abstractmethod
    def rx_power_mw(
        self,
        tx_power_mw: float,
        distance_m: float,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
    ) -> float:
        """Mean received power in mW over a link of the given length."""

    def gain(self, distance_m: float) -> float:
        """Channel power gain (rx power / tx power) with unit antennas."""
        return self.rx_power_mw(1.0, distance_m)


class FreeSpacePropagation(PropagationModel):
    """Friis free-space model: ``Pr = Pt Gt Gr (lambda / 4 pi d)^2``."""

    def __init__(self, frequency_hz: float = 2.4e9) -> None:
        if frequency_hz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_hz}")
        self.frequency_hz = frequency_hz
        self.wavelength_m = SPEED_OF_LIGHT / frequency_hz

    def rx_power_mw(
        self,
        tx_power_mw: float,
        distance_m: float,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
    ) -> float:
        if distance_m <= 0:
            return tx_power_mw * tx_gain * rx_gain
        factor = self.wavelength_m / (4.0 * math.pi * distance_m)
        return tx_power_mw * tx_gain * rx_gain * factor * factor


class TwoRayGroundPropagation(PropagationModel):
    """Two-ray ground-reflection model (GloMoSim's ``TWO-RAY``).

    Below the crossover distance ``dc = 4 pi ht hr / lambda`` the model
    reduces to free space; beyond it the direct and ground-reflected rays
    interfere destructively and power falls off as ``d^-4``:

        ``Pr = Pt Gt Gr ht^2 hr^2 / d^4``
    """

    def __init__(
        self,
        frequency_hz: float = 2.4e9,
        tx_antenna_height_m: float = 1.5,
        rx_antenna_height_m: float = 1.5,
    ) -> None:
        if tx_antenna_height_m <= 0 or rx_antenna_height_m <= 0:
            raise ValueError("antenna heights must be positive")
        self.frequency_hz = frequency_hz
        self.tx_antenna_height_m = tx_antenna_height_m
        self.rx_antenna_height_m = rx_antenna_height_m
        self._free_space = FreeSpacePropagation(frequency_hz)
        self.crossover_distance_m = (
            4.0
            * math.pi
            * tx_antenna_height_m
            * rx_antenna_height_m
            / self._free_space.wavelength_m
        )

    def rx_power_mw(
        self,
        tx_power_mw: float,
        distance_m: float,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
    ) -> float:
        if distance_m < self.crossover_distance_m:
            return self._free_space.rx_power_mw(
                tx_power_mw, distance_m, tx_gain, rx_gain
            )
        ht2 = self.tx_antenna_height_m * self.tx_antenna_height_m
        hr2 = self.rx_antenna_height_m * self.rx_antenna_height_m
        d2 = distance_m * distance_m
        return tx_power_mw * tx_gain * rx_gain * ht2 * hr2 / (d2 * d2)


class LogDistancePropagation(PropagationModel):
    """Log-distance model: free space to ``d0``, exponent ``n`` beyond.

    Used by the testbed emulation, where office walls make the effective
    exponent larger than free space.
    """

    def __init__(
        self,
        frequency_hz: float = 2.4e9,
        reference_distance_m: float = 1.0,
        path_loss_exponent: float = 3.0,
    ) -> None:
        if reference_distance_m <= 0:
            raise ValueError("reference distance must be positive")
        if path_loss_exponent < 2.0:
            raise ValueError("path-loss exponent below free space (2.0)")
        self.reference_distance_m = reference_distance_m
        self.path_loss_exponent = path_loss_exponent
        self._free_space = FreeSpacePropagation(frequency_hz)

    def rx_power_mw(
        self,
        tx_power_mw: float,
        distance_m: float,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
    ) -> float:
        d0 = self.reference_distance_m
        reference_power = self._free_space.rx_power_mw(
            tx_power_mw, d0, tx_gain, rx_gain
        )
        if distance_m <= d0:
            return self._free_space.rx_power_mw(
                tx_power_mw, distance_m, tx_gain, rx_gain
            )
        return reference_power * (d0 / distance_m) ** self.path_loss_exponent
