"""Regenerate ``golden_adaptive_plan.json``.

Run after an *intentional* change to the adaptive planner's seed
allocation, stopping rule, or plan schema::

    PYTHONPATH=src python tests/data/make_golden_adaptive_plan.py

The spec here must stay in lockstep with ``tiny_spec()`` in
``tests/test_adaptive_sweep.py`` -- the test rebuilds the same sweep
and diffs its ``plan_dict()`` against the file this writes.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parents[2] / "src")
)

from repro.experiments.adaptive import (  # noqa: E402
    AdaptiveConfig,
    run_adaptive_experiment,
)
from repro.experiments.scenarios import (  # noqa: E402
    SimulationScenarioConfig,
)
from repro.experiments.spec import ExperimentSpec  # noqa: E402


def golden_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="golden-adaptive",
        protocols=("odmrp", "spp", "etx"),
        seeds=(1, 2),
        adaptive=AdaptiveConfig(
            target_half_width=0.2, batch_size=2, min_seeds=2, max_seeds=8,
        ),
        config=SimulationScenarioConfig(
            num_nodes=6,
            area_width_m=400.0,
            area_height_m=400.0,
            num_groups=1,
            members_per_group=3,
            duration_s=6.0,
            warmup_s=2.0,
        ),
    )


def main() -> None:
    plan = run_adaptive_experiment(golden_spec())
    path = pathlib.Path(__file__).parent / "golden_adaptive_plan.json"
    path.write_text(
        json.dumps(plan.plan_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {path}")
    print(f"  seeds spent: {plan.seeds_spent()}")
    print(f"  stop reasons: {plan.stop_reasons()}")
    print(f"  total runs: {plan.total_runs}")


if __name__ == "__main__":
    main()
