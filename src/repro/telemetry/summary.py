"""Human-readable rendering of telemetry traces: summarize and diff.

Backs the ``repro telemetry summarize`` / ``repro telemetry diff`` CLI
subcommands.  Both operate purely on the exported artifacts (via
:func:`repro.telemetry.export.read_trace`), never on live runs -- the
point of the subsystem is that a finished sweep can be diagnosed from
its artifacts alone.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.analysis.tables import render_table
from repro.telemetry.export import TelemetryTrace
from repro.telemetry.instruments import Counter, Gauge, Histogram, TimeSeries


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if not math.isfinite(value):
        # inf is a legitimate sample (e.g. ETX of a dead link).
        return f"{value:g}"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def manifest_lines(trace: TelemetryTrace) -> List[str]:
    manifest = trace.manifest
    lines = [
        f"run      : {manifest.protocol} seed={manifest.seed}",
        f"config   : {manifest.config_hash[:16]} "
        f"(repro {manifest.package_version})",
        f"sim time : {manifest.sim_duration_s:g} s "
        f"({manifest.events_executed:,} events, "
        f"{manifest.wall_time_s:.2f} s wall, "
        f"{manifest.events_per_wall_second:,.0f} events/s)",
        f"host     : {manifest.host.get('platform', '?')} / "
        f"python {manifest.host.get('python', '?')}",
        f"events   : {len(trace.events)} recorded, "
        f"{trace.events_dropped} dropped",
    ]
    extra = manifest.extra or {}
    if extra.get("worker_id") or extra.get("backend"):
        # dir:// fleet provenance: which worker produced this trace,
        # against which shared sweep.
        lines.append(
            f"worker   : {extra.get('worker_id', '?')} "
            f"backend={extra.get('backend', 'local-pool')}"
        )
    return lines


def summarize_trace(trace: TelemetryTrace) -> str:
    """One run's manifest plus a per-instrument summary table."""
    rows: List[Tuple[str, str, str, str, str, str]] = []
    for instrument in trace.instruments:
        if isinstance(instrument, Counter):
            rows.append((instrument.name, "counter",
                         _fmt(instrument.value), "-", "-", "-"))
        elif isinstance(instrument, Gauge):
            rows.append((instrument.name, "gauge",
                         _fmt(instrument.value), "-", "-", "-"))
        elif isinstance(instrument, TimeSeries):
            rows.append((
                instrument.name, f"series[{len(instrument)}]",
                _fmt(instrument.last), _fmt(instrument.mean()),
                _fmt(instrument.minimum()), _fmt(instrument.maximum()),
            ))
        elif isinstance(instrument, Histogram):
            rows.append((
                instrument.name, f"histogram[{instrument.count}]",
                "-", _fmt(instrument.mean()),
                _fmt(instrument.min), _fmt(instrument.max),
            ))
    table = render_table(
        ("instrument", "kind", "value/last", "mean", "min", "max"), rows
    )
    return "\n".join(manifest_lines(trace) + ["", table])


def _scalar_of(instrument) -> Optional[float]:
    """The single number an instrument is compared by in a diff."""
    if isinstance(instrument, (Counter, Gauge)):
        return instrument.value
    if isinstance(instrument, TimeSeries):
        return instrument.mean()
    if isinstance(instrument, Histogram):
        return instrument.mean()
    return None


def diff_traces(a: TelemetryTrace, b: TelemetryTrace) -> str:
    """Instrument-by-instrument comparison of two runs.

    Counters and gauges compare final values; series and histograms
    compare means.  Instruments present on only one side are flagged
    rather than dropped -- a vanished series is itself a finding.
    """
    header = [
        f"a: {a.label}  (config {a.manifest.config_hash[:12]})",
        f"b: {b.label}  (config {b.manifest.config_hash[:12]})",
    ]
    if a.manifest.config_hash != b.manifest.config_hash:
        header.append("note: configs differ; expect behavioral deltas")
    by_name_a = {inst.name: inst for inst in a.instruments}
    by_name_b = {inst.name: inst for inst in b.instruments}
    rows = []
    for name in sorted(set(by_name_a) | set(by_name_b)):
        in_a, in_b = by_name_a.get(name), by_name_b.get(name)
        if in_a is None or in_b is None:
            rows.append((name, _fmt(_scalar_of(in_a) if in_a else None),
                         _fmt(_scalar_of(in_b) if in_b else None),
                         "only in b" if in_a is None else "only in a"))
            continue
        value_a, value_b = _scalar_of(in_a), _scalar_of(in_b)
        if value_a is None or value_b is None:
            delta = "-"
        elif not (math.isfinite(value_a) and math.isfinite(value_b)):
            delta = "-"
        elif value_a == 0:
            delta = "-" if value_b == 0 else "new"
        else:
            delta = f"{100.0 * (value_b - value_a) / value_a:+.1f}%"
        rows.append((name, _fmt(value_a), _fmt(value_b), delta))
    table = render_table(("instrument", "a", "b", "delta"), rows)
    return "\n".join(header + ["", table])
