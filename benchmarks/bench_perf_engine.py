"""Performance-trajectory benchmark: engine micro + sweep meso.

Unlike the figure benches (which validate *numbers* against the paper),
this file tracks how fast the simulator itself is, so perf work in later
PRs has a recorded trajectory to compare against.  It measures:

* **engine micro** -- raw event churn through ``Simulator.run()`` with
  trivial callbacks: pure engine overhead, in events/second.
* **sweep meso** -- a fixed-seed multi-protocol sweep executed serially
  and through the parallel runner (``jobs=2``), asserting the two
  produce *bit-identical* ``RunResult`` lists before timing them.

Results land in ``BENCH_perf.json`` at the repo root: events/sec,
wall-clock per run, and the parallel speedup (speedup tracks the host's
core count; on a single-core CI box it is ~1.0 by construction, which is
why the identity assertion, not the speedup, is the correctness gate).

Run via pytest (``pytest benchmarks/bench_perf_engine.py -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_perf_engine.py``).
Scale knobs: ``REPRO_PERF_EVENTS`` (micro events), ``REPRO_PERF_SEEDS``
(meso seeds), ``REPRO_JOBS`` (meso pool size).
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, List

from repro.experiments.parallel import execute_runs, sweep_specs
from repro.experiments.scenarios import (
    PROTOCOL_NAMES,
    SimulationScenarioConfig,
)
from repro.sim.engine import Simulator

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_perf.json")

#: Small but protocol-complete scenario: all six variants finish in
#: seconds per run while still exercising MAC, fading, and probing paths.
MESO_CONFIG = SimulationScenarioConfig(
    num_nodes=16,
    area_width_m=700.0,
    area_height_m=700.0,
    num_groups=1,
    members_per_group=3,
    duration_s=25.0,
    warmup_s=8.0,
)


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def engine_events_per_sec(n_events: int) -> float:
    """Event churn through a self-rescheduling callback chain."""
    sim = Simulator(seed=1)
    remaining = [n_events]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(0.001, tick)

    for i in range(100):
        sim.schedule(0.001 * (i + 1), tick)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    # The 100 seeded chains overshoot slightly (in-flight events drain
    # after the target is hit); rate over what actually executed.
    assert sim.events_executed >= n_events
    return sim.events_executed / elapsed


def _write_report(section: str, payload: Dict) -> None:
    """Merge one section into BENCH_perf.json (sections run independently)."""
    report: Dict = {}
    try:
        with open(BENCH_PATH, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        pass
    report["python"] = platform.python_version()
    report["cpu_count"] = os.cpu_count()
    report[section] = payload
    with open(BENCH_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def bench_engine_micro() -> None:
    """Record serial engine event throughput."""
    n_events = _env_int("REPRO_PERF_EVENTS", 200_000)
    rates = [engine_events_per_sec(n_events) for _ in range(3)]
    best = max(rates)
    _write_report("engine_micro", {
        "events": n_events,
        "events_per_sec_best": round(best),
        "events_per_sec_all": [round(rate) for rate in rates],
    })
    print(f"\nengine micro: {best:,.0f} events/s (best of {len(rates)})")
    assert best > 0


def bench_sweep_parallel_vs_serial() -> None:
    """Time the sweep both ways; identity first, speedup second."""
    seeds = tuple(range(1, _env_int("REPRO_PERF_SEEDS", 2) + 1))
    jobs = _env_int("REPRO_JOBS", 2) or (os.cpu_count() or 1)
    specs = sweep_specs(MESO_CONFIG, PROTOCOL_NAMES, seeds)

    start = time.perf_counter()
    serial = execute_runs(specs, jobs=1, use_cache=False)
    wall_serial = time.perf_counter() - start

    start = time.perf_counter()
    pooled = execute_runs(specs, jobs=jobs, use_cache=False)
    wall_parallel = time.perf_counter() - start

    # The gate: parallel execution must not change a single bit of any
    # result.  Dataclass equality covers every field including counters.
    mismatches: List[str] = [
        f"{spec.protocol}/seed={spec.seed}"
        for spec, a, b in zip(specs, serial, pooled)
        if a != b
    ]
    assert not mismatches, f"parallel results diverged: {mismatches}"
    assert all(run.error is None for run in pooled)

    speedup = wall_serial / wall_parallel if wall_parallel > 0 else 0.0
    _write_report("sweep_meso", {
        "runs": len(specs),
        "protocols": list(PROTOCOL_NAMES),
        "seeds": list(seeds),
        "jobs": jobs,
        "wall_serial_s": round(wall_serial, 3),
        "wall_parallel_s": round(wall_parallel, 3),
        "wall_per_run_serial_s": round(wall_serial / len(specs), 3),
        "speedup_vs_serial": round(speedup, 3),
        "results_identical": True,
    })
    print(
        f"\nsweep meso: {len(specs)} runs, serial {wall_serial:.1f}s, "
        f"jobs={jobs} {wall_parallel:.1f}s, speedup {speedup:.2f}x "
        f"(identical results)"
    )


if __name__ == "__main__":
    import sys

    bench_engine_micro()
    bench_sweep_parallel_vs_serial()
    print(f"wrote {os.path.normpath(BENCH_PATH)}")
    sys.exit(0)
