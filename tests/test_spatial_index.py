"""Spatial grid index: grid queries must equal the brute-force scans.

The grid is a pure pruning structure -- its cell-box query returns a
superset of every disk query, and the exact ``Position.distance_to``
filter decides membership exactly as the O(N^2) paths do.  These tests
pin that equivalence three ways: property tests against random point
sets (Hypothesis), hand-built edge-of-cell boundary regressions, and
channel-level checks that a grid-pruned ``finalize()`` reproduces the
brute-force audibility lists and connectivity map bit-for-bit.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

import repro.net.channel as channel_module
from repro.net.network import Network, NetworkConfig
from repro.net.topology import (
    GRID_AUTO_NODES,
    Position,
    SpatialGridIndex,
    average_degree,
    is_connected,
    neighbors_within,
    random_topology,
)

coords = st.floats(
    min_value=-5000.0, max_value=5000.0,
    allow_nan=False, allow_infinity=False,
)
point_sets = st.lists(
    st.tuples(coords, coords), min_size=1, max_size=40
).map(lambda pts: [Position(x, y) for x, y in pts])


def brute_connected(positions, range_m):
    """Reference BFS over the brute-force neighbor scan."""
    n = len(positions)
    seen = {0}
    frontier = [0]
    while frontier:
        current = frontier.pop()
        for other in neighbors_within(positions, current, range_m):
            if other not in seen:
                seen.add(other)
                frontier.append(other)
    return len(seen) == n


class TestGridMatchesBruteForce:
    @given(
        positions=point_sets,
        range_m=st.floats(min_value=0.0, max_value=2000.0,
                          allow_nan=False),
        cell_scale=st.floats(min_value=0.1, max_value=4.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_neighbors_within_identical(
        self, positions, range_m, cell_scale
    ):
        """Grid neighbors == brute neighbors for every node and any
        cell size (the cell size is a perf knob, never a semantics
        knob)."""
        cell = max(1e-3, range_m * cell_scale) if range_m else 1.0
        grid = SpatialGridIndex(positions, cell_size_m=cell)
        for index in range(len(positions)):
            assert grid.neighbors_within(index, range_m) == (
                neighbors_within(positions, index, range_m)
            )

    @given(
        positions=point_sets,
        range_m=st.floats(min_value=0.0, max_value=2000.0,
                          allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_candidates_are_sorted_supersets(self, positions, range_m):
        grid = SpatialGridIndex(positions, cell_size_m=max(range_m, 1.0))
        for index in range(len(positions)):
            candidates = grid.candidates_within(index, range_m)
            assert candidates == sorted(candidates)
            exact = set(neighbors_within(positions, index, range_m))
            assert exact <= set(candidates)

    @given(
        positions=point_sets,
        range_m=st.floats(min_value=1.0, max_value=1000.0,
                          allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_is_connected_and_degree_unchanged(self, positions, range_m):
        """The size-based grid switch inside is_connected/average_degree
        never changes the answer."""
        assert is_connected(positions, range_m) == brute_connected(
            positions, range_m
        )
        brute_total = sum(
            len(neighbors_within(positions, i, range_m))
            for i in range(len(positions))
        )
        assert average_degree(positions, range_m) == (
            brute_total / len(positions)
        )

    def test_large_mesh_takes_grid_path(self):
        """Above GRID_AUTO_NODES the helpers really use the grid -- and
        still agree with the brute scan."""
        rng = random.Random(7)
        n = GRID_AUTO_NODES + 10
        positions = [
            Position(rng.uniform(0, 2000), rng.uniform(0, 2000))
            for _ in range(n)
        ]
        assert n >= GRID_AUTO_NODES
        assert is_connected(positions, 250.0) == brute_connected(
            positions, 250.0
        )


class TestEdgeOfCellBoundaries:
    """Points exactly on cell borders and ranges exactly at distances."""

    def test_point_on_cell_boundary_is_found(self):
        # 100.0 / 100.0 == 1.0 exactly: the point sits on the border
        # between cells 0 and 1.  A naive half-open bucketing that
        # scans the wrong side would miss it.
        positions = [Position(0.0, 0.0), Position(100.0, 0.0)]
        grid = SpatialGridIndex(positions, cell_size_m=100.0)
        assert grid.neighbors_within(0, 100.0) == [1]
        assert grid.neighbors_within(1, 100.0) == [0]

    def test_range_exactly_equal_to_distance_is_inclusive(self):
        # Both paths use `distance <= range`, so a neighbor at exactly
        # the range must be included by both.
        positions = [Position(0.0, 0.0), Position(3.0, 4.0)]  # dist 5.0
        grid = SpatialGridIndex(positions, cell_size_m=2.0)
        assert grid.neighbors_within(0, 5.0) == [1]
        assert neighbors_within(positions, 0, 5.0) == [1]
        assert grid.neighbors_within(0, math.nextafter(5.0, 0.0)) == []

    def test_query_box_touching_cell_corner(self):
        # Neighbor in the diagonal cell, reachable only if the box
        # includes the corner cell at exactly range distance.
        positions = [Position(99.0, 99.0), Position(101.0, 101.0)]
        grid = SpatialGridIndex(positions, cell_size_m=100.0)
        dist = positions[0].distance_to(positions[1])
        assert grid.neighbors_within(0, dist) == [1]

    def test_rounded_distance_outside_arithmetic_box(self):
        # Regression (found by Hypothesis): the second point's true
        # distance from the first is 1.0 + 5.7e-162, which math.hypot
        # rounds to exactly 1.0 -- the brute filter includes it, yet
        # the point's cell (-1) lies outside the unpadded query box
        # ([0, 2]).  The one-cell pad ring must recover it.
        positions = [
            Position(1.0, 0.0),
            Position(-5.746425122067764e-162, 0.0),
        ]
        assert neighbors_within(positions, 0, 1.0) == [1]
        grid = SpatialGridIndex(positions, cell_size_m=1.0)
        assert grid.neighbors_within(0, 1.0) == [1]

    def test_negative_coordinates(self):
        positions = [Position(-150.0, -150.0), Position(-50.0, -50.0),
                     Position(50.0, 50.0)]
        grid = SpatialGridIndex(positions, cell_size_m=100.0)
        for index in range(len(positions)):
            for range_m in (100.0, 141.5, 200.0, 300.0):
                assert grid.neighbors_within(index, range_m) == (
                    neighbors_within(positions, index, range_m)
                )

    def test_duplicate_positions(self):
        positions = [Position(10.0, 10.0)] * 3 + [Position(20.0, 10.0)]
        grid = SpatialGridIndex(positions, cell_size_m=5.0)
        for index in range(len(positions)):
            assert grid.neighbors_within(index, 15.0) == (
                neighbors_within(positions, index, 15.0)
            )

    def test_zero_range(self):
        positions = [Position(0.0, 0.0), Position(0.0, 0.0),
                     Position(1.0, 0.0)]
        grid = SpatialGridIndex(positions, cell_size_m=10.0)
        # range 0 still matches exact co-located points, as brute does.
        assert grid.neighbors_within(0, 0.0) == (
            neighbors_within(positions, 0, 0.0)
        ) == [1]

    def test_invalid_cell_size_rejected(self):
        with pytest.raises(ValueError):
            SpatialGridIndex([Position(0.0, 0.0)], cell_size_m=0.0)
        with pytest.raises(ValueError):
            SpatialGridIndex([Position(0.0, 0.0)], cell_size_m=math.inf)


class TestMobilityHooks:
    def test_update_position_rebuckets(self):
        positions = [Position(0.0, 0.0), Position(500.0, 500.0),
                     Position(505.0, 505.0)]
        grid = SpatialGridIndex(positions, cell_size_m=100.0)
        assert grid.neighbors_within(0, 50.0) == []
        grid.update_position(1, Position(10.0, 10.0))
        positions[1] = Position(10.0, 10.0)
        for index in range(len(positions)):
            assert grid.neighbors_within(index, 50.0) == (
                neighbors_within(positions, index, 50.0)
            )

    def test_rebuild_matches_fresh_index(self):
        rng = random.Random(3)
        positions = [
            Position(rng.uniform(0, 1000), rng.uniform(0, 1000))
            for _ in range(30)
        ]
        grid = SpatialGridIndex(positions, cell_size_m=120.0)
        moved = [
            Position(rng.uniform(0, 1000), rng.uniform(0, 1000))
            for _ in range(30)
        ]
        grid.rebuild(moved)
        fresh = SpatialGridIndex(moved, cell_size_m=120.0)
        for index in range(len(moved)):
            assert grid.neighbors_within(index, 200.0) == (
                fresh.neighbors_within(index, 200.0)
            )


class TestChannelGridPruning:
    """Grid-pruned finalize() == brute finalize(), bit for bit."""

    def _audible_snapshot(self, network):
        return {
            sender_id: [
                (receiver.node_id, mean_mw, threshold)
                for receiver, mean_mw, threshold in audible
            ]
            for sender_id, audible in network.channel._audible.items()
        }

    @pytest.mark.parametrize("topology_seed", [2, 9])
    def test_audible_lists_and_connectivity_identical(
        self, monkeypatch, topology_seed
    ):
        positions = random_topology(
            40, 1100.0, 1100.0, rng=random.Random(topology_seed),
            connectivity_range_m=250.0,
        )
        config = NetworkConfig(phy_backend="scalar")

        monkeypatch.setattr(channel_module, "GRID_MIN_NODES", 10**9)
        brute = Network(positions, seed=1, config=config)
        monkeypatch.setattr(channel_module, "GRID_MIN_NODES", 2)
        gridded = Network(positions, seed=1, config=config)

        assert self._audible_snapshot(brute) == (
            self._audible_snapshot(gridded)
        )
        assert brute.channel.connectivity_map() == (
            gridded.channel.connectivity_map()
        )
        assert [
            [(n.node_id, p) for n, p in brute.channel.audible_neighbors(i)]
            for i in range(len(positions))
        ] == [
            [(n.node_id, p) for n, p in gridded.channel.audible_neighbors(i)]
            for i in range(len(positions))
        ]
