"""Tests for Network assembly helpers and channel diagnostics."""

from __future__ import annotations

import pytest

from repro.net.network import Network, NetworkConfig
from repro.net.packet import Packet, PacketKind
from repro.net.topology import chain_topology
from repro.phy.fading import CorrelatedRayleighFading, NoFading
from repro.phy.radio import mw_to_dbm
from tests.conftest import make_chain_network


class TestNetworkAssembly:
    def test_radio_calibrated_to_nominal_range(self):
        network = make_chain_network(2, 100.0)
        params = network.radio_params
        at_range = network.channel.propagation.rx_power_mw(
            params.tx_power_mw, network.config.nominal_range_m
        )
        assert mw_to_dbm(at_range) == pytest.approx(
            params.rx_threshold_dbm, abs=1e-6
        )

    def test_custom_radio_params_respected(self):
        from repro.testbed.linkmodel import testbed_radio_params

        params = testbed_radio_params()
        network = Network(
            chain_topology(2, 100.0), radio_params=params
        )
        assert network.radio_params is params
        assert network.nodes[0].params is params

    def test_counter_helpers(self):
        network = make_chain_network(3, 100.0)
        network.nodes[0].send_broadcast(Packet(PacketKind.DATA, 0, 100, 0.0))
        network.nodes[1].send_broadcast(Packet(PacketKind.DATA, 1, 200, 0.0))
        network.run(1.0)
        assert network.total_counter("tx.data.packets") == 2
        assert network.total_counter("tx.data.bytes") == 300
        assert network.total_counter_prefix("tx.data.") == 302  # pkts+bytes

    def test_fading_selection(self):
        default = NetworkConfig()
        assert isinstance(default.build_fading(), CorrelatedRayleighFading)
        iid = NetworkConfig(fading_coherence_time_s=0.0)
        from repro.phy.fading import RayleighFading

        assert isinstance(iid.build_fading(), RayleighFading)
        clean = NetworkConfig(rayleigh_fading=False)
        assert isinstance(clean.build_fading(), NoFading)


class TestCorrelatedFading:
    def test_marginal_mean_is_one(self):
        import random

        model = CorrelatedRayleighFading(coherence_time_s=1.0)
        rng = random.Random(3)
        samples = [
            model.sample_link_gain((0, 1), t * 0.5, rng)
            for t in range(20000)
        ]
        assert sum(samples) / len(samples) == pytest.approx(1.0, abs=0.05)

    def test_short_gaps_are_correlated_long_gaps_are_not(self):
        import random

        model = CorrelatedRayleighFading(coherence_time_s=10.0)
        rng = random.Random(4)
        # Sample pairs separated by 0.1 s (correlated) vs 1000 s (fresh).
        def correlation(gap):
            pairs = []
            t = 0.0
            for _ in range(4000):
                a = model.sample_link_gain(("x", gap), t, rng)
                b = model.sample_link_gain(("x", gap), t + gap, rng)
                pairs.append((a, b))
                t += gap + 1000.0  # decorrelate successive pairs
            mean_a = sum(a for a, _ in pairs) / len(pairs)
            mean_b = sum(b for _, b in pairs) / len(pairs)
            cov = sum((a - mean_a) * (b - mean_b) for a, b in pairs) / len(pairs)
            var = sum((a - mean_a) ** 2 for a, _ in pairs) / len(pairs)
            return cov / var

        assert correlation(0.1) > 0.8
        assert abs(correlation(1000.0)) < 0.15

    def test_independent_links_independent_states(self):
        import random

        model = CorrelatedRayleighFading(coherence_time_s=5.0)
        rng = random.Random(5)
        gain_ab = model.sample_link_gain((0, 1), 0.0, rng)
        gain_ba = model.sample_link_gain((1, 0), 0.0, rng)
        # Directions are distinct processes (they were drawn separately).
        assert gain_ab != gain_ba

    def test_validation(self):
        with pytest.raises(ValueError):
            CorrelatedRayleighFading(coherence_time_s=0.0)


class TestReceptionDiagnostics:
    def test_connectivity_map_symmetric_for_identical_radios(self):
        network = make_chain_network(4, 200.0)
        conn = network.channel.connectivity_map()
        for node, neighbors in conn.items():
            for other in neighbors:
                assert node in conn[other]

    def test_audible_neighbors_superset_of_decodable(self):
        network = make_chain_network(4, 200.0)
        conn = network.channel.connectivity_map()
        for node in network.nodes:
            audible = {
                n.node_id
                for n, _p in network.channel.audible_neighbors(node.node_id)
            }
            assert set(conn[node.node_id]) <= audible
