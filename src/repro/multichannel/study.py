"""Path-selection study for the multi-channel extension.

For sampled random meshes with a channel assignment and per-link
qualities, enumerate candidate source->destination paths and compare the
path chosen by channel-blind ETT against the path chosen by MC-WCETT.
The figure of merit is the *bottleneck-channel airtime* of the chosen
path (lower = less intra-flow interference = higher achievable pipeline
throughput on a multi-radio mesh).

This is the paper's future-work direction made concrete without
rebuilding the PHY for parallel channels: path selection is where the
metric acts, and bottleneck airtime is the standard analytic proxy for
multi-channel path capacity (Draves et al., MobiCom 2004).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.multichannel.assignment import ChannelAssignment
from repro.multichannel.wcett import (
    HopEtt,
    bottleneck_channel_airtime,
    mc_wcett,
    path_ett_sum,
)
from repro.net.topology import Position, random_topology


@dataclass
class MultichannelMesh:
    """A sampled mesh: positions, links, per-link ETT, channel per link."""

    positions: List[Position]
    links: List[FrozenSet[int]]
    ett_by_link: Dict[FrozenSet[int], float]
    assignment: ChannelAssignment

    def hop(self, node_a: int, node_b: int) -> Optional[HopEtt]:
        key = frozenset((node_a, node_b))
        channel = self.assignment.link_channel(node_a, node_b)
        if channel is None or key not in self.ett_by_link:
            return None
        return HopEtt(ett_s=self.ett_by_link[key], channel=channel)

    def path_hops(self, path: Sequence[int]) -> Optional[List[HopEtt]]:
        hops = []
        for a, b in zip(path, path[1:]):
            hop = self.hop(a, b)
            if hop is None:
                return None
            hops.append(hop)
        return hops


def sample_mesh(
    num_nodes: int,
    assignment_factory,
    range_m: float = 250.0,
    area_m: float = 800.0,
    rng: Optional[random.Random] = None,
) -> MultichannelMesh:
    """Draw a connected mesh and attach ETTs and a channel assignment.

    Per-link ETT models the paper's measurement: a base airtime scaled by
    ``1/df`` with df degrading with distance (long links are lossy).
    """
    if rng is None:
        rng = random.Random(0)
    positions = random_topology(
        num_nodes, area_m, area_m, rng=rng, connectivity_range_m=range_m
    )
    links: List[FrozenSet[int]] = []
    ett_by_link: Dict[FrozenSet[int], float] = {}
    base_airtime = 512 * 8 / 2e6  # one data packet at 2 Mbps
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            distance = positions[i].distance_to(positions[j])
            if distance > range_m:
                continue
            key = frozenset((i, j))
            links.append(key)
            # df falls from ~1.0 (short) toward ~0.35 (at max range),
            # with mild randomness for multipath variation.
            df = max(
                0.05,
                min(1.0, 1.05 - 0.7 * (distance / range_m) ** 2
                    + rng.uniform(-0.05, 0.05)),
            )
            ett_by_link[key] = base_airtime / df
    node_ids = list(range(num_nodes))
    assignment = assignment_factory(node_ids, links, rng)
    return MultichannelMesh(
        positions=list(positions),
        links=links,
        ett_by_link=ett_by_link,
        assignment=assignment,
    )


@dataclass
class PathChoice:
    """The two metrics' choices for one source/destination pair."""

    ett_path: Tuple[int, ...]
    wcett_path: Tuple[int, ...]
    ett_bottleneck_s: float
    wcett_bottleneck_s: float
    ett_total_s: float
    wcett_total_s: float

    @property
    def wcett_improved_bottleneck(self) -> bool:
        return self.wcett_bottleneck_s < self.ett_bottleneck_s - 1e-12


@dataclass
class MultichannelStudyResult:
    """Aggregated study output."""

    beta: float
    pairs_evaluated: int
    wcett_improved: int
    mean_bottleneck_reduction_pct: float
    mean_airtime_overhead_pct: float
    choices: List[PathChoice] = field(default_factory=list)

    @property
    def improvement_rate(self) -> float:
        if self.pairs_evaluated == 0:
            return 0.0
        return self.wcett_improved / self.pairs_evaluated


def _best_path(mesh: MultichannelMesh, source: int, dest: int, score, k: int):
    """Best of the k shortest simple paths under ``score(hops)``."""
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from(range(len(mesh.positions)))
    for key in mesh.links:
        a, b = tuple(key)
        if mesh.assignment.link_channel(a, b) is None:
            continue
        graph.add_edge(a, b, weight=mesh.ett_by_link[key])
    if not nx.has_path(graph, source, dest):
        return None
    best = None
    best_score = float("inf")
    generator = nx.shortest_simple_paths(graph, source, dest, weight="weight")
    for index, path in enumerate(generator):
        if index >= k:
            break
        hops = mesh.path_hops(path)
        if hops is None:
            continue
        value = score(hops)
        if value < best_score:
            best_score = value
            best = tuple(path)
    return best


def run_path_selection_study(
    num_meshes: int = 5,
    num_nodes: int = 20,
    pairs_per_mesh: int = 6,
    beta: float = 0.5,
    candidate_paths: int = 10,
    assignment_factory=None,
    seed: int = 1,
) -> MultichannelStudyResult:
    """Compare ETT-chosen and MC-WCETT-chosen paths over sampled meshes."""
    if assignment_factory is None:
        from repro.multichannel.assignment import coloring_assignment

        def assignment_factory(node_ids, links, rng):
            return coloring_assignment(
                links, num_channels=3, radios_per_node=2, rng=rng
            )

    rng = random.Random(seed)
    choices: List[PathChoice] = []
    for mesh_index in range(num_meshes):
        mesh = sample_mesh(
            num_nodes,
            assignment_factory,
            rng=random.Random(rng.randrange(1 << 30)),
        )
        for _ in range(pairs_per_mesh):
            source, dest = rng.sample(range(num_nodes), 2)
            ett_path = _best_path(
                mesh, source, dest, path_ett_sum, candidate_paths
            )
            wcett_path = _best_path(
                mesh, source, dest,
                lambda hops: mc_wcett(hops, beta), candidate_paths,
            )
            if ett_path is None or wcett_path is None:
                continue
            ett_hops = mesh.path_hops(ett_path)
            wcett_hops = mesh.path_hops(wcett_path)
            assert ett_hops is not None and wcett_hops is not None
            choices.append(PathChoice(
                ett_path=ett_path,
                wcett_path=wcett_path,
                ett_bottleneck_s=bottleneck_channel_airtime(ett_hops),
                wcett_bottleneck_s=bottleneck_channel_airtime(wcett_hops),
                ett_total_s=path_ett_sum(ett_hops),
                wcett_total_s=path_ett_sum(wcett_hops),
            ))

    improved = [c for c in choices if c.wcett_improved_bottleneck]
    if choices:
        reduction = sum(
            (c.ett_bottleneck_s - c.wcett_bottleneck_s)
            / c.ett_bottleneck_s
            for c in choices
        ) / len(choices) * 100.0
        overhead = sum(
            (c.wcett_total_s - c.ett_total_s) / c.ett_total_s
            for c in choices
        ) / len(choices) * 100.0
    else:
        reduction = 0.0
        overhead = 0.0
    return MultichannelStudyResult(
        beta=beta,
        pairs_evaluated=len(choices),
        wcett_improved=len(improved),
        mean_bottleneck_reduction_pct=reduction,
        mean_airtime_overhead_pct=overhead,
        choices=choices,
    )
