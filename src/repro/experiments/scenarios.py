"""Scenario construction: from a config to a runnable protocol stack.

``build_simulation_scenario`` assembles the paper's Section 4.1 setup for
one protocol variant: 50 static nodes in 1000 m x 1000 m, two-ray
propagation with Rayleigh fading, 250 m nominal range, 2 Mbps channel,
two multicast groups of ten members, CBR 512 B @ 20 pkt/s per source.

The protocol variant is resolved through the protocol registry
(:mod:`repro.protocols`): the spec names the router class, the metric,
and any per-protocol config overrides, so the builder contains no
string dispatch -- registering a new ``ProtocolSpec`` is enough to make
it sweepable here.

The topology and group membership are drawn from the *topology seed
only*, so every protocol variant runs over the identical mesh and
workload -- only the routing behaviour differs, as in the paper's
normalized comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.metrics import RouteMetric
from repro.experiments.faults import FailureInjector, FaultPlan
from repro.mobility.config import EnergySpec, MobilitySpec
from repro.mobility.driver import MobilityDriver
from repro.mobility.energy import EnergyModel
from repro.mobility.models import build_mobility_model
from repro.net.network import Network, NetworkConfig
from repro.net.topology import Position, random_topology
from repro.phy.obstacles import ObstacleShadowingPropagation, ObstacleSpec
from repro.odmrp.config import OdmrpConfig
from repro.odmrp.protocol import OdmrpRouter
from repro.probing.manager import ProbingConfig, ProbingManager
from repro.protocols import ProtocolSpec, paper_protocol_names, protocol_by_name
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.telemetry.hub import TelemetryConfig, TelemetryHub
from repro.telemetry.probes import finalize_scenario, install_scenario_probes
from repro.traffic.cbr import CbrSource
from repro.traffic.groups import GroupScenario, build_group_scenario
from repro.traffic.sink import MulticastSink
from repro.validation.invariants import (
    InvariantSuite,
    ValidationConfig,
    build_suite,
)

#: The paper's six simulation variants ("odmrp" is the original protocol;
#: the rest are ODMRP_<METRIC>).  Derived from the registry -- kept as a
#: module constant for backward compatibility with existing sweeps.
PROTOCOL_NAMES = paper_protocol_names()


@dataclass
class SimulationScenarioConfig:
    """Everything that defines one simulation run (Section 4.1 defaults)."""

    num_nodes: int = 50
    area_width_m: float = 1000.0
    area_height_m: float = 1000.0
    num_groups: int = 2
    members_per_group: int = 10
    sources_per_group: int = 1
    rate_pps: float = 20.0
    packet_size_bytes: int = 512
    duration_s: float = 400.0
    #: Probing runs from t=0; traffic starts after this warmup so the
    #: first route choices already have link estimates (the paper's 400 s
    #: runs dwarf the 5-10 s probe intervals, so this mirrors steady state).
    warmup_s: float = 30.0
    topology_seed: int = 1
    network: NetworkConfig = field(default_factory=NetworkConfig)
    probing: ProbingConfig = field(default_factory=ProbingConfig)
    odmrp: OdmrpConfig = field(default_factory=OdmrpConfig)
    #: Observability knobs.  Disabled by default: no telemetry hub is
    #: built and the run executes the exact pre-telemetry instruction
    #: stream (see :mod:`repro.telemetry`).
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    #: Declarative fault schedule (radio outages / flapping).  The empty
    #: default schedules nothing and leaves the event stream untouched.
    faults: FaultPlan = field(default_factory=FaultPlan)
    #: Runtime invariant monitors (see :mod:`repro.validation`).
    #: Disabled by default: no suite is built and the run executes the
    #: exact pre-validation instruction stream.
    validation: ValidationConfig = field(default_factory=ValidationConfig)
    #: Mobility model (see :mod:`repro.mobility`).  The "static" default
    #: schedules no driver and executes the exact pre-mobility
    #: instruction stream.
    mobility: MobilitySpec = field(default_factory=MobilitySpec)
    #: Obstacle layout folded into propagation as per-wall shadowing
    #: (see :mod:`repro.phy.obstacles`).  Empty default wraps nothing.
    obstacles: ObstacleSpec = field(default_factory=ObstacleSpec)
    #: Per-node battery accounting with dead-at-zero through the fault
    #: path (see :mod:`repro.mobility.energy`).  Disabled by default.
    energy: EnergySpec = field(default_factory=EnergySpec)

    def with_probing_rate(self, multiplier: float) -> "SimulationScenarioConfig":
        """A copy with the probing rate scaled (overhead experiments)."""
        probing = replace(self.probing, rate_multiplier=multiplier)
        return replace(self, probing=probing)


def macro_flood_config(
    num_nodes: int = 2000,
    duration_s: float = 5.0,
    warmup_s: float = 1.0,
    members_per_group: int = 20,
    rate_pps: float = 5.0,
    topology_seed: int = 1,
) -> SimulationScenarioConfig:
    """A city-scale JOIN QUERY flood scenario at the paper's node density.

    The area is scaled so the density stays at the paper's 50 nodes per
    km^2 (the regime its connectivity and interference figures assume),
    which keeps the per-transmission audible set roughly constant while
    the mesh -- and the number of concurrent flood fronts -- grows with
    ``num_nodes``.  Short durations are intentional: one ODMRP refresh
    interval already floods a JOIN QUERY through all ``num_nodes``
    routers, which is the macro workload the vectorized PHY backend and
    the spatial grid index exist for.  Typically run with protocol
    "odmrp" (metric-free, so no probing machinery dilutes the flood).
    """
    side_m = math.sqrt(num_nodes / 50.0) * 1000.0
    return SimulationScenarioConfig(
        num_nodes=num_nodes,
        area_width_m=side_m,
        area_height_m=side_m,
        num_groups=1,
        members_per_group=members_per_group,
        sources_per_group=1,
        rate_pps=rate_pps,
        duration_s=duration_s,
        warmup_s=warmup_s,
        topology_seed=topology_seed,
    )


@dataclass
class SimulationScenario:
    """A fully wired, ready-to-run protocol stack."""

    config: SimulationScenarioConfig
    protocol_name: str
    network: Network
    metric: Optional[RouteMetric]
    probing: Optional[ProbingManager]
    routers: Dict[int, OdmrpRouter]
    sink: MulticastSink
    sources: List[CbrSource]
    groups: GroupScenario
    positions: List[Position]
    #: The run's telemetry hub, or None when telemetry is disabled.
    telemetry: Optional[TelemetryHub] = None
    #: The registry spec this scenario was built from (None only for
    #: hand-assembled scenarios that bypass the registry).
    spec: Optional[ProtocolSpec] = None
    #: The run's invariant-monitor suite, or None when validation is
    #: disabled.
    validation: Optional[InvariantSuite] = None
    #: The injector that scheduled ``config.faults``, or None when the
    #: plan is empty.
    failure_injector: Optional[FailureInjector] = None
    #: The mobility driver, or None when the model is "static".
    mobility: Optional[MobilityDriver] = None
    #: The energy accountant, or None when accounting is disabled.
    energy: Optional[EnergyModel] = None

    def run(self) -> None:
        """Run the full configured duration.

        With mobility, energy, telemetry, and/or validation enabled the
        simulation advances in interval-sized chunks so the observers
        can act between events; chunking a half-open ``run(until=...)``
        loop does not reorder events, so every path executes the same
        instruction stream.  Model-affecting observers (mobility,
        energy) are registered before the read-only ones (telemetry,
        validation), so samples and invariant checks taken at a shared
        boundary observe the post-update state.
        """
        sim = self.network.sim
        until = self.config.duration_s
        observers: List[Tuple[float, Callable[[], None]]] = []
        if self.mobility is not None:
            observers.append(
                (self.config.mobility.update_interval_s, self.mobility.step)
            )
        if self.energy is not None:
            observers.append(
                (self.config.energy.accounting_interval_s, self.energy.step)
            )
        if self.telemetry is not None:
            hub = self.telemetry
            observers.append(
                (
                    self.config.telemetry.sample_interval_s,
                    lambda: hub.sample(sim.now),
                )
            )
        if self.validation is not None:
            observers.append(
                (self.config.validation.check_interval_s, self.validation.check)
            )
        if not observers:
            self.network.run(until)
        else:
            drive_with_observers(sim, until, observers)
        if self.telemetry is not None:
            finalize_scenario(self.telemetry, self)
        if self.validation is not None:
            self.validation.final_check()

    def offered_packets(self) -> int:
        return sum(source.packets_sent for source in self.sources)

    def expected_deliveries(self) -> int:
        """Offered packets weighted by each group's member count."""
        total = 0
        for source in self.sources:
            members = self.groups.expected_deliveries_per_packet(
                source.group_id
            )
            total += source.packets_sent * members
        return total


def drive_with_observers(
    sim: Simulator,
    until: float,
    observers: Sequence[Tuple[float, Callable[[], None]]],
) -> None:
    """Advance ``sim`` to ``until``, firing each observer on its interval.

    Generalizes :meth:`TelemetryHub.drive` to several observers: the run
    is chunked at the union of the observers' interval boundaries
    (strictly inside ``(now, until)``; closing observations belong to the
    callers' finalizers).  Chunking a half-open ``run(until=...)`` loop
    never reorders events, and with a single observer this executes the
    exact boundary sequence ``TelemetryHub.drive`` would, so enabling a
    second observer cannot perturb the first.
    """
    boundaries = [sim.now + interval for interval, _callback in observers]
    while True:
        next_boundary = min(boundaries)
        if not next_boundary < until:
            break
        sim.run(until=next_boundary)
        for index, (interval, callback) in enumerate(observers):
            if boundaries[index] == next_boundary:
                callback()
                boundaries[index] += interval
    sim.run(until=until)


def build_simulation_scenario(
    protocol_name: str,
    config: Optional[SimulationScenarioConfig] = None,
    router_class: Optional[type] = None,
) -> SimulationScenario:
    """Assemble the paper's simulation scenario for one protocol variant.

    ``protocol_name`` is resolved through the protocol registry, which
    supplies the router class, metric, and per-protocol config overrides
    (e.g. ``"spp"`` -> ODMRP_SPP, ``"maodv-etx"`` -> tree-based router on
    ETX).  An explicit ``router_class`` overrides the spec's router --
    the historical escape hatch for running a registered metric binding
    over a different protocol implementation.
    """
    if config is None:
        config = SimulationScenarioConfig()
    spec = protocol_by_name(protocol_name)
    if router_class is not None and router_class is not spec.router:
        spec = replace(spec, router=router_class)

    # Topology and membership depend only on the topology seed, so all
    # protocol variants see the same mesh and workload.
    scenario_rng = RngRegistry(config.topology_seed)
    positions = random_topology(
        config.num_nodes,
        config.area_width_m,
        config.area_height_m,
        rng=scenario_rng.stream("topology"),
        connectivity_range_m=config.network.nominal_range_m,
    )
    groups = build_group_scenario(
        config.num_nodes,
        config.num_groups,
        config.members_per_group,
        config.sources_per_group,
        rng=scenario_rng.stream("membership"),
    )

    network_config = config.network
    if not config.obstacles.is_empty():
        # Fold the obstacle layout into propagation as a shadowing
        # wrapper.  Radio calibration and the analytic range bound go
        # through the distance-only envelope, which delegates to the
        # base model, so thresholds and grid cell size are unaffected.
        config.obstacles.validate_for(config.area_width_m, config.area_height_m)
        network_config = replace(
            network_config,
            propagation=ObstacleShadowingPropagation(
                network_config.build_propagation(), config.obstacles.obstacles
            ),
        )
    network = Network(positions, seed=config.topology_seed, config=network_config)
    metric = spec.build_metric(
        packet_size_bytes=config.packet_size_bytes,
        default_bandwidth_bps=config.network.data_rate_bps,
    )

    probing: Optional[ProbingManager] = None
    if metric is not None:
        probing = ProbingManager(network, metric, config.probing)
        probing.start()

    protocol_config = spec.protocol_config(config.odmrp)
    sink = MulticastSink(network.sim)
    routers: Dict[int, OdmrpRouter] = {}
    for node in network.nodes:
        table = probing.table(node.node_id) if probing is not None else None
        routers[node.node_id] = spec.router(
            network.sim,
            node,
            config=protocol_config,
            metric=metric,
            neighbor_table=table,
            on_deliver=sink.on_deliver,
        )

    for group_id, member_id in groups.all_members():
        routers[member_id].join_group(group_id)

    sources: List[CbrSource] = []
    for group_id, source_id in groups.all_sources():
        source = CbrSource(
            network.sim,
            routers[source_id],
            group_id,
            rate_pps=config.rate_pps,
            packet_size_bytes=config.packet_size_bytes,
        )
        source.start(at=config.warmup_s, stop_at=config.duration_s)
        sources.append(source)

    failure_injector: Optional[FailureInjector] = None
    if not config.faults.is_empty():
        config.faults.validate_for(config.num_nodes)
        # A plan that keeps a source down for the whole traffic
        # interval would make the run report zero delivery without
        # measuring anything about the metric -- reject it loudly.
        config.faults.assert_source_uptime(
            [source_id for _gid, source_id in groups.all_sources()],
            config.warmup_s,
            config.duration_s,
        )
        failure_injector = FailureInjector(network.sim)
        node_map = {node.node_id: node for node in network.nodes}
        config.faults.apply(failure_injector, node_map)

    mobility_driver: Optional[MobilityDriver] = None
    if not config.mobility.is_static():
        # Each mobility model draws from its own named stream, so a
        # moving scenario perturbs no other subsystem's randomness: the
        # same (protocol, config, seed) with mobility toggled still sees
        # identical topology/membership/traffic draws.
        model = build_mobility_model(
            config.mobility,
            config.area_width_m,
            config.area_height_m,
            positions,
            network.sim.rng.stream(f"mobility.{config.mobility.model}"),
        )
        mobility_driver = MobilityDriver(model, network)

    energy_model: Optional[EnergyModel] = None
    if config.energy.enabled:
        energy_model = EnergyModel(config.energy, network)

    scenario = SimulationScenario(
        config=config,
        protocol_name=spec.name,
        network=network,
        metric=metric,
        probing=probing,
        routers=routers,
        sink=sink,
        sources=sources,
        groups=groups,
        positions=positions,
        spec=spec,
        failure_injector=failure_injector,
        mobility=mobility_driver,
        energy=energy_model,
    )
    if config.telemetry.enabled:
        scenario.telemetry = TelemetryHub(config.telemetry)
        install_scenario_probes(scenario.telemetry, scenario)
    if config.validation.enabled:
        scenario.validation = build_suite(config.validation, scenario)
    return scenario
