"""Declarative mobility and energy specs for scenario configs.

Both dataclasses ride inside a
:class:`~repro.experiments.scenarios.SimulationScenarioConfig` and
round-trip strictly through the spec machinery
(:mod:`repro.experiments.spec`), so a (protocol x mobility x energy)
sweep cell is one spec entry.  Both validate eagerly at construction --
a typo'd model name or a negative joule cost fails when the config is
built (or the spec file is loaded), never mid-sweep.

The defaults are inert: ``MobilitySpec(model="static")`` schedules no
driver and ``EnergySpec(enabled=False)`` builds no accountant, so a
default config executes the exact pre-mobility instruction stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.mobility.models import mobility_model_by_name


def _require_finite(name: str, value: float) -> None:
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")


@dataclass
class MobilitySpec:
    """How (and whether) nodes move during a run."""

    #: Registered model name; "static" disables mobility entirely.
    model: str = "static"
    #: Virtual seconds between position updates (the driver's tick).
    update_interval_s: float = 1.0
    #: Travel speed range (uniform per leg for waypoint models; the
    #: mean/clamp range for gauss-markov).
    speed_min_mps: float = 1.0
    speed_max_mps: float = 10.0
    #: Rest time at each waypoint (random-waypoint / waypoint-swarm).
    pause_s: float = 0.0
    #: Gauss-Markov memory in [0, 1): 0 is memoryless, ->1 is ballistic.
    alpha: float = 0.75
    #: waypoint-swarm: nodes per swarm and member spread radius.
    swarm_size: int = 4
    swarm_radius_m: float = 50.0

    def __post_init__(self) -> None:
        mobility_model_by_name(self.model)  # eager did-you-mean check
        for name in ("update_interval_s", "speed_min_mps", "speed_max_mps",
                     "pause_s", "alpha", "swarm_radius_m"):
            _require_finite(name, getattr(self, name))
        if self.update_interval_s <= 0.0:
            raise ValueError(
                f"update_interval_s must be positive, "
                f"got {self.update_interval_s!r}"
            )
        if self.speed_min_mps < 0.0 or self.speed_max_mps <= 0.0:
            raise ValueError(
                f"speeds must be non-negative (max positive), got "
                f"[{self.speed_min_mps!r}, {self.speed_max_mps!r}]"
            )
        if self.speed_min_mps > self.speed_max_mps:
            raise ValueError(
                f"speed_min_mps {self.speed_min_mps!r} exceeds "
                f"speed_max_mps {self.speed_max_mps!r}"
            )
        if self.pause_s < 0.0:
            raise ValueError(f"pause_s must be >= 0, got {self.pause_s!r}")
        if not 0.0 <= self.alpha < 1.0:
            raise ValueError(
                f"alpha must lie in [0, 1), got {self.alpha!r}"
            )
        if self.swarm_size < 1:
            raise ValueError(
                f"swarm_size must be >= 1, got {self.swarm_size!r}"
            )
        if self.swarm_radius_m < 0.0:
            raise ValueError(
                f"swarm_radius_m must be >= 0, got {self.swarm_radius_m!r}"
            )

    def is_static(self) -> bool:
        return self.model == "static"


@dataclass
class EnergySpec:
    """Per-node battery accounting; dead-at-zero takes the radio down."""

    enabled: bool = False
    #: Battery budget per node at t=0.
    initial_j: float = 100.0
    #: Marginal joules per transmitted / received byte.
    tx_j_per_byte: float = 2e-6
    rx_j_per_byte: float = 1e-6
    #: Baseline standby drain (applies whether or not the radio is up).
    idle_w: float = 0.01
    #: Virtual seconds between accounting passes.
    accounting_interval_s: float = 1.0

    def __post_init__(self) -> None:
        for name in ("initial_j", "tx_j_per_byte", "rx_j_per_byte",
                     "idle_w", "accounting_interval_s"):
            _require_finite(name, getattr(self, name))
        if self.accounting_interval_s <= 0.0:
            raise ValueError(
                f"accounting_interval_s must be positive, "
                f"got {self.accounting_interval_s!r}"
            )
        if self.enabled and self.initial_j <= 0.0:
            raise ValueError(
                f"initial_j must be positive when energy accounting is "
                f"enabled, got {self.initial_j!r}"
            )
        for name in ("tx_j_per_byte", "rx_j_per_byte", "idle_w"):
            if getattr(self, name) < 0.0:
                raise ValueError(
                    f"{name} must be >= 0, got {getattr(self, name)!r}"
                )
