"""One entry point per paper table or figure.

Each function returns a :class:`FigureResult` holding the measured series,
the paper's reported series (for the shape comparison), and the raw runs.
The benchmark suite prints these side by side; EXPERIMENTS.md records
them.

Paper reference values: Figure 2's bars are read off the chart (the text
gives exact averages for the throughput columns and Table 1); values we
could only estimate visually are marked in the notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.accumulation import multiplicative, path_cost, recursive_metx
from repro.core.metrics import EtxMetric, MetxMetric, SppMetric
from repro.experiments.results import (
    RunResult,
    aggregate_runs,
    normalized_metric_table,
)
from repro.experiments.runner import collect_result, compare_protocols
from repro.experiments.scenarios import (
    PROTOCOL_NAMES,
    SimulationScenarioConfig,
)
from repro.testbed.emulator import TestbedScenarioConfig, build_testbed_scenario

#: The five metric-enhanced variants (everything in the paper family
#: except the min-hop baseline), in registry order.
METRIC_PROTOCOLS = tuple(
    name for name in PROTOCOL_NAMES if name != "odmrp"
)

#: Paper-reported normalized throughput, simulations (Section 4.2.1).
PAPER_THROUGHPUT_SIMULATIONS = {
    "odmrp": 1.0,
    "ett": 1.135,
    "etx": 1.145,
    "metx": 1.16,
    "pp": 1.18,
    "spp": 1.18,
}

#: Same column with 5x probing ("throughputs ... drop by about 2%").
PAPER_THROUGHPUT_HIGH_OVERHEAD = {
    "odmrp": 1.0,
    "ett": 1.115,
    "etx": 1.125,
    "metx": 1.14,
    "pp": 1.16,
    "spp": 1.16,
}

#: Normalized end-to-end delay, read off Figure 2 (approximate).
PAPER_DELAY = {
    "odmrp": 1.0,
    "ett": 1.20,
    "etx": 1.10,
    "metx": 1.18,
    "pp": 1.17,
    "spp": 1.08,
}

#: Testbed throughput gains (Section 5.3 text).
PAPER_THROUGHPUT_TESTBED = {
    "odmrp": 1.0,
    "ett": 1.07,
    "etx": 1.08,
    "metx": 1.075,
    "pp": 1.175,
    "spp": 1.14,
}

#: Table 1: probe bytes as % of data bytes received.
PAPER_TABLE1_OVERHEAD_PCT = {
    "ett": 3.03,
    "etx": 0.66,
    "metx": 0.61,
    "pp": 2.54,
    "spp": 0.53,
}


@dataclass
class FigureResult:
    """Measured vs paper series for one table or figure."""

    name: str
    measured: Dict[str, float]
    paper: Dict[str, float]
    notes: str = ""
    runs: List[RunResult] = field(default_factory=list)

    def gain_pct(self, protocol: str, baseline: str = "odmrp") -> float:
        """Measured percentage gain of ``protocol`` over the baseline."""
        return 100.0 * (self.measured[protocol] / self.measured[baseline] - 1.0)


# ----------------------------------------------------------------------
# Analytic figures (exact)

def figure1_metx_vs_spp() -> FigureResult:
    """Figure 1: METX prefers A-B-D, SPP prefers A-C-D.

    Link forwarding probabilities: A-C = 1, C-D = 1/3, A-B = 1/4, B-D = 1.
    """
    acd = [1.0, 1.0 / 3.0]
    abd = [0.25, 1.0]
    measured = {
        "metx_acd": recursive_metx(acd),
        "metx_abd": recursive_metx(abd),
        "inv_spp_acd": 1.0 / multiplicative(acd),
        "inv_spp_abd": 1.0 / multiplicative(abd),
    }
    paper = {
        "metx_acd": 6.0,
        "metx_abd": 5.0,
        "inv_spp_acd": 3.0,
        "inv_spp_abd": 4.0,
    }
    return FigureResult(
        name="figure1",
        measured=measured,
        paper=paper,
        notes=(
            "METX picks A-B-D (5 < 6) while SPP picks A-C-D (3 < 4 source "
            "transmissions per delivered packet)."
        ),
    )


def figure3_etx_vs_spp() -> FigureResult:
    """Figure 3: ETX prefers the lossy short path, SPP avoids it.

    A-B-C-D has three 0.8 links; A-E-D has a 0.9 and a 0.4 link.
    """
    abcd = [0.8, 0.8, 0.8]
    aed = [0.9, 0.4]
    etx = EtxMetric()
    spp = SppMetric()
    measured = {
        "etx_abcd": path_cost(etx, [1.0 / df for df in abcd]),
        "etx_aed": path_cost(etx, [1.0 / df for df in aed]),
        "spp_abcd": path_cost(spp, abcd),
        "spp_aed": path_cost(spp, aed),
    }
    paper = {
        "etx_abcd": 3.75,
        "etx_aed": 3.61,
        "spp_abcd": 0.512,
        "spp_aed": 0.36,
    }
    return FigureResult(
        name="figure3",
        measured=measured,
        paper=paper,
        notes=(
            "ETX picks A-E-D (3.61 < 3.75) despite the 0.4 link; SPP picks "
            "A-B-C-D (0.512 > 0.36)."
        ),
    )


# ----------------------------------------------------------------------
# Simulation columns of Figure 2 (and Table 1)

def simulation_sweep(
    config: Optional[SimulationScenarioConfig] = None,
    seeds: Iterable[int] = (1, 2, 3),
    protocols: Sequence[str] = PROTOCOL_NAMES,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: Optional[str] = None,
) -> List[RunResult]:
    """Run the Section 4 comparison once; several figures share it.

    ``jobs``/``use_cache`` fan the grid out across processes and replay
    unchanged runs from disk (see :mod:`repro.experiments.parallel`);
    results are bit-identical to the serial path either way.
    """
    return compare_protocols(
        config, protocols=protocols, topology_seeds=seeds,
        jobs=jobs, use_cache=use_cache, cache_dir=cache_dir,
    )


def figure2_throughput_simulations(
    config: Optional[SimulationScenarioConfig] = None,
    seeds: Iterable[int] = (1, 2, 3),
    runs: Optional[List[RunResult]] = None,
) -> FigureResult:
    """Figure 2, column "Throughput-simulations"."""
    if runs is None:
        runs = simulation_sweep(config, seeds)
    aggregates = aggregate_runs(runs)
    measured = normalized_metric_table(aggregates, "throughput")
    return FigureResult(
        name="figure2_throughput_simulations",
        measured=measured,
        paper=dict(PAPER_THROUGHPUT_SIMULATIONS),
        runs=runs,
    )


def figure2_delay(
    config: Optional[SimulationScenarioConfig] = None,
    seeds: Iterable[int] = (1, 2, 3),
    runs: Optional[List[RunResult]] = None,
) -> FigureResult:
    """Figure 2, column "Delay" (normalized mean end-to-end delay)."""
    if runs is None:
        runs = simulation_sweep(config, seeds)
    aggregates = aggregate_runs(runs)
    measured = normalized_metric_table(aggregates, "delay")
    return FigureResult(
        name="figure2_delay",
        measured=measured,
        paper=dict(PAPER_DELAY),
        notes="Paper values are approximate (read off the bar chart).",
        runs=runs,
    )


def figure2_throughput_high_overhead(
    config: Optional[SimulationScenarioConfig] = None,
    seeds: Iterable[int] = (1, 2, 3),
    rate_multiplier: float = 5.0,
) -> FigureResult:
    """Figure 2, column "Throughput-high overhead" (probing rate x5).

    The baseline ODMRP run has no probes, so its absolute throughput is
    shared with the normal-rate column; only the metric variants change.
    """
    if config is None:
        config = SimulationScenarioConfig()
    boosted = config.with_probing_rate(rate_multiplier)
    runs = compare_protocols(boosted, topology_seeds=seeds)
    aggregates = aggregate_runs(runs)
    measured = normalized_metric_table(aggregates, "throughput")
    return FigureResult(
        name="figure2_throughput_high_overhead",
        measured=measured,
        paper=dict(PAPER_THROUGHPUT_HIGH_OVERHEAD),
        runs=runs,
    )


def table1_probing_overhead(
    config: Optional[SimulationScenarioConfig] = None,
    seeds: Iterable[int] = (1, 2, 3),
    runs: Optional[List[RunResult]] = None,
    jobs: int = 1,
    use_cache: bool = False,
) -> FigureResult:
    """Table 1: probe bytes as a percentage of data bytes received."""
    if runs is None:
        runs = simulation_sweep(
            config, seeds, protocols=METRIC_PROTOCOLS,
            jobs=jobs, use_cache=use_cache,
        )
    aggregates = aggregate_runs(runs)
    measured = {
        name: agg.mean_probe_overhead_pct
        for name, agg in aggregates.items()
        if name != "odmrp"
    }
    return FigureResult(
        name="table1_probing_overhead",
        measured=measured,
        paper=dict(PAPER_TABLE1_OVERHEAD_PCT),
        runs=runs,
    )


def probing_rate_sensitivity(
    config: Optional[SimulationScenarioConfig] = None,
    seeds: Iterable[int] = (1, 2),
    multipliers: Sequence[float] = (0.1, 1.0, 5.0),
    protocols: Sequence[str] = ("odmrp", "etx", "pp", "spp"),
) -> Dict[float, FigureResult]:
    """Section 4.2.2: throughput gains versus probing rate.

    The paper reports gains improving ~3 % at a 10x lower rate and
    dropping ~2 % at a 5x higher rate, with the high-overhead metrics
    (PP, ETT) the most sensitive.
    """
    if config is None:
        config = SimulationScenarioConfig()
    results: Dict[float, FigureResult] = {}
    for multiplier in multipliers:
        tuned = config.with_probing_rate(multiplier)
        runs = compare_protocols(
            tuned, protocols=protocols, topology_seeds=seeds
        )
        aggregates = aggregate_runs(runs)
        measured = normalized_metric_table(aggregates, "throughput")
        results[multiplier] = FigureResult(
            name=f"probing_rate_x{multiplier:g}",
            measured=measured,
            paper={},
            notes="Directional experiment; the paper gives deltas only.",
            runs=runs,
        )
    return results


def multi_source_gain_reduction(
    config: Optional[SimulationScenarioConfig] = None,
    seeds: Iterable[int] = (1, 2),
    source_counts: Sequence[int] = (1, 2),
    protocols: Sequence[str] = ("odmrp", "pp", "spp"),
) -> Dict[int, FigureResult]:
    """Section 4.3: more sources per group shrink the relative gains.

    ODMRP's forwarding group is per group, not per source, so extra
    sources build a more redundant mesh that partially compensates the
    baseline's bad path choices (paper: gains drop by ~10-15 %).
    """
    if config is None:
        config = SimulationScenarioConfig()
    results: Dict[int, FigureResult] = {}
    for count in source_counts:
        adjusted = replace(config, sources_per_group=count)
        runs = compare_protocols(
            adjusted, protocols=protocols, topology_seeds=seeds
        )
        aggregates = aggregate_runs(runs)
        measured = normalized_metric_table(aggregates, "throughput")
        results[count] = FigureResult(
            name=f"multi_source_{count}",
            measured=measured,
            paper={},
            notes="Compare gains across source counts, not absolute values.",
            runs=runs,
        )
    return results


# ----------------------------------------------------------------------
# Testbed figures

def figure2_throughput_testbed(
    config: Optional[TestbedScenarioConfig] = None,
    run_seeds: Iterable[int] = (1, 2, 3, 4, 5),
    protocols: Sequence[str] = PROTOCOL_NAMES,
) -> FigureResult:
    """Figure 2, column "Throughput-testbed" (5 repetitions in the paper)."""
    if config is None:
        config = TestbedScenarioConfig()
    runs: List[RunResult] = []
    for seed in run_seeds:
        seeded = config.with_run_seed(seed)
        for protocol in protocols:
            scenario = build_testbed_scenario(protocol, seeded)
            scenario.run()
            runs.append(collect_result(scenario))
    aggregates = aggregate_runs(runs)
    measured = normalized_metric_table(aggregates, "throughput")
    return FigureResult(
        name="figure2_throughput_testbed",
        measured=measured,
        paper=dict(PAPER_THROUGHPUT_TESTBED),
        runs=runs,
    )


def figure5_tree_edges(
    config: Optional[TestbedScenarioConfig] = None,
    protocols: Sequence[str] = ("odmrp", "pp"),
    min_share: float = 0.10,
) -> Dict[str, List[Tuple[int, int, float]]]:
    """Figure 5: heavily used links under ODMRP vs ODMRP_PP.

    The qualitative claim to reproduce: ODMRP leans on the lossy one-hop
    links (2-5, 4-7, 1-3, 9-3) while ODMRP_PP routes around them
    (2-10-5, 4-9-7, ...).
    """
    if config is None:
        config = TestbedScenarioConfig()
    trees: Dict[str, List[Tuple[int, int, float]]] = {}
    for protocol in protocols:
        scenario = build_testbed_scenario(protocol, config)
        scenario.run()
        trees[protocol] = scenario.heavily_used_links(min_share)
    return trees


def lossy_link_data_share(
    tree: List[Tuple[int, int, float]],
    lossy_pairs: Optional[Iterable[frozenset]] = None,
) -> float:
    """Fraction of tree-link weight carried by Figure 4's lossy links."""
    if lossy_pairs is None:
        from repro.testbed.floormap import lossy_link_keys

        lossy_pairs = lossy_link_keys()
    lossy_set = set(lossy_pairs)
    total = sum(share for _s, _d, share in tree)
    if total == 0:
        return 0.0
    lossy = sum(
        share
        for src, dst, share in tree
        if frozenset((src, dst)) in lossy_set
    )
    return lossy / total
