"""Protocol registry: named router x metric combinations.

Importing this package seeds the default registry with the paper's six
ODMRP variants, six tree-based MAODV variants, and the single-channel
WCETT entry; see :mod:`repro.protocols.registry`.
"""

from repro.protocols.registry import (
    REGISTRY,
    DuplicateProtocolError,
    ProtocolRegistry,
    ProtocolSpec,
    UnknownProtocolError,
    maodv_protocol_names,
    paper_protocol_names,
    protocol_by_name,
    protocol_names,
    register_protocol,
    registers,
)

__all__ = [
    "ProtocolSpec",
    "ProtocolRegistry",
    "REGISTRY",
    "DuplicateProtocolError",
    "UnknownProtocolError",
    "register_protocol",
    "registers",
    "protocol_by_name",
    "protocol_names",
    "paper_protocol_names",
    "maodv_protocol_names",
]
