"""Tests for RNG streams, timers, periodic tasks, and trace utilities."""

from __future__ import annotations

import statistics

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicTask, Timer
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.trace import CounterSet, TraceRecorder, WelfordAccumulator


class TestRngRegistry:
    def test_derive_seed_is_stable(self):
        assert derive_seed(1, "fading") == derive_seed(1, "fading")

    def test_derive_seed_differs_by_name_and_seed(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_streams_are_cached(self):
        registry = RngRegistry(5)
        assert registry.stream("x") is registry.stream("x")

    def test_streams_are_independent(self):
        registry = RngRegistry(5)
        a = [registry.stream("a").random() for _ in range(5)]
        # Drawing from stream b must not disturb stream a's future.
        registry2 = RngRegistry(5)
        registry2.stream("b").random()
        a2 = [registry2.stream("a").random() for _ in range(5)]
        assert a == a2

    def test_fork_changes_universe_deterministically(self):
        base = RngRegistry(5)
        fork1 = base.fork("run1")
        fork1_again = RngRegistry(5).fork("run1")
        assert fork1.stream("x").random() == fork1_again.stream("x").random()

    def test_stream_names_tracks_creation(self):
        registry = RngRegistry(0)
        registry.stream("b")
        registry.stream("a")
        assert registry.stream_names() == ["a", "b"]


class TestTimer:
    def test_fires_once_after_delay(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(3.0)
        sim.run()
        assert fired == [3.0]

    def test_restart_resets_countdown(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(3.0)
        sim.schedule(2.0, lambda: timer.start(3.0))
        sim.run()
        assert fired == [5.0]

    def test_cancel_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(1.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_running_and_expires_at(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.running
        timer.start(2.0)
        assert timer.running
        assert timer.expires_at == 2.0
        sim.run()
        assert not timer.running


class TestPeriodicTask:
    def test_fires_at_fixed_interval(self, sim):
        times = []
        task = PeriodicTask(sim, 2.0, lambda: times.append(sim.now))
        task.start()
        sim.run(until=9.0)
        assert times == [2.0, 4.0, 6.0, 8.0]
        assert task.firings == 4

    def test_initial_delay_overrides_first_gap(self, sim):
        times = []
        task = PeriodicTask(sim, 5.0, lambda: times.append(sim.now))
        task.start(initial_delay=1.0)
        sim.run(until=12.0)
        assert times == [1.0, 6.0, 11.0]

    def test_stop_halts_future_firings(self, sim):
        times = []
        task = PeriodicTask(sim, 1.0, lambda: times.append(sim.now))
        task.start()
        sim.schedule(2.5, task.stop)
        sim.run(until=10.0)
        assert times == [1.0, 2.0]

    def test_jitter_keeps_gaps_in_bounds(self):
        simulator = Simulator(seed=9)
        times = []
        task = PeriodicTask(
            simulator,
            10.0,
            lambda: times.append(simulator.now),
            jitter=0.1,
            rng=simulator.rng.stream("jit"),
        )
        task.start()
        simulator.run(until=500.0)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(9.0 <= gap <= 11.0 for gap in gaps)
        # Jitter must actually vary the gaps.
        assert len({round(g, 6) for g in gaps}) > 1

    def test_jitter_requires_rng(self, sim):
        with pytest.raises(ValueError):
            PeriodicTask(sim, 1.0, lambda: None, jitter=0.5)

    def test_invalid_interval_rejected(self, sim):
        with pytest.raises(ValueError):
            PeriodicTask(sim, 0.0, lambda: None)

    def test_set_interval_applies_to_next_gap(self, sim):
        times = []
        task = PeriodicTask(sim, 1.0, lambda: times.append(sim.now))
        task.start()
        sim.schedule(1.5, lambda: task.set_interval(3.0))
        sim.run(until=9.0)
        assert times == [1.0, 2.0, 5.0, 8.0]

    def test_callback_may_stop_the_task(self, sim):
        times = []

        def once():
            times.append(sim.now)
            task.stop()

        task = PeriodicTask(sim, 1.0, once)
        task.start()
        sim.run(until=5.0)
        assert times == [1.0]


class TestCounterSet:
    def test_add_and_get(self):
        counters = CounterSet()
        counters.add("x")
        counters.add("x", 2.5)
        assert counters.get("x") == 3.5
        assert counters["missing"] == 0.0

    def test_prefix_total(self):
        counters = CounterSet()
        counters.add("tx.data.bytes", 100)
        counters.add("tx.probe.bytes", 32)
        counters.add("rx.data.bytes", 50)
        assert counters.total("tx.") == 132

    def test_merge(self):
        a = CounterSet()
        b = CounterSet()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 3

    def test_names_and_contains(self):
        counters = CounterSet()
        counters.add("b")
        counters.add("a")
        assert counters.names() == ["a", "b"]
        assert "a" in counters
        assert "z" not in counters


class TestTraceRecorder:
    def test_disabled_recorder_records_nothing(self):
        recorder = TraceRecorder(enabled=False)
        recorder.record(1.0, "tag", value=1)
        assert recorder.entries == []

    def test_record_and_filter(self):
        recorder = TraceRecorder(enabled=True)
        recorder.record(1.0, "a", x=1)
        recorder.record(2.0, "b")
        recorder.record(3.0, "a", x=2)
        assert [e.time for e in recorder.with_tag("a")] == [1.0, 3.0]
        assert recorder.tags() == ["a", "b"]

    def test_bounded_capacity(self):
        recorder = TraceRecorder(enabled=True, max_entries=2)
        for i in range(5):
            recorder.record(float(i), "t")
        assert len(recorder.entries) == 2
        assert recorder.dropped == 3

    def test_dropped_resets_with_clear(self):
        # Regression: telemetry exports report ``dropped`` per run, so it
        # must count every overflow and reset with the entries.
        recorder = TraceRecorder(enabled=True, max_entries=1)
        for i in range(4):
            recorder.record(float(i), "t")
        assert recorder.dropped == 3
        recorder.clear()
        assert recorder.dropped == 0
        assert recorder.entries == []
        recorder.record(0.0, "t")
        recorder.record(1.0, "t")
        assert recorder.dropped == 1

    def test_iter_between(self):
        recorder = TraceRecorder(enabled=True)
        for i in range(5):
            recorder.record(float(i), "t")
        assert [e.time for e in recorder.iter_between(1.0, 3.0)] == [1.0, 2.0]


class TestWelford:
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=200,
        )
    )
    def test_matches_statistics_module(self, values):
        acc = WelfordAccumulator()
        for v in values:
            acc.add(v)
        assert acc.count == len(values)
        assert acc.mean == pytest.approx(statistics.fmean(values), abs=1e-6, rel=1e-9)
        assert acc.variance == pytest.approx(
            statistics.variance(values), abs=1e-6, rel=1e-6
        )
        assert acc.minimum == min(values)
        assert acc.maximum == max(values)

    def test_single_sample_has_zero_variance(self):
        acc = WelfordAccumulator()
        acc.add(5.0)
        assert acc.variance == 0.0
        assert acc.stddev == 0.0
