"""802.11 frame timing.

Timing constants follow 802.11b DSSS (the testbed's Atheros cards in b
mode, and the 2 Mbps channel of the simulation study).
"""

from __future__ import annotations

from dataclasses import dataclass

MAC_DATA_HEADER_BYTES = 34  # 24 B 802.11 header + 8 B LLC/SNAP + FCS overhead
ACK_FRAME_BYTES = 14


@dataclass(frozen=True)
class FrameTimings:
    """Interframe spaces and contention parameters (802.11b DSSS)."""

    slot_time_s: float = 20e-6
    sifs_s: float = 10e-6
    cw_min: int = 32  # backoff drawn uniformly from [0, cw)
    cw_max: int = 1024
    retry_limit: int = 7  # unicast long-retry limit; broadcast sends once

    @property
    def difs_s(self) -> float:
        return self.sifs_s + 2.0 * self.slot_time_s


def frame_airtime_s(
    payload_bytes: int,
    data_rate_bps: float,
    preamble_duration_s: float = 192e-6,
    header_bytes: int = MAC_DATA_HEADER_BYTES,
) -> float:
    """Time on air for one data frame.

    The PLCP preamble/header goes out at the base rate (folded into
    ``preamble_duration_s``); MAC header and payload at ``data_rate_bps``.
    """
    if payload_bytes < 0:
        raise ValueError(f"payload must be non-negative, got {payload_bytes}")
    if data_rate_bps <= 0:
        raise ValueError(f"data rate must be positive, got {data_rate_bps}")
    bits = (payload_bytes + header_bytes) * 8
    return preamble_duration_s + bits / data_rate_bps


def ack_airtime_s(
    data_rate_bps: float, preamble_duration_s: float = 192e-6
) -> float:
    """Time on air for an ACK control frame."""
    return preamble_duration_s + ACK_FRAME_BYTES * 8 / data_rate_bps
