"""Markdown report generation from experiment results.

Takes the raw :class:`~repro.experiments.results.RunResult` rows a sweep
produced and renders a self-contained markdown report: normalized
columns next to the paper's values, per-topology spread, and the
counters that explain *why* a variant won (forwarding volume, collision
rates, probe bytes).

Used by power users to snapshot a sweep; EXPERIMENTS.md in this
repository was assembled from the same numbers at full scale.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.stats import confidence_interval_95, mean
from repro.experiments.adaptive import AdaptiveResult
from repro.experiments.campaigns import CampaignResult
from repro.experiments.results import (
    RunResult,
    aggregate_runs,
    normalized_metric_table,
)
from repro.protocols import protocol_names


def _ordered(names: Sequence[str]) -> List[str]:
    """Registry registration order first, unknown names sorted after."""
    order = protocol_names()
    known = [name for name in order if name in names]
    extra = sorted(set(names) - set(known))
    return known + extra


def _baseline_for(
    names: Sequence[str],
    preferred: str = "odmrp",
    aggregates: Optional[Mapping[str, "object"]] = None,
) -> str:
    """The normalization baseline: ``preferred`` when the sweep ran it,
    otherwise the sweep's first protocol in registry order (so a pure
    MAODV sweep normalizes against min-hop "maodv", mirroring the
    paper's Figure 2 treatment of each protocol family).

    When ``aggregates`` is given, a baseline whose runs all failed (or
    delivered nothing) is skipped in favour of the first protocol with
    measurable throughput -- a sweep degraded by quarantined runs still
    renders a report instead of dying on a zero-division."""
    ordered = _ordered(names)
    if not ordered:
        raise ValueError("no protocols to report")
    candidates = ([preferred] if preferred in names else []) + ordered
    if aggregates is not None:
        for name in candidates:
            agg = aggregates.get(name)
            if agg is not None and getattr(agg, "runs", 0) > 0 and (
                getattr(agg, "mean_throughput_bps", 0.0) > 0
            ):
                return name
    return candidates[0]


def markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """A GitHub-flavoured markdown table."""
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} does not match headers")
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def throughput_section(
    runs: Sequence[RunResult],
    paper: Optional[Mapping[str, float]] = None,
    baseline: Optional[str] = None,
) -> str:
    """Normalized throughput with per-protocol 95 % CIs over topologies."""
    aggregates = aggregate_runs(runs)
    if baseline is None:
        baseline = _baseline_for(list(aggregates), aggregates=aggregates)
    baseline_mean = aggregates[baseline].mean_throughput_bps
    normalized = (
        normalized_metric_table(aggregates, "throughput", baseline)
        if baseline_mean > 0 else {}
    )
    rows = []
    for name in _ordered(list(aggregates)):
        protocol_runs = [
            run for run in runs
            if run.protocol == name and run.error is None
        ]
        paper_cell = (
            f"{paper[name]:.3f}" if paper and name in paper else "-"
        )
        if not protocol_runs or baseline_mean == 0:
            # All runs failed (or the baseline did): show the hole.
            rows.append((name, paper_cell, "-", "-", 0))
            continue
        values = [
            run.throughput_bps / baseline_mean for run in protocol_runs
        ]
        low, high = confidence_interval_95(values)
        rows.append((
            name,
            paper_cell,
            f"{normalized[name]:.3f}",
            f"[{low:.3f}, {high:.3f}]",
            len(protocol_runs),
        ))
    return "### Normalized throughput\n\n" + markdown_table(
        ("protocol", "paper", "measured", "95% CI", "runs"), rows
    )


def overhead_section(
    runs: Sequence[RunResult],
    paper: Optional[Mapping[str, float]] = None,
    baseline: Optional[str] = None,
) -> str:
    aggregates = aggregate_runs(runs)
    if baseline is None:
        baseline = _baseline_for(list(aggregates))
    rows = []
    for name in _ordered([n for n in aggregates if n != baseline]):
        paper_cell = (
            f"{paper[name]:.2f}" if paper and name in paper else "-"
        )
        rows.append((
            name,
            paper_cell,
            f"{aggregates[name].mean_probe_overhead_pct:.2f}",
        ))
    return "### Probing overhead (%)\n\n" + markdown_table(
        ("metric", "paper", "measured"), rows
    )


def diagnostics_section(runs: Sequence[RunResult]) -> str:
    """The counters that explain the results: forwarding, collisions."""
    by_protocol: Dict[str, List[RunResult]] = {}
    for run in runs:
        if run.error is None:
            by_protocol.setdefault(run.protocol, []).append(run)
    rows = []
    for name in _ordered(list(by_protocol)):
        protocol_runs = by_protocol[name]

        def avg(counter: str) -> float:
            return mean([
                run.counters.get(counter, 0.0) for run in protocol_runs
            ])

        rows.append((
            name,
            f"{mean([r.packet_delivery_ratio for r in protocol_runs]):.3f}",
            f"{avg('odmrp.data_forwarded'):.0f}",
            f"{avg('odmrp.data_duplicate'):.0f}",
            f"{avg('phy.rx_failed_collision'):.0f}",
            f"{avg('odmrp.query_forwarded'):.0f}",
        ))
    return "### Why: per-run mean diagnostics\n\n" + markdown_table(
        ("protocol", "PDR", "data fwd", "dup drops", "collisions",
         "queries fwd"),
        rows,
    )


def adaptive_section(plan: AdaptiveResult) -> str:
    """The sequential planner's outcome: seeds spent, achieved CI
    width against the target, and the paired-CRN gain per protocol."""
    decisions = plan.final_decisions()
    comparisons = {c.protocol: c for c in plan.paired_comparisons()}
    rows = []
    for name in _ordered(list(decisions)):
        decision = decisions[name]
        comparison = comparisons.get(name)
        if comparison is None:
            delta_cell = "baseline" if name == plan.baseline else "-"
            gain_cell = "-"
        else:
            delta_cell = (
                f"[{comparison.paired_low:+.3f}, "
                f"{comparison.paired_high:+.3f}]"
            )
            gain_cell = f"{comparison.gain_pct:.0f}%"
        rows.append((
            name,
            decision.seeds_spent,
            f"{decision.normalized_mean:.3f}",
            f"{decision.ci_half_width:.3f}",
            decision.reason or "-",
            delta_cell,
            gain_cell,
        ))
    header = (
        "### Adaptive plan\n\n"
        f"Sequential seed allocation, target CI half-width "
        f"{plan.config.target_half_width:g} (normalized units), "
        f"batches of {plan.config.batch_size}, seeds "
        f"{plan.config.min_seeds}..{plan.config.max_seeds} per protocol, "
        f"paired common random numbers "
        f"{'on' if plan.config.paired else 'off'}; "
        f"{plan.total_runs} runs total vs "
        f"{len(decisions) * plan.config.max_seeds} exhaustive.\n\n"
    )
    return header + markdown_table(
        ("protocol", "seeds", "normalized", "CI half-width", "stop",
         f"paired delta vs {plan.baseline}", "pairing gain"),
        rows,
    )


def injected_downtime_note(runs: Sequence[RunResult]) -> Optional[str]:
    """Per-protocol injected-downtime itemization for faulty sweeps.

    Faulty runs carry ``faults.*`` severity counters (written by
    ``collect_result``), so a sweep that injected outages is
    self-describing: the note states how much downtime each protocol's
    runs absorbed, making degraded aggregates interpretable without
    the original fault plan.  Returns ``None`` for fault-free sweeps.
    """
    by_protocol: Dict[str, List[RunResult]] = {}
    for run in runs:
        if run.error is None and run.counters.get(
            "faults.injected_downtime_s", 0.0
        ) > 0.0:
            by_protocol.setdefault(run.protocol, []).append(run)
    if not by_protocol:
        return None
    parts = []
    for name in _ordered(list(by_protocol)):
        faulty = by_protocol[name]
        downtime = mean([
            run.counters["faults.injected_downtime_s"] for run in faulty
        ])
        nodes = mean([
            run.counters.get("faults.nodes_affected", 0.0) for run in faulty
        ])
        parts.append(
            f"{name}: {downtime:.1f} node-seconds of downtime across "
            f"{nodes:.1f} node(s) per run ({len(faulty)} faulty run(s))"
        )
    return (
        "**Injected faults:** " + "; ".join(parts) + "."
    )


def robustness_section(campaign: CampaignResult) -> str:
    """The fault campaign's outcome: the headline verdict, per-protocol
    tail probabilities with ESS-honest CIs, and degradation curves."""
    diagnostics = campaign.weight_diagnostics()
    rows = []
    for row in campaign.robustness():
        probability_cell = (
            f"{row.tail_probability:.4f} "
            f"[{row.tail_ci_low:.4f}, {row.tail_ci_high:.4f}]"
        )
        rows.append((
            row.protocol,
            f"{row.fault_free_gain:.3f}",
            f"{row.faulted_gain:.3f}" if row.protocol != campaign.baseline
            else "1.000",
            f"{row.mean_relative_delivery:.3f}",
            probability_cell,
            row.failed_runs or "-",
            row.verdict,
        ))
    proposal = (
        f"defensive mixture proposal, severe tilt "
        f"theta^{campaign.config.proposal_shape:g}"
        if campaign.config.importance else "nominal (unweighted) sampling"
    )
    header = (
        "### Robustness\n\n"
        f"{len(campaign.draws)} fault configurations sampled "
        f"({proposal}), each run against every protocol with a "
        f"fault-free common-random-number baseline on seeds "
        f"{', '.join(str(seed) for seed in campaign.seeds)}; "
        f"importance weights recover nominal-world estimates "
        f"(severity ~ {campaign.config.nominal_shape:g}(1-t)^"
        f"{campaign.config.nominal_shape - 1:g}).  "
        f"Effective sample size {diagnostics.ess:.1f} of "
        f"{diagnostics.n} draws"
        + (
            " -- **weights degenerate; widen the proposal or add draws**"
            if diagnostics.degenerate else ""
        )
        + f".\n\n**Verdict:** {campaign.headline()}\n\n"
    )
    table = markdown_table(
        (
            "protocol",
            "fault-free vs " + campaign.baseline,
            "faulted vs " + campaign.baseline,
            "rel. delivery",
            f"P[delivery < {campaign.config.tail_fraction:g}x baseline]",
            "failed",
            "verdict",
        ),
        rows,
    )
    curves = []
    for protocol in campaign.protocols:
        for bucket in campaign.degradation_curve(protocol):
            curves.append((
                protocol,
                f"{bucket['downtime_low_s']:.1f}.."
                f"{bucket['downtime_high_s']:.1f}",
                int(bucket["draws"]),
                f"{bucket['relative_delivery']:.3f}",
            ))
    if curves:
        table += "\n\n" + (
            "Degradation (weighted mean relative delivery by injected "
            "downtime, node-seconds):\n\n"
        ) + markdown_table(
            ("protocol", "downtime range", "draws", "rel. delivery"),
            curves,
        )
    return header + table


def render_report(
    runs: Sequence[RunResult],
    title: str = "Experiment report",
    paper_throughput: Optional[Mapping[str, float]] = None,
    paper_overhead: Optional[Mapping[str, float]] = None,
    adaptive: Optional[AdaptiveResult] = None,
    campaign: Optional[CampaignResult] = None,
) -> str:
    """A complete markdown report for one sweep's runs."""
    if not runs:
        raise ValueError("no runs to report")
    seeds = sorted({run.topology_seed for run in runs})
    duration = runs[0].duration_s
    header = (
        f"# {title}\n\n"
        f"{len(runs)} runs, {len(seeds)} topologies "
        f"(seeds {seeds[0]}..{seeds[-1]}), {duration:.0f} s simulated each.\n"
    )
    aggregates = aggregate_runs(runs)
    failed = sum(agg.failed_runs for agg in aggregates.values())
    zero = sum(agg.zero_delivery_runs for agg in aggregates.values())
    if failed or zero:
        breakdown = []
        for name in _ordered(list(aggregates)):
            kinds = aggregates[name].failure_kinds
            if kinds:
                detail = ", ".join(
                    f"{count} {kind}" for kind, count in sorted(kinds.items())
                )
                breakdown.append(f"{name}: {detail}")
        note = (
            f"\n**Data-quality note:** {failed} run(s) failed and are "
            "quarantined (excluded from every mean)"
        )
        if breakdown:
            note += " -- " + "; ".join(breakdown)
        header += note + (
            f", {zero} run(s) delivered zero packets.\n"
        )
    downtime = injected_downtime_note(runs)
    if downtime is not None:
        header += "\n" + downtime + "\n"
    sections = [
        header,
        throughput_section(runs, paper_throughput),
        overhead_section(runs, paper_overhead),
        diagnostics_section(runs),
    ]
    if adaptive is not None:
        sections.insert(1, adaptive_section(adaptive))
    if campaign is not None:
        sections.insert(1, robustness_section(campaign))
    return "\n\n".join(sections) + "\n"
