"""Differential scenario fuzzing: random specs, one oracle, many paths.

The determinism contract says a run is fully determined by its
``(protocol, config, seed)`` triple -- whether it executes inline, in a
pool worker, replayed from the cache, or with telemetry attached.  This
module *hunts* for violations of that contract instead of asserting it
on one hand-picked scenario:

* :func:`random_spec` draws a small random :class:`ExperimentSpec`
  (topology size, metric/protocol mix, seeds, fault schedules) from a
  seeded generator, so every fuzz case is itself replayable.
* :func:`differential_check` runs the spec through the serial path as
  the oracle, then through jobs=N / cold-cache / warm-cache /
  telemetry-enabled paths and reports any result that is not
  bit-identical.
* :func:`run_with_invariants` replays a spec serially with the runtime
  invariant monitors attached (:mod:`repro.validation.invariants`).
* :func:`write_replay_spec` turns a caught
  :class:`~repro.validation.invariants.InvariantViolation` into a
  one-run spec file for ``repro validate --spec``.

The CLI subcommand (``repro validate``) and the ``pytest -m fuzz`` tier
are thin wrappers over these functions.
"""

from __future__ import annotations

import dataclasses
import os
import random
from typing import List, Optional, Sequence, Tuple

from repro.experiments.faults import FaultPlan, FlappingSpec, OutageWindow
from repro.experiments.parallel import execute_runs, sweep_specs
from repro.experiments.results import RunResult
from repro.experiments.runner import run_protocol
from repro.experiments.scenarios import SimulationScenarioConfig
from repro.experiments.spec import ExperimentSpec
from repro.mobility.config import EnergySpec, MobilitySpec
from repro.sim.rng import derive_seed
from repro.telemetry.hub import TelemetryConfig
from repro.validation.invariants import InvariantViolation, ValidationConfig

#: Protocol mix the fuzzer draws from: both router families and every
#: paper metric, so the differential paths cover metric-specific state.
FUZZ_PROTOCOLS: Tuple[str, ...] = (
    "odmrp",
    "etx",
    "spp",
    "metx",
    "pp",
    "maodv",
    "maodv-etx",
    "maodv-spp",
)


def random_spec(index: int, master_seed: int = 0) -> ExperimentSpec:
    """Draw fuzz case ``index``: a small, fully replayable sweep spec.

    The generator RNG is derived from ``(master_seed, index)`` alone, so
    ``repro validate --fuzz N`` enumerates the same cases on every
    machine and a failing index can be re-drawn in isolation.
    """
    rng = random.Random(derive_seed(master_seed, f"fuzz.{index}"))
    num_nodes = rng.randint(8, 14)
    duration_s = float(rng.choice((8, 10, 12)))
    warmup_s = float(rng.randint(2, 3))
    protocols = tuple(
        rng.sample(FUZZ_PROTOCOLS, k=rng.randint(1, 2))
    )
    seeds = tuple(sorted(rng.sample(range(1, 64), k=rng.randint(1, 2))))

    outages: List[OutageWindow] = []
    flapping: List[FlappingSpec] = []
    if rng.random() < 0.5:
        start = rng.uniform(warmup_s, 0.6 * duration_s)
        outages.append(
            OutageWindow(
                node_id=rng.randrange(num_nodes),
                start_s=round(start, 3),
                end_s=round(start + rng.uniform(1.0, 3.0), 3),
            )
        )
    if rng.random() < 0.25:
        flapping.append(
            FlappingSpec(
                node_id=rng.randrange(num_nodes),
                start_s=warmup_s,
                period_s=2.0,
                down_fraction=0.3,
                until_s=round(0.8 * duration_s, 3),
            )
        )

    mobility = MobilitySpec()
    if rng.random() < 0.35:
        # A moving mesh exercises the whole invalidation pipeline
        # (set_position -> grid re-bucket -> audibility re-derivation ->
        # vectorized state migration) under every differential path.
        mobility = MobilitySpec(
            model=rng.choice(("random-waypoint", "gauss-markov")),
            update_interval_s=rng.choice((0.5, 1.0)),
            speed_min_mps=1.0,
            speed_max_mps=float(rng.choice((10, 20))),
            pause_s=rng.choice((0.0, 1.0)),
        )
    energy = EnergySpec()
    if rng.random() < 0.15:
        # Small batteries so some nodes actually die mid-run, driving
        # churn through the same path the fault injector uses.
        energy = EnergySpec(enabled=True, initial_j=rng.choice((0.5, 2.0)))

    side = float(rng.randint(450, 650))
    config = SimulationScenarioConfig(
        num_nodes=num_nodes,
        area_width_m=side,
        area_height_m=side,
        num_groups=1,
        members_per_group=rng.randint(2, 3),
        rate_pps=10.0,
        duration_s=duration_s,
        warmup_s=warmup_s,
        faults=FaultPlan(outages=tuple(outages), flapping=tuple(flapping)),
        mobility=mobility,
        energy=energy,
    )
    return ExperimentSpec(
        name=f"fuzz-{master_seed}-{index}",
        description=(
            f"differential fuzz case {index} (master seed {master_seed})"
        ),
        protocols=protocols,
        seeds=seeds,
        config=config,
    )


def _first_difference(
    label: str, baseline: Sequence[RunResult], candidate: Sequence[RunResult]
) -> Optional[str]:
    """Describe the first divergence between two result lists, if any."""
    if len(baseline) != len(candidate):
        return (
            f"{label}: produced {len(candidate)} results, "
            f"expected {len(baseline)}"
        )
    for expected, got in zip(baseline, candidate):
        if expected != got:
            fields = [
                f.name
                for f in dataclasses.fields(expected)
                if getattr(expected, f.name) != getattr(got, f.name)
            ]
            return (
                f"{label}: run ({expected.protocol}, seed "
                f"{expected.topology_seed}) diverged in field(s) "
                f"{fields}: baseline={expected!r} candidate={got!r}"
            )
    return None


def _strip_telemetry_path(results: Sequence[RunResult]) -> List[RunResult]:
    return [
        dataclasses.replace(result, telemetry_path=None) for result in results
    ]


def differential_check(
    spec: ExperimentSpec,
    jobs: int = 2,
    work_dir: Optional[str] = None,
    phy_backends: Sequence[str] = ("scalar", "vectorized"),
) -> List[str]:
    """Run ``spec`` through every execution path; describe divergences.

    The serial in-process sweep is the oracle.  Each alternate path --
    a process pool, the adaptive sequential planner capped to the same
    seed pool, a one-draw fault campaign, a cold-then-warm cache, a
    telemetry-enabled serial pass, and one forced-``phy_backend``
    serial pass per entry in ``phy_backends`` -- must reproduce the
    oracle's :class:`RunResult` rows bit-for-bit (the telemetry pass
    is compared with its artifact path masked, since the path is the
    one legitimately new field).
    The backend axis is the scalar<->vectorized parity gate: forcing
    either reception path through :class:`NetworkConfig.phy_backend`
    must not move a single bit relative to the spec's own (usually
    "auto") setting.  Backend passes are skipped when numpy is absent
    (the vectorized path cannot be forced without it) or when the spec
    already pins a non-auto backend.  Returns an empty list when every
    path agrees; error strings otherwise.
    """
    spec.validate()
    specs = sweep_specs(spec.config, spec.protocols, spec.seeds)
    baseline = execute_runs(specs, jobs=1, use_cache=False)
    errors = [
        f"baseline: run ({r.protocol}, seed {r.topology_seed}) "
        f"errored: {r.error.splitlines()[-1]}"
        for r in baseline
        if r.error is not None
    ]
    if errors:
        # A crashing scenario is a finding in itself; the differential
        # passes would only echo the same traceback four more times.
        return errors

    pooled = execute_runs(specs, jobs=jobs, use_cache=False)
    divergence = _first_difference(f"jobs={jobs}", baseline, pooled)
    if divergence:
        errors.append(divergence)

    errors.extend(_adaptive_differences(spec, baseline))

    errors.extend(_campaign_differences(spec))

    if phy_backends and spec.config.network.phy_backend == "auto":
        try:
            import repro.phy.vectorized  # noqa: F401
        except ImportError:
            backends: Sequence[str] = ()
        else:
            backends = phy_backends
        for backend in backends:
            backend_config = dataclasses.replace(
                spec.config,
                network=dataclasses.replace(
                    spec.config.network, phy_backend=backend
                ),
            )
            forced = [
                run_protocol(s.protocol, s.seeded_config())
                for s in sweep_specs(
                    backend_config, spec.protocols, spec.seeds
                )
            ]
            divergence = _first_difference(
                f"phy-{backend}", baseline, forced
            )
            if divergence:
                errors.append(divergence)

    if work_dir is not None:
        cache_dir = os.path.join(work_dir, "fuzz-cache")
        cold = execute_runs(
            specs, jobs=1, use_cache=True, cache_dir=cache_dir
        )
        divergence = _first_difference("cache-cold", baseline, cold)
        if divergence:
            errors.append(divergence)
        warm = execute_runs(
            specs, jobs=1, use_cache=True, cache_dir=cache_dir
        )
        divergence = _first_difference("cache-warm", baseline, warm)
        if divergence:
            errors.append(divergence)

        telemetry_config = dataclasses.replace(
            spec.config,
            telemetry=TelemetryConfig(
                enabled=True,
                export_dir=os.path.join(work_dir, "fuzz-telemetry"),
            ),
        )
        with_telemetry = [
            run_protocol(s.protocol, s.seeded_config())
            for s in sweep_specs(telemetry_config, spec.protocols, spec.seeds)
        ]
        divergence = _first_difference(
            "telemetry",
            _strip_telemetry_path(baseline),
            _strip_telemetry_path(with_telemetry),
        )
        if divergence:
            errors.append(divergence)

    return errors


def _adaptive_differences(
    spec: ExperimentSpec, baseline: Sequence[RunResult]
) -> List[str]:
    """The adaptive axis: the sequential planner, capped to the spec's
    own seed pool, must agree bit-for-bit with the exhaustive grid on
    every (protocol, seed) cell both of them executed.  The planner may
    legitimately execute *fewer* cells (that is its job); executing a
    cell outside the exhaustive grid, or producing a different result
    for a shared cell, is a determinism violation.
    """
    from repro.experiments.adaptive import (
        AdaptiveConfig,
        run_adaptive_experiment,
    )

    adaptive_spec = dataclasses.replace(
        spec,
        adaptive=AdaptiveConfig(
            target_half_width=0.25,
            batch_size=1,
            min_seeds=1,
            max_seeds=len(spec.seeds),
            paired=True,
        ),
    )
    plan = run_adaptive_experiment(adaptive_spec)
    expected = {
        (run.protocol, run.topology_seed): run for run in baseline
    }
    errors: List[str] = []
    for run in plan.runs:
        cell = (run.protocol, run.topology_seed)
        want = expected.get(cell)
        if want is None:
            errors.append(
                f"adaptive: executed ({run.protocol}, seed "
                f"{run.topology_seed}) which is outside the exhaustive "
                "grid"
            )
            continue
        if run != want:
            fields = [
                f.name
                for f in dataclasses.fields(want)
                if getattr(want, f.name) != getattr(run, f.name)
            ]
            errors.append(
                f"adaptive: run ({run.protocol}, seed "
                f"{run.topology_seed}) diverged in field(s) {fields}: "
                f"baseline={want!r} candidate={run!r}"
            )
    return errors


def _campaign_differences(spec: ExperimentSpec) -> List[str]:
    """The campaign axis: every cell the fault-campaign planner runs --
    the fault-free CRN baseline and each cell of a one-draw importance
    sample -- must equal an independently executed ``run_protocol``
    call on the same (protocol, seed, fault plan) triple bit-for-bit.
    The planner only adds orchestration (severity sampling, journals,
    importance weights) on top of the run layer; none of it may move a
    result bit.  The campaign strips any spec-level fault plan and
    mobility axis first (campaigns sample fault plans themselves and
    reject mobility specs), so this axis checks planner-vs-independent
    execution, not planner-vs-oracle.
    """
    from repro.experiments.campaigns import (
        CampaignConfig,
        run_campaign_experiment,
    )
    from repro.experiments.faults import FaultPlan

    campaign_spec = dataclasses.replace(
        spec,
        adaptive=None,
        mobility_models=(),
        campaign=CampaignConfig(draws=1, master_seed=7),
        config=dataclasses.replace(spec.config, faults=FaultPlan()),
    )
    result = run_campaign_experiment(campaign_spec)
    errors: List[str] = []
    independent_baseline = [
        run_protocol(s.protocol, s.seeded_config())
        for s in sweep_specs(
            campaign_spec.config, campaign_spec.protocols, campaign_spec.seeds
        )
    ]
    divergence = _first_difference(
        "campaign-baseline", independent_baseline, result.baseline_runs
    )
    if divergence:
        errors.append(divergence)
    for draw, runs in zip(result.draws, result.draw_runs):
        independent = [
            run_protocol(s.protocol, s.seeded_config())
            for seed in campaign_spec.seeds
            for s in sweep_specs(
                dataclasses.replace(
                    campaign_spec.config, faults=draw.plans[seed]
                ),
                campaign_spec.protocols,
                (seed,),
            )
        ]
        divergence = _first_difference(
            f"campaign-draw-{draw.index}", independent, runs
        )
        if divergence:
            errors.append(divergence)
    return errors


def run_with_invariants(
    spec: ExperimentSpec,
    monitors: Sequence[str] = (),
    check_interval_s: float = 1.0,
) -> List[RunResult]:
    """Replay every run in ``spec`` with invariant monitors attached.

    Runs serially (monitored runs are about catching bugs, not speed).
    An :class:`InvariantViolation` propagates to the caller with its
    replay triple intact.
    """
    spec.validate()
    config = dataclasses.replace(
        spec.config,
        validation=ValidationConfig(
            enabled=True,
            check_interval_s=check_interval_s,
            monitors=tuple(monitors),
        ),
    )
    results: List[RunResult] = []
    for run_spec in sweep_specs(config, spec.protocols, spec.seeds):
        results.append(run_protocol(run_spec.protocol, run_spec.seeded_config()))
    return results


def write_replay_spec(violation: InvariantViolation, path: str) -> str:
    """Persist a violation's replay triple as a one-run spec file."""
    if violation.protocol is None or violation.config is None:
        raise ValueError(
            "violation carries no replay triple (was it raised outside "
            "an InvariantSuite?)"
        )
    config = violation.config
    if violation.seed is not None:
        config = dataclasses.replace(config, topology_seed=violation.seed)
    spec = ExperimentSpec(
        name=f"replay-{violation.invariant}",
        description=(
            f"replays: {violation.message} "
            f"(t={violation.time} node={violation.node_id})"
        ),
        protocols=(violation.protocol,),
        seeds=(violation.seed,) if violation.seed is not None else (1,),
        config=config,
    )
    return spec.save(path)


def default_validation_spec() -> ExperimentSpec:
    """The paper-protocol mini-sweep ``repro validate`` checks by default."""
    return ExperimentSpec(
        name="paper-mini",
        description="paper protocols, small mesh, full monitor suite",
        protocols=("odmrp", "spp", "metx"),
        seeds=(1,),
        config=SimulationScenarioConfig(
            num_nodes=12,
            area_width_m=600.0,
            area_height_m=600.0,
            num_groups=1,
            members_per_group=3,
            duration_s=15.0,
            warmup_s=5.0,
        ),
    )


def moving_validation_spec() -> ExperimentSpec:
    """A moving-mesh mini-sweep: the default monitors under churn.

    Complements :func:`default_validation_spec`: same small scale, but
    nodes follow random-waypoint trajectories so forwarding state,
    power-conservation, and rng-isolation get checked while audible
    sets churn every tick.
    """
    return ExperimentSpec(
        name="paper-mini-moving",
        description=(
            "paper protocols on a random-waypoint mesh, full monitor suite"
        ),
        protocols=("odmrp", "spp"),
        seeds=(1,),
        config=SimulationScenarioConfig(
            num_nodes=12,
            area_width_m=600.0,
            area_height_m=600.0,
            num_groups=1,
            members_per_group=3,
            duration_s=15.0,
            warmup_s=5.0,
            mobility=MobilitySpec(
                model="random-waypoint",
                update_interval_s=1.0,
                speed_min_mps=2.0,
                speed_max_mps=15.0,
            ),
        ),
    )
