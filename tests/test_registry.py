"""Tests for the protocol registry (repro.protocols)."""

from __future__ import annotations

import pytest

from repro.core.metrics import (
    EtxMetric,
    metric_by_name,
    metric_type_by_name,
    register_metric,
)
from repro.maodv.protocol import MaodvRouter
from repro.multichannel.wcett import WcettSingleChannelMetric
from repro.odmrp.config import OdmrpConfig
from repro.odmrp.protocol import OdmrpRouter
from repro.protocols import (
    REGISTRY,
    DuplicateProtocolError,
    ProtocolRegistry,
    ProtocolSpec,
    UnknownProtocolError,
    maodv_protocol_names,
    paper_protocol_names,
    protocol_by_name,
    protocol_names,
    register_protocol,
    registers,
)


class TestSeededRegistry:
    """The default registry ships the paper's variants pre-registered."""

    def test_paper_six_in_registration_order(self):
        assert paper_protocol_names() == (
            "odmrp", "ett", "etx", "metx", "pp", "spp"
        )

    def test_maodv_family(self):
        assert maodv_protocol_names() == (
            "maodv", "maodv-ett", "maodv-etx", "maodv-metx",
            "maodv-pp", "maodv-spp",
        )

    def test_wcett_entry(self):
        spec = protocol_by_name("wcett")
        assert spec.family == "multichannel"
        assert spec.metric == "wcett"
        assert spec.router is OdmrpRouter

    def test_all_names_unique_and_lowercase(self):
        names = protocol_names()
        assert len(names) == len(set(names))
        assert all(name == name.lower() for name in names)

    def test_baseline_specs_resolve_routers_and_metrics(self):
        odmrp = protocol_by_name("odmrp")
        assert odmrp.router is OdmrpRouter
        assert odmrp.metric is None
        assert odmrp.build_metric() is None
        spp = protocol_by_name("spp")
        assert spp.router is OdmrpRouter
        assert spp.build_metric().name == "spp"
        maodv_etx = protocol_by_name("maodv-etx")
        assert maodv_etx.router is MaodvRouter
        assert maodv_etx.build_metric().name == "etx"

    def test_lookup_is_case_insensitive(self):
        assert protocol_by_name("SPP") is protocol_by_name("spp")

    def test_contains_and_len(self):
        assert "spp" in REGISTRY
        assert "dsdv" not in REGISTRY
        assert 17 not in REGISTRY
        assert len(REGISTRY) >= 13


class TestRegistration:
    def test_duplicate_name_rejected(self):
        registry = ProtocolRegistry()
        register_protocol("demo", OdmrpRouter, registry=registry)
        with pytest.raises(DuplicateProtocolError):
            register_protocol("demo", MaodvRouter, registry=registry)
        # The original registration survives the failed attempt.
        assert registry.get("demo").router is OdmrpRouter

    def test_replace_overrides(self):
        registry = ProtocolRegistry()
        register_protocol("demo", OdmrpRouter, registry=registry)
        register_protocol(
            "demo", MaodvRouter, registry=registry, replace=True
        )
        assert registry.get("demo").router is MaodvRouter

    def test_unknown_name_error_lists_valid_names(self):
        registry = ProtocolRegistry()
        register_protocol("odmrp", OdmrpRouter, registry=registry)
        register_protocol("spp", OdmrpRouter, metric="spp", registry=registry)
        with pytest.raises(UnknownProtocolError) as excinfo:
            registry.get("dsdv")
        message = str(excinfo.value)
        assert "dsdv" in message
        assert "odmrp" in message and "spp" in message

    def test_unknown_name_error_suggests_close_match(self):
        with pytest.raises(UnknownProtocolError) as excinfo:
            protocol_by_name("sppp")
        assert "did you mean" in str(excinfo.value)
        assert "'spp'" in str(excinfo.value)

    def test_unknown_protocol_error_is_a_value_error(self):
        # Pre-registry callers caught ValueError; keep that contract.
        with pytest.raises(ValueError):
            protocol_by_name("nope")

    def test_registers_decorator(self):
        registry = ProtocolRegistry()

        @registers("demo-router", metric="etx", family="experimental",
                   registry=registry)
        class DemoRouter(OdmrpRouter):
            pass

        spec = registry.get("demo-router")
        assert spec.router is DemoRouter
        assert spec.metric == "etx"
        assert spec.family == "experimental"

    def test_unregister_then_missing(self):
        registry = ProtocolRegistry()
        register_protocol("demo", OdmrpRouter, registry=registry)
        registry.unregister("demo")
        assert "demo" not in registry
        registry.unregister("demo")  # idempotent

    def test_iteration_preserves_registration_order(self):
        registry = ProtocolRegistry()
        for name in ("zeta", "alpha", "mid"):
            register_protocol(name, OdmrpRouter, registry=registry)
        assert registry.names() == ("zeta", "alpha", "mid")
        assert [spec.name for spec in registry] == ["zeta", "alpha", "mid"]


class TestProtocolSpec:
    def test_rejects_uppercase_name(self):
        with pytest.raises(ValueError):
            ProtocolSpec(name="SPP", router=OdmrpRouter)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            ProtocolSpec(name="", router=OdmrpRouter)

    def test_rejects_unknown_metric_at_construction(self):
        with pytest.raises(ValueError) as excinfo:
            ProtocolSpec(name="x", router=OdmrpRouter, metric="airtime")
        assert "unknown metric" in str(excinfo.value)

    def test_rejects_unknown_override_field(self):
        with pytest.raises(ValueError) as excinfo:
            ProtocolSpec(
                name="x", router=OdmrpRouter,
                overrides={"not_a_field": 1},
            )
        assert "not_a_field" in str(excinfo.value)

    def test_overrides_applied_on_top_of_base_config(self):
        spec = ProtocolSpec(
            name="x", router=OdmrpRouter,
            overrides={"refresh_interval_s": 7.5},
        )
        base = OdmrpConfig()
        derived = spec.protocol_config(base)
        assert derived.refresh_interval_s == 7.5
        assert base.refresh_interval_s != 7.5

    def test_no_overrides_returns_base_unchanged(self):
        spec = ProtocolSpec(name="x", router=OdmrpRouter)
        base = OdmrpConfig()
        assert spec.protocol_config(base) is base

    def test_airtime_metric_gets_packet_parameters(self):
        spec = ProtocolSpec(name="x", router=OdmrpRouter, metric="ett")
        metric = spec.build_metric(
            packet_size_bytes=1024, default_bandwidth_bps=1_000_000.0
        )
        assert metric.packet_size_bytes == 1024
        assert metric.default_bandwidth_bps == 1_000_000.0

    def test_to_record_is_json_friendly(self):
        import json

        record = protocol_by_name("maodv-spp").to_record()
        assert record["name"] == "maodv-spp"
        assert record["metric"] == "spp"
        assert record["family"] == "maodv"
        assert record["router"].endswith("MaodvRouter")
        json.dumps(record)  # must not raise


class TestMetricRegistry:
    def test_metric_by_name_unknown_lists_valid_names(self):
        with pytest.raises(ValueError) as excinfo:
            metric_by_name("airtime")
        message = str(excinfo.value)
        assert "unknown metric" in message
        for name in ("etx", "ett", "metx", "pp", "spp"):
            assert name in message

    def test_metric_by_name_suggests_close_match(self):
        with pytest.raises(ValueError) as excinfo:
            metric_by_name("ets")
        assert "did you mean" in str(excinfo.value)

    def test_register_metric_is_idempotent_for_same_class(self):
        assert register_metric(EtxMetric) is EtxMetric

    def test_register_metric_rejects_name_squatting(self):
        class Impostor(EtxMetric):
            name = "etx"

        with pytest.raises(ValueError) as excinfo:
            register_metric(Impostor)
        assert "already taken" in str(excinfo.value)

    def test_wcett_registered_as_extension_metric(self):
        assert metric_type_by_name("wcett") is WcettSingleChannelMetric
        metric = metric_by_name("wcett")
        assert metric.name == "wcett"
