"""Node placement generators.

The paper's simulation scenario places 50 static nodes uniformly at random
in a 1000 m x 1000 m area.  ``random_topology`` reproduces that, with an
optional connectivity constraint (a disconnected topology would make
throughput comparisons meaningless, and the paper's results average over
topologies where every receiver is reachable).
"""

from __future__ import annotations

import math
import random
from bisect import insort
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

#: Node count above which the O(N^2) helpers (``is_connected``,
#: ``average_degree``) switch to a :class:`SpatialGridIndex`.  Below it
#: the brute-force scan is faster than building the index.
GRID_AUTO_NODES = 64


class Position(NamedTuple):
    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


class SpatialGridIndex:
    """Uniform-cell spatial hash over a list of :class:`Position`.

    Buckets node indices into square cells of side ``cell_size_m``.  A
    range query for radius ``r`` around a node scans only the cells
    overlapping the axis-aligned box of half-width ``r`` -- O(cell
    occupancy) instead of O(N).  The cell box is an exact superset of
    the disk (``floor`` is monotone, so every point with both
    coordinate offsets <= ``r`` falls inside the scanned box), which is
    why :meth:`neighbors_within` can filter candidates with the same
    ``Position.distance_to`` call the brute-force path uses and return
    *bit-identical* neighbor sets.

    Candidate lists come back sorted ascending by node index, matching
    the iteration order of a plain ``for i, pos in enumerate(...)``
    scan; downstream consumers (audible lists, connectivity maps) keep
    their deterministic ordering for free.

    The index is mobility-ready: :meth:`update_position` re-buckets a
    single node and :meth:`rebuild` re-buckets everything, so a future
    mobility model can invalidate incrementally instead of rebuilding
    per query.
    """

    def __init__(
        self, positions: Sequence[Position], cell_size_m: float
    ) -> None:
        if cell_size_m <= 0.0 or not math.isfinite(cell_size_m):
            raise ValueError(
                f"cell size must be positive and finite, got {cell_size_m}"
            )
        self.cell_size_m = float(cell_size_m)
        self._positions: List[Position] = list(positions)
        self._cells: Dict[Tuple[int, int], List[int]] = {}
        self._bucket_all()

    def __len__(self) -> int:
        return len(self._positions)

    def _cell_of(self, position: Position) -> Tuple[int, int]:
        size = self.cell_size_m
        return (
            math.floor(position.x / size),
            math.floor(position.y / size),
        )

    def _bucket_all(self) -> None:
        cells: Dict[Tuple[int, int], List[int]] = {}
        for index, position in enumerate(self._positions):
            cells.setdefault(self._cell_of(position), []).append(index)
        self._cells = cells

    def rebuild(
        self, positions: Optional[Sequence[Position]] = None
    ) -> None:
        """Re-bucket every node (bulk invalidation hook for mobility)."""
        if positions is not None:
            self._positions = list(positions)
        self._bucket_all()

    def update_position(self, index: int, position: Position) -> None:
        """Move one node to ``position`` and re-bucket it."""
        old_cell = self._cell_of(self._positions[index])
        new_cell = self._cell_of(position)
        self._positions[index] = position
        if old_cell == new_cell:
            return
        bucket = self._cells[old_cell]
        bucket.remove(index)
        if not bucket:
            del self._cells[old_cell]
        # insort keeps per-cell lists ascending so candidate lists stay
        # sorted without a per-query sort of every bucket.
        insort(self._cells.setdefault(new_cell, []), index)

    def candidates_within(self, index: int, range_m: float) -> List[int]:
        """Indices in cells overlapping the disk (superset, sorted asc)."""
        return self.candidates_near(self._positions[index], range_m)

    def candidates_near(
        self, position: Position, range_m: float
    ) -> List[int]:
        """Superset of indices within ``range_m`` of an arbitrary point.

        The scanned box is padded by one cell ring: ``hypot`` rounds,
        so a point whose *computed* distance is exactly ``range_m`` can
        sit a few ulps outside the arithmetic box, and the superset
        guarantee must hold against the same rounded comparison the
        brute-force filter uses.  One cell absorbs that slack whenever
        the cell size is not absurdly small against the coordinate
        magnitudes (anything above ``max(|coord|) * 2**-50``).
        """
        if range_m < 0.0:
            return []
        size = self.cell_size_m
        cx_lo = math.floor((position.x - range_m) / size) - 1
        cx_hi = math.floor((position.x + range_m) / size) + 1
        cy_lo = math.floor((position.y - range_m) / size) - 1
        cy_hi = math.floor((position.y + range_m) / size) + 1
        cells = self._cells
        out: List[int] = []
        for cx in range(cx_lo, cx_hi + 1):
            for cy in range(cy_lo, cy_hi + 1):
                bucket = cells.get((cx, cy))
                if bucket:
                    out.extend(bucket)
        out.sort()
        return out

    def neighbors_within(self, index: int, range_m: float) -> List[int]:
        """Grid-accelerated :func:`neighbors_within`; identical output."""
        positions = self._positions
        center = positions[index]
        return [
            i
            for i in self.candidates_within(index, range_m)
            if i != index and center.distance_to(positions[i]) <= range_m
        ]


def random_topology(
    num_nodes: int,
    width_m: float = 1000.0,
    height_m: float = 1000.0,
    rng: Optional[random.Random] = None,
    connectivity_range_m: Optional[float] = 250.0,
    max_attempts: int = 200,
) -> List[Position]:
    """Uniform random placement, resampled until connected.

    Connectivity is checked on the unit-disk graph with radius
    ``connectivity_range_m`` (the nominal no-fading radio range).  Pass
    ``None`` to skip the check.
    """
    if num_nodes <= 0:
        raise ValueError(f"need at least one node, got {num_nodes}")
    if rng is None:
        rng = random.Random(0)
    for _ in range(max_attempts):
        positions = [
            Position(rng.uniform(0.0, width_m), rng.uniform(0.0, height_m))
            for _ in range(num_nodes)
        ]
        if connectivity_range_m is None or is_connected(
            positions, connectivity_range_m
        ):
            return positions
    raise RuntimeError(
        f"could not draw a connected topology of {num_nodes} nodes in "
        f"{width_m}x{height_m} m with range {connectivity_range_m} m "
        f"after {max_attempts} attempts"
    )


def grid_topology(
    rows: int, cols: int, spacing_m: float = 200.0
) -> List[Position]:
    """Regular grid, used by tests and the quickstart example."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    return [
        Position(c * spacing_m, r * spacing_m)
        for r in range(rows)
        for c in range(cols)
    ]


def chain_topology(num_nodes: int, spacing_m: float = 200.0) -> List[Position]:
    """Nodes on a line; the canonical multi-hop unit test topology."""
    if num_nodes <= 0:
        raise ValueError("need at least one node")
    return [Position(i * spacing_m, 0.0) for i in range(num_nodes)]


def neighbors_within(
    positions: Sequence[Position], index: int, range_m: float
) -> List[int]:
    """Indices of nodes within ``range_m`` of node ``index`` (excl. itself)."""
    center = positions[index]
    return [
        i
        for i, pos in enumerate(positions)
        if i != index and center.distance_to(pos) <= range_m
    ]


def _neighbor_query(positions: Sequence[Position], range_m: float):
    """Pick brute-force or grid-backed neighbor lookup by problem size.

    Both answer identically (the grid filters its candidate superset
    with the same ``distance_to`` comparison), so the switch is purely
    a constant-factor decision.
    """
    if len(positions) >= GRID_AUTO_NODES and range_m > 0.0 and math.isfinite(
        range_m
    ):
        grid = SpatialGridIndex(positions, cell_size_m=range_m)
        return lambda index: grid.neighbors_within(index, range_m)
    return lambda index: neighbors_within(positions, index, range_m)


def is_connected(positions: Sequence[Position], range_m: float) -> bool:
    """True if the unit-disk graph over ``positions`` is connected."""
    n = len(positions)
    if n <= 1:
        return True
    neighbors = _neighbor_query(positions, range_m)
    seen = {0}
    frontier = [0]
    while frontier:
        current = frontier.pop()
        for other in neighbors(current):
            if other not in seen:
                seen.add(other)
                frontier.append(other)
    return len(seen) == n


def average_degree(positions: Sequence[Position], range_m: float) -> float:
    """Mean unit-disk degree; a quick density diagnostic for scenarios."""
    if not positions:
        return 0.0
    neighbors = _neighbor_query(positions, range_m)
    total = sum(len(neighbors(i)) for i in range(len(positions)))
    return total / len(positions)
