"""The per-node NEIGHBOR_TABLE (Section 3.1).

Each node records the measured cost of the link *from* each neighbor *to
itself* -- the forward direction of data that will flow through that
neighbor.  When a JOIN QUERY arrives, ODMRP looks up the cost of the link
it arrived on and folds it into the query's accumulated path cost.

The table is fed by the probe receive path: it registers handlers for the
probe packet kinds on its node and owns one estimator per neighbor.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.metrics import LinkQuality, RouteMetric
from repro.net.node import Node
from repro.net.packet import Packet, PacketKind
from repro.probing.broadcast_probe import LossRatioEstimator, ProbePayload
from repro.probing.packet_pair import PacketPairEstimator, PairProbePayload
from repro.sim.engine import Simulator


class NeighborTable:
    """Receiver-side link-quality state for one node."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        window_intervals: int = 10,
        ewma_history_weight: float = 0.9,
        loss_penalty_factor: float = 1.2,
    ) -> None:
        self.sim = sim
        self.node = node
        self.window_intervals = window_intervals
        self.ewma_history_weight = ewma_history_weight
        self.loss_penalty_factor = loss_penalty_factor
        self._loss: Dict[int, LossRatioEstimator] = {}
        self._pairs: Dict[int, PacketPairEstimator] = {}
        node.register_handler(PacketKind.PROBE, self._on_probe)
        node.register_handler(PacketKind.PROBE_PAIR_SMALL, self._on_pair_probe)
        node.register_handler(PacketKind.PROBE_PAIR_LARGE, self._on_pair_probe)

    # ------------------------------------------------------------------
    # Probe reception

    def _on_probe(self, packet: Packet, sender_id: int, rx_power_mw: float) -> None:
        payload: ProbePayload = packet.payload
        estimator = self._loss.get(sender_id)
        if estimator is None:
            estimator = LossRatioEstimator(self.window_intervals)
            self._loss[sender_id] = estimator
        estimator.note_received(self.sim.now, payload.interval_s)

    def _on_pair_probe(
        self, packet: Packet, sender_id: int, rx_power_mw: float
    ) -> None:
        payload: PairProbePayload = packet.payload
        estimator = self._pairs.get(sender_id)
        if estimator is None:
            estimator = PacketPairEstimator(
                self.ewma_history_weight,
                self.loss_penalty_factor,
                self.window_intervals,
            )
            self._pairs[sender_id] = estimator
        if payload.is_large:
            estimator.note_large(
                payload.sequence,
                self.sim.now,
                payload.interval_s,
                payload.large_size_bytes,
            )
        else:
            estimator.note_small(payload.sequence, self.sim.now, payload.interval_s)

    # ------------------------------------------------------------------
    # Queries

    def neighbors(self) -> list[int]:
        """Every neighbor any probe has been heard from."""
        return sorted(set(self._loss) | set(self._pairs))

    def link_quality(self, neighbor_id: int) -> LinkQuality:
        """Current quality of the ``neighbor -> self`` link."""
        now = self.sim.now
        loss_estimator = self._loss.get(neighbor_id)
        pair_estimator = self._pairs.get(neighbor_id)
        if loss_estimator is not None:
            df = loss_estimator.delivery_ratio(now)
        elif pair_estimator is not None:
            df = pair_estimator.delivery_ratio(now)
        else:
            df = 0.0
        delay: Optional[float] = None
        bandwidth: Optional[float] = None
        if pair_estimator is not None:
            delay = pair_estimator.effective_delay_s(now)
            bandwidth = pair_estimator.bandwidth_bps()
        return LinkQuality(
            forward_delivery_ratio=df,
            packet_pair_delay_s=delay,
            bandwidth_bps=bandwidth,
        )

    def link_cost(self, neighbor_id: int, metric: RouteMetric) -> float:
        """Metric cost of the ``neighbor -> self`` link."""
        return metric.link_cost(self.link_quality(neighbor_id))

    def link_qualities(self) -> Dict[int, LinkQuality]:
        """Current quality of every heard link, keyed by neighbor.

        The telemetry sampler's view of this table: one call per sample
        tick, nothing cached, nothing recorded on the probe receive path.
        """
        return {
            neighbor_id: self.link_quality(neighbor_id)
            for neighbor_id in self.neighbors()
        }
