"""The Figure 4 floor map: nodes, positions, and link classification.

The paper's testbed has eight mesh routers (labelled 1, 2, 3, 4, 5, 7, 9,
10) on one floor of an office building, roughly 240 ft x 86 ft
(~73 m x 26 m).  Figure 4 classifies each link as *low-loss* (solid) or
*lossy* (dashed, 40-60 % loss per Section 5.3); pairs with no line cannot
communicate.

The exact link set below is reconstructed from the figure and the
Section 5.3 narrative:

* node 2's one-hop link to 5 is lossy; the good path is 2 -> 10 -> 5;
* node 4's one-hop link to 7 is lossy; the good path is 4 -> 9 -> 7;
* node 2 reaches 3 via 7 (2-7, 7-3 usable) or via 1 (1-3 is lossy);
* node 4 reaches 1 via 10 and 2, or 7 and 2, or 7 and 3, or 9 and 3,
  where 4-7, 9-3 and 3-1 are the lossy options ODMRP keeps stumbling
  into.

Positions are approximate office locations consistent with the figure's
layout; the emulation never uses distance for loss (losses come from the
link table), so positions only matter for plotting and reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.net.topology import Position

#: The eight router labels used in Figures 4 and 5.
TESTBED_NODE_IDS: Tuple[int, ...] = (1, 2, 3, 4, 5, 7, 9, 10)

#: Approximate positions on the 73 m x 26 m floor (meters).
_POSITIONS: Dict[int, Position] = {
    5: Position(6.0, 20.0),
    4: Position(4.0, 6.0),
    9: Position(20.0, 6.0),
    7: Position(34.0, 18.0),
    3: Position(52.0, 20.0),
    2: Position(48.0, 8.0),
    1: Position(62.0, 14.0),
    10: Position(70.0, 5.0),
}


@dataclass(frozen=True)
class TestbedLink:
    """One bidirectional testbed link with its Figure 4 classification."""

    node_a: int
    node_b: int
    lossy: bool

    @property
    def key(self) -> FrozenSet[int]:
        return frozenset((self.node_a, self.node_b))


#: Solid (low-loss) and dashed (lossy) links of Figure 4.
_LINKS: Tuple[TestbedLink, ...] = (
    TestbedLink(2, 10, lossy=False),
    TestbedLink(10, 5, lossy=False),
    TestbedLink(4, 9, lossy=False),
    TestbedLink(9, 7, lossy=False),
    TestbedLink(2, 7, lossy=False),
    TestbedLink(7, 3, lossy=False),
    TestbedLink(2, 1, lossy=False),
    TestbedLink(4, 10, lossy=False),
    TestbedLink(2, 5, lossy=True),
    TestbedLink(4, 7, lossy=True),
    TestbedLink(1, 3, lossy=True),
    TestbedLink(9, 3, lossy=True),
)


def testbed_positions() -> Dict[int, Position]:
    """Node label -> floor position (meters)."""
    return dict(_POSITIONS)


def testbed_links() -> List[TestbedLink]:
    """All Figure 4 links with their lossy/low-loss classification."""
    return list(_LINKS)


def lossy_link_keys() -> List[FrozenSet[int]]:
    return [link.key for link in _LINKS if link.lossy]


def low_loss_link_keys() -> List[FrozenSet[int]]:
    return [link.key for link in _LINKS if not link.lossy]
